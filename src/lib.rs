//! # xseed — reproduction of "XSEED: Accurate and Fast Cardinality Estimation for XPath Queries"
//!
//! This facade crate re-exports the workspace crates behind a single
//! dependency and hosts the runnable examples and cross-crate integration
//! tests. The pieces are:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`xmlkit`] | SAX parser, arena XML tree, writer, document statistics |
//! | [`xpathkit`] | structural XPath subset: parser, AST, query trees |
//! | [`nokstore`] | NoK-style storage, exact evaluator, path tree |
//! | [`xseed_core`] | **the XSEED synopsis**: kernel, estimator, hyper-edge table |
//! | [`treesketch`] | the TreeSketch baseline synopsis |
//! | [`datagen`] | synthetic datasets and SP/BP/CP workloads |
//! | [`xseed_service`] | the concurrent estimation service (catalog, worker pool, `xseed-serve`) |
//! | [`xseed_bench`] | the experiment harness regenerating every table and figure |
//!
//! ## Quickstart
//!
//! ```
//! use xseed::prelude::*;
//!
//! // Build a synopsis for a document and estimate a query's cardinality.
//! let doc = Document::parse_str(
//!     "<library><book><title/><author/></book><book><title/></book></library>",
//! ).unwrap();
//! let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
//! let query = parse_query("/library/book[author]/title").unwrap();
//! let estimate = synopsis.estimate(&query);
//!
//! // Compare against the exact answer.
//! let storage = NokStorage::from_document(&doc);
//! let actual = Evaluator::new(&storage).count(&query);
//! assert!((estimate - actual as f64).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use datagen;
pub use nokstore;
pub use treesketch;
pub use xmlkit;
pub use xpathkit;
pub use xseed_bench;
pub use xseed_core;
pub use xseed_service;

/// The most commonly used types, importable with `use xseed::prelude::*`.
pub mod prelude {
    pub use datagen::{Dataset, Workload, WorkloadGenerator, WorkloadSpec};
    pub use nokstore::{Evaluator, NokStorage, PathTree};
    pub use treesketch::TreeSketch;
    pub use xmlkit::stats::DocumentStats;
    pub use xmlkit::{Document, SaxParser};
    pub use xpathkit::parse as parse_query;
    pub use xpathkit::{PathExpr, QueryClass, QueryPlan};
    pub use xseed_core::{SynopsisSnapshot, XseedConfig, XseedSynopsis};
    pub use xseed_service::{Catalog, Service, ServiceConfig, ServiceError};
}
