//! Integration tests reproducing the worked examples of the paper
//! end-to-end through the public facade API.

use xseed::prelude::*;

/// Example 2 / Figure 2(b): the kernel built from the Figure 2(a) document
/// carries exactly the edge labels printed in the paper.
#[test]
fn example2_kernel_labels() {
    let doc = xseed::xmlkit::samples::figure2_document();
    let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
    let rendered = synopsis.kernel().to_string();
    for expected in [
        "a -> c (1:2)",
        "c -> s (2:5)",
        "s -> s (0:0, 2:2, 1:2)",
        "s -> p (5:9, 1:2, 2:3)",
        "s -> t (2:2, 1:1)",
    ] {
        assert!(
            rendered.contains(expected),
            "kernel missing edge `{expected}`:\n{rendered}"
        );
    }
}

/// Example 3: the estimated cardinality of /a/c/s/s/t over the Figure 2
/// kernel is 1, with the intermediate path cardinalities 1, 2, 5, 2.
#[test]
fn example3_estimation_walkthrough() {
    let doc = xseed::xmlkit::samples::figure2_document();
    let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
    for (query, expected) in [
        ("/a", 1.0),
        ("/a/c", 2.0),
        ("/a/c/s", 5.0),
        ("/a/c/s/s", 2.0),
        ("/a/c/s/s/t", 1.0),
    ] {
        let estimate = synopsis.estimate(&parse_query(query).unwrap());
        assert!(
            (estimate - expected).abs() < 1e-6,
            "{query}: estimated {estimate}, expected {expected}"
        );
    }
}

/// Observation 3: the result count of //s//s//p equals the sum of the
/// (s,p) child counts at recursion levels 1 and above — which is also the
/// exact answer on the document.
#[test]
fn observation3_recursive_descendant_count() {
    let doc = xseed::xmlkit::samples::figure2_document();
    let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
    let storage = NokStorage::from_document(&doc);
    let evaluator = Evaluator::new(&storage);
    let query = parse_query("//s//s//p").unwrap();
    assert_eq!(evaluator.count(&query), 5);
    assert!((synopsis.estimate(&query) - 5.0).abs() < 1e-6);
}

/// Examples 4 and 5: on a document with ancestor/sibling correlations, the
/// kernel's independence assumptions produce errors, and HET entries for
/// the affected paths repair them (Table 1's role).
#[test]
fn examples4_and_5_het_repairs_independence_errors() {
    let doc = xseed::xmlkit::samples::figure4_document();
    let storage = NokStorage::from_document(&doc);
    let evaluator = Evaluator::new(&storage);
    let queries = ["/a/b/d/e", "/a/c/d/f", "/a/b/d[f]/e"];

    let bare = XseedSynopsis::build(&doc, XseedConfig::default());
    let (with_het, _) =
        XseedSynopsis::build_with_het(&doc, XseedConfig::default().with_bsel_threshold(0.99));

    let mut bare_error = 0.0;
    let mut het_error = 0.0;
    for text in queries {
        let query = parse_query(text).unwrap();
        let actual = evaluator.count(&query) as f64;
        bare_error += (bare.estimate(&query) - actual).abs();
        het_error += (with_het.estimate(&query) - actual).abs();
    }
    assert!(
        bare_error > 1.0,
        "the correlated document must fool the bare kernel"
    );
    assert!(
        het_error < 0.25 * bare_error,
        "HET error {het_error} should be far below kernel error {bare_error}"
    );
}

/// Section 2.1: path and query recursion levels of the running examples.
#[test]
fn section21_recursion_definitions() {
    let doc = xseed::xmlkit::samples::figure2_document();
    let stats = DocumentStats::compute(&doc);
    assert_eq!(stats.max_recursion_level, 2);

    let recursive = parse_query("//s//s").unwrap();
    assert!(recursive.is_potentially_recursive());
    assert_eq!(recursive.classify(), QueryClass::ComplexPath);
    let simple = parse_query("/a/c/s/s").unwrap();
    assert!(!simple.is_potentially_recursive());
    assert_eq!(simple.classify(), QueryClass::SimplePath);
    let wildcard = parse_query("//*//*").unwrap();
    assert!(wildcard.is_potentially_recursive());
}

/// The paper's sample CP query shape parses, classifies, and round-trips.
#[test]
fn section61_sample_query() {
    let q = parse_query("//regions/australia/item[shipping]/location").unwrap();
    assert_eq!(q.classify(), QueryClass::ComplexPath);
    assert_eq!(q.to_string(), "//regions/australia/item[shipping]/location");
}
