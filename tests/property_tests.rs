//! Property-based tests over randomly generated documents and queries,
//! checking the invariants the synopsis design relies on.

use proptest::prelude::*;
use xseed::prelude::*;

/// Strategy: a small random XML document described as a nested tree over a
/// tiny alphabet (so recursion and repeated labels actually happen).
fn arb_document() -> impl Strategy<Value = Document> {
    // A tree of label indices with bounded depth/size.
    let leaf = (0u8..5).prop_map(|l| Tree {
        label: l,
        children: vec![],
    });
    let tree = leaf.prop_recursive(4, 60, 5, |inner| {
        ((0u8..5), prop::collection::vec(inner, 0..5))
            .prop_map(|(label, children)| Tree { label, children })
    });
    tree.prop_map(|t| {
        let mut builder = xseed::xmlkit::tree::DocumentBuilder::new();
        build(&t, &mut builder);
        builder.finish().expect("generated tree is balanced")
    })
}

#[derive(Debug, Clone)]
struct Tree {
    label: u8,
    children: Vec<Tree>,
}

fn build(tree: &Tree, builder: &mut xseed::xmlkit::tree::DocumentBuilder) {
    const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
    builder.start_element(NAMES[tree.label as usize]);
    for child in &tree.children {
        build(child, builder);
    }
    builder.end_element();
}

/// Strategy: a random simple or descendant path over the same alphabet.
fn arb_query() -> impl Strategy<Value = PathExpr> {
    let step = (0u8..5, prop::bool::ANY, prop::bool::ANY);
    prop::collection::vec(step, 1..5).prop_map(|steps| {
        const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
        let steps = steps
            .into_iter()
            .map(|(label, descendant, wildcard)| xseed::xpathkit::Step {
                axis: if descendant {
                    xseed::xpathkit::Axis::Descendant
                } else {
                    xseed::xpathkit::Axis::Child
                },
                test: if wildcard {
                    xseed::xpathkit::NodeTest::Wildcard
                } else {
                    xseed::xpathkit::NodeTest::Name(NAMES[label as usize].to_string())
                },
                predicates: vec![],
            })
            .collect();
        PathExpr::new(steps)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The XML writer and SAX parser round-trip every generated document.
    #[test]
    fn writer_parser_roundtrip(doc in arb_document()) {
        let text = xseed::xmlkit::writer::to_string(&doc);
        let reparsed = Document::parse_str(&text).unwrap();
        prop_assert!(doc.structurally_equal(&reparsed));
    }

    /// Kernel construction is insensitive to the construction path
    /// (in-memory document vs. SAX text).
    #[test]
    fn kernel_construction_paths_agree(doc in arb_document()) {
        let text = xseed::xmlkit::writer::to_string(&doc);
        let from_doc = xseed::xseed_core::KernelBuilder::from_document(&doc);
        let from_text = xseed::xseed_core::KernelBuilder::from_xml_str(&text).unwrap();
        prop_assert_eq!(from_doc.to_string(), from_text.to_string());
    }

    /// The kernel's total element count and per-vertex cardinalities match
    /// the document exactly (they are exact counters, not estimates).
    #[test]
    fn kernel_counts_are_exact(doc in arb_document()) {
        let kernel = xseed::xseed_core::KernelBuilder::from_document(&doc);
        prop_assert_eq!(kernel.element_count(), doc.element_count() as u64);
        let hist = doc.label_histogram();
        for (label, count) in hist.iter().enumerate() {
            let label = xseed::xmlkit::names::LabelId(label as u32);
            if let Some(vertex) = kernel.vertex_by_label(label) {
                if Some(vertex) != kernel.root() {
                    prop_assert_eq!(kernel.vertex_cardinality(vertex), *count as u64);
                }
            }
        }
    }

    /// Kernel serialization round-trips.
    #[test]
    fn kernel_serialization_roundtrip(doc in arb_document()) {
        let kernel = xseed::xseed_core::KernelBuilder::from_document(&doc);
        let back = xseed::xseed_core::Kernel::deserialize(&kernel.serialize()).unwrap();
        prop_assert_eq!(kernel.to_string(), back.to_string());
        prop_assert_eq!(kernel.element_count(), back.element_count());
    }

    /// Estimates are always finite and non-negative, and simple rooted
    /// label paths taken from the document itself are estimated exactly
    /// when the synopsis carries a full HET.
    #[test]
    fn estimates_are_finite_and_simple_paths_exact(doc in arb_document(), query in arb_query()) {
        let (synopsis, _) = XseedSynopsis::build_with_het(&doc, XseedConfig::default());
        let estimate = synopsis.estimate(&query);
        prop_assert!(estimate.is_finite());
        prop_assert!(estimate >= 0.0);

        let path_tree = PathTree::from_document(&doc);
        for (expr, actual) in path_tree.all_simple_paths(doc.names()) {
            let est = synopsis.estimate(&expr);
            prop_assert!((est - actual as f64).abs() < 1e-6,
                "{} estimated {} actual {}", expr, est, actual);
        }
    }

    /// The exact evaluator agrees with the path tree on every rooted
    /// simple path of the document.
    #[test]
    fn evaluator_agrees_with_path_tree(doc in arb_document()) {
        let storage = NokStorage::from_document(&doc);
        let evaluator = Evaluator::new(&storage);
        let path_tree = PathTree::from_document(&doc);
        for (expr, actual) in path_tree.all_simple_paths(doc.names()) {
            prop_assert_eq!(evaluator.count(&expr), actual);
        }
    }

    /// Estimation over a wildcard descendant query is always finite and
    /// at least 1 (the root always matches). When the document is flat
    /// (depth ≤ 2) the kernel admits no false-positive paths and the
    /// estimate equals the element count exactly; deeper documents may
    /// deviate because the label-split graph can contain cycles that do
    /// not correspond to document paths (Observation 1).
    #[test]
    fn wildcard_descendant_counts_every_element(doc in arb_document()) {
        let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        let q = parse_query("//*").unwrap();
        let est = synopsis.estimate(&q);
        prop_assert!(est.is_finite());
        prop_assert!(est >= 1.0);
        if doc.max_depth() <= 2 {
            prop_assert!((est - doc.element_count() as f64).abs() < 1e-6,
                "flat-document //* estimate {} vs {}", est, doc.element_count());
        }
    }

    /// Adding then removing a random subtree restores every edge statistic
    /// and the element count (vertices introduced for brand-new labels may
    /// remain as empty tombstones, so the comparison is on edges).
    #[test]
    fn add_remove_subtree_roundtrip(doc in arb_document(), subtree in arb_document()) {
        let original = xseed::xseed_core::KernelBuilder::from_document(&doc);
        let mut kernel = original.clone();
        let root_name = doc.name(doc.root()).to_string();
        kernel.add_subtree(&[root_name.as_str()], &subtree).unwrap();
        kernel.remove_subtree(&[root_name.as_str()], &subtree).unwrap();
        let edges_of = |k: &xseed::xseed_core::Kernel| {
            k.to_string().lines().skip(1).map(String::from).collect::<Vec<_>>()
        };
        prop_assert_eq!(edges_of(&kernel), edges_of(&original));
        prop_assert_eq!(kernel.element_count(), original.element_count());
    }

    /// Query parsing round-trips through Display for generated queries.
    #[test]
    fn query_display_parse_roundtrip(query in arb_query()) {
        let text = query.to_string();
        let reparsed = parse_query(&text).unwrap();
        prop_assert_eq!(query, reparsed);
    }

    /// The exact evaluator never returns more matches for a query with an
    /// extra predicate than for the same query without it.
    #[test]
    fn predicates_are_monotone(doc in arb_document()) {
        let storage = NokStorage::from_document(&doc);
        let evaluator = Evaluator::new(&storage);
        let base = parse_query("//a/b").unwrap();
        let constrained = parse_query("//a[c]/b").unwrap();
        prop_assert!(evaluator.count(&constrained) <= evaluator.count(&base));
    }
}

/// Strategy: a random query that may carry branching predicates (single or
/// nested one level), exercising the streaming matcher's deferred
/// predicate-evaluation machinery.
fn arb_pred_query() -> impl Strategy<Value = PathExpr> {
    let pred_step = (0u8..5, prop::bool::ANY);
    let pred = prop::collection::vec(pred_step, 1..3);
    let step = (
        0u8..5,
        prop::bool::ANY,
        prop::bool::ANY,
        prop::collection::vec(pred, 0..3),
    );
    prop::collection::vec(step, 1..5).prop_map(|steps| {
        const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
        let steps = steps
            .into_iter()
            .map(
                |(label, descendant, wildcard, preds)| xseed::xpathkit::Step {
                    axis: if descendant {
                        xseed::xpathkit::Axis::Descendant
                    } else {
                        xseed::xpathkit::Axis::Child
                    },
                    test: if wildcard {
                        xseed::xpathkit::NodeTest::Wildcard
                    } else {
                        xseed::xpathkit::NodeTest::Name(NAMES[label as usize].to_string())
                    },
                    predicates: preds
                        .into_iter()
                        .map(|pred_steps| {
                            PathExpr::new(
                                pred_steps
                                    .into_iter()
                                    .map(|(l, desc)| xseed::xpathkit::Step {
                                        axis: if desc {
                                            xseed::xpathkit::Axis::Descendant
                                        } else {
                                            xseed::xpathkit::Axis::Child
                                        },
                                        test: xseed::xpathkit::NodeTest::Name(
                                            NAMES[l as usize].to_string(),
                                        ),
                                        predicates: vec![],
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                },
            )
            .collect();
        PathExpr::new(steps)
    })
}

/// Tolerance for streaming-vs-materialized agreement: 1e-9 absolute, with
/// an ulp-scale relative term for large cardinalities (the two paths
/// multiply identical factors in slightly different associations).
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9 + 1e-12 * a.abs().max(b.abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The streaming matcher over the frozen kernel produces exactly the
    /// estimates of the materialized-EPT matcher, with and without a HET
    /// attached, over random documents and random (predicate-bearing)
    /// queries — including under a tiny `max_ept_nodes`, where the old
    /// hard cap used to let the two paths truncate at different frontiers
    /// (those cases were skipped here before threshold escalation made
    /// the frontier a pure function of the snapshot).
    #[test]
    fn streaming_equals_materialized_oracle(
        doc in arb_document(),
        queries in prop::collection::vec(arb_pred_query(), 1..8),
    ) {
        let configs = [
            XseedConfig::default().with_card_threshold(0.5),
            XseedConfig { max_ept_nodes: 5, ..XseedConfig::default() },
        ];
        for config in configs {
            let bare = XseedSynopsis::build(&doc, config.clone());
            let (with_het, _) = XseedSynopsis::build_with_het(&doc, config.clone());
            for synopsis in [&bare, &with_het] {
                let oracle = synopsis.estimator();
                prop_assert!(oracle.ept_len() <= synopsis.config().max_ept_nodes.max(1));
                let mut streaming = synopsis.streaming_matcher();
                for query in &queries {
                    let expected = oracle.estimate(query);
                    let got = streaming.estimate(query);
                    prop_assert!(
                        close(expected, got),
                        "{} (het: {}): streaming {} != materialized {}",
                        query, synopsis.het().is_some(), got, expected
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bound-mode soundness: over random documents and random
    /// (predicate-bearing) queries, the upper bound dominates both the
    /// exact NoK cardinality and the point estimate — with a full HET,
    /// without one, and under `card_threshold` pruning (including the
    /// escalation a tiny `max_ept_nodes` forces; a heavily pruned
    /// synopsis may estimate worse, but its bound must stay sound).
    #[test]
    fn bound_dominates_truth_and_estimate(
        doc in arb_document(),
        queries in prop::collection::vec(arb_pred_query(), 1..8),
    ) {
        let storage = NokStorage::from_document(&doc);
        let evaluator = Evaluator::new(&storage);
        let truncated = XseedConfig {
            max_ept_nodes: 3,
            ..XseedConfig::default()
        };
        let configs = [
            XseedConfig::default(),
            XseedConfig::default().with_card_threshold(0.5),
            truncated,
        ];
        for (i, config) in configs.iter().enumerate() {
            let bare = XseedSynopsis::build(&doc, config.clone());
            let (with_het, _) = XseedSynopsis::build_with_het(&doc, config.clone());
            for synopsis in [&bare, &with_het] {
                for query in &queries {
                    let actual = evaluator.count(query) as f64;
                    let be = synopsis.estimate_bound(query);
                    prop_assert!(
                        be.bound + 1e-9 >= actual,
                        "{} (config {}, het: {}): bound {} < true cardinality {}",
                        query, i, synopsis.het().is_some(), be.bound, actual
                    );
                    prop_assert!(
                        be.bound + 1e-9 >= be.estimate,
                        "{} (config {}, het: {}): bound {} < point estimate {}",
                        query, i, synopsis.het().is_some(), be.bound, be.estimate
                    );
                }
            }
        }
    }
}

/// Builds the HET for `doc` twice — with the production streaming builder
/// and with the retained EPT+NoK reference oracle — and asserts the two
/// tables are entry-for-entry identical: same keys and kinds, exact
/// cardinalities and backward selectivities bit-for-bit (both derive them
/// from the same integer statistics), and errors equal up to the
/// float-association noise between the streaming and materialized
/// estimate paths.
fn assert_streaming_het_matches_reference(
    doc: &Document,
    config: &xseed::xseed_core::XseedConfig,
) -> Result<(), TestCaseError> {
    use xseed::xseed_core::het::builder::reference::ReferenceHetBuilder;
    use xseed::xseed_core::HetBuilder;

    let kernel = xseed::xseed_core::KernelBuilder::from_document(doc);
    let path_tree = PathTree::from_document(doc);
    let storage = NokStorage::from_document(doc);
    let (streamed, new_stats) = HetBuilder::new(&kernel, &path_tree, &storage, config).build();
    let (oracle, old_stats) =
        ReferenceHetBuilder::new(&kernel, &path_tree, &storage, config).build();

    prop_assert_eq!(new_stats.simple_entries, old_stats.simple_entries);
    prop_assert_eq!(new_stats.correlated_entries, old_stats.correlated_entries);
    prop_assert_eq!(new_stats.exact_evaluations, old_stats.exact_evaluations);
    prop_assert_eq!(new_stats.candidate_nodes, old_stats.candidate_nodes);
    prop_assert_eq!(streamed.len(), oracle.len());
    prop_assert_eq!(streamed.budget(), oracle.budget());

    let index = |t: &xseed::xseed_core::HyperEdgeTable| {
        t.entries_by_error()
            .into_iter()
            .map(|e| ((e.key, e.kind), (e.cardinality, e.bsel, e.error)))
            .collect::<std::collections::HashMap<_, _>>()
    };
    let a = index(&streamed);
    let b = index(&oracle);
    prop_assert_eq!(a.len(), b.len());
    for (k, (card_a, bsel_a, err_a)) in &a {
        let Some((card_b, bsel_b, err_b)) = b.get(k) else {
            return Err(TestCaseError::fail(format!("oracle misses entry {k:?}")));
        };
        prop_assert_eq!(card_a, card_b, "cardinality for {:?}", k);
        prop_assert_eq!(bsel_a.to_bits(), bsel_b.to_bits(), "bsel for {:?}", k);
        prop_assert!(
            close(*err_a, *err_b),
            "error for {:?}: streamed {} vs oracle {}",
            k,
            err_a,
            err_b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streaming-driven HET builder produces a table entry-for-entry
    /// identical to the old EPT+NoK reference construction on random
    /// documents, across MBP settings and with/without `card_threshold`
    /// truncation of the expansion.
    #[test]
    fn streaming_het_build_equals_reference_on_random_docs(doc in arb_document()) {
        for config in [
            XseedConfig::default(),
            XseedConfig::default().with_bsel_threshold(0.9),
            XseedConfig::default()
                .with_bsel_threshold(0.9)
                .with_max_branching_predicates(2),
            // card_threshold truncation: the frontier stops early on both
            // paths (the memo truncates at the materialized frontier).
            XseedConfig::default()
                .with_bsel_threshold(0.9)
                .with_card_threshold(2.0),
            // A tiny node bound: both builders escalate the threshold
            // identically, so the tables still match entry-for-entry.
            XseedConfig { max_ept_nodes: 5, ..XseedConfig::default() },
        ] {
            assert_streaming_het_matches_reference(&doc, &config)?;
        }
    }

    /// Partitioned construction is bit-identical to the monolithic build
    /// on random documents: same serialized kernel bytes, same HET entry
    /// count, and bit-equal estimates for random queries, for every
    /// partition count from degenerate to more-than-root-children.
    #[test]
    fn partitioned_build_is_bit_identical_on_random_docs(
        doc in arb_document(),
        queries in prop::collection::vec(arb_query(), 1..6),
    ) {
        let config = XseedConfig::default().with_bsel_threshold(0.9);
        let (mono, mono_stats) = XseedSynopsis::build_with_het(&doc, config.clone());
        let mono_bytes = mono.kernel().serialize();
        for partitions in [1usize, 2, 3, 5, 9] {
            let (part, part_stats) =
                XseedSynopsis::build_with_het_partitioned(&doc, config.clone(), partitions);
            prop_assert_eq!(&part.kernel().serialize(), &mono_bytes);
            prop_assert_eq!(part_stats.simple_entries, mono_stats.simple_entries);
            prop_assert_eq!(part_stats.correlated_entries, mono_stats.correlated_entries);
            prop_assert_eq!(
                part.het().map(|h| h.len()),
                mono.het().map(|h| h.len())
            );
            for query in &queries {
                prop_assert_eq!(
                    part.estimate(query).to_bits(),
                    mono.estimate(query).to_bits(),
                    "estimate for {} diverges at partitions={}",
                    query,
                    partitions
                );
            }
        }
    }

    /// `CountStablePartition::compute` lands on a true fixpoint: one more
    /// refinement pass returns the identical class vector (not merely the
    /// same class count) on random documents.
    #[test]
    fn count_stable_partition_is_a_true_fixpoint(doc in arb_document()) {
        use xseed::treesketch::CountStablePartition;
        let fixed = CountStablePartition::compute(&doc);
        let refined = fixed.refine_step(&doc);
        prop_assert_eq!(fixed.classes(), refined.classes());
        prop_assert_eq!(fixed.class_count(), refined.class_count());
    }
}

/// The streaming-driven HET builder matches the reference construction on
/// the paper's canonical XMark/DBLP/Treebank documents, with and without
/// `card_threshold` truncation.
#[test]
fn streaming_het_build_equals_reference_on_datagen_workloads() {
    use xseed::datagen::Dataset;

    // `None` = the recursive preset scaled to the generated document (the
    // preset needs the element count, so it is computed after generation).
    let scenarios: [(Dataset, f64, Option<XseedConfig>); 4] = [
        (Dataset::XMark10, 0.02, Some(XseedConfig::default())),
        (
            Dataset::XMark10,
            0.02,
            Some(XseedConfig::default().with_card_threshold(2.0)),
        ),
        (Dataset::Dblp, 0.01, Some(XseedConfig::default())),
        (Dataset::TreebankSmall, 0.02, None),
    ];
    for (dataset, scale, config) in scenarios {
        let doc = dataset.generate_scaled(scale);
        let config = config.unwrap_or_else(|| XseedConfig::recursive_for_size(doc.element_count()));
        assert_streaming_het_matches_reference(&doc, &config)
            .unwrap_or_else(|e| panic!("{dataset:?}: {e}"));
    }
}

/// The streaming matcher agrees with the materialized oracle on realistic
/// SP/BP/CP workloads over the paper's synthetic datasets — a
/// non-recursive one with the default configuration and the
/// Treebank-style recursive one with the paper's recursive preset — with
/// and without a HET.
#[test]
fn streaming_matches_materialized_on_datagen_workloads() {
    use xseed::datagen::{Dataset, WorkloadSpec};

    let scenarios = [
        (Dataset::XMark10, 0.02, None),
        (Dataset::Dblp, 0.01, None),
        (Dataset::TreebankSmall, 0.02, Some(())),
    ];
    for (dataset, scale, recursive) in scenarios {
        let doc = dataset.generate_scaled(scale);
        let config = match recursive {
            Some(()) => XseedConfig::recursive_for_size(doc.element_count()),
            None => XseedConfig::default(),
        };
        let workload = WorkloadGenerator::new(&doc, 0xBEEF).generate(&WorkloadSpec::small());
        assert!(!workload.is_empty());

        let bare = XseedSynopsis::build(&doc, config.clone());
        let (with_het, _) = XseedSynopsis::build_with_het(&doc, config);
        for synopsis in [&bare, &with_het] {
            let oracle = synopsis.estimator();
            assert!(
                oracle.ept_len() <= synopsis.config().max_ept_nodes,
                "{dataset:?}: threshold escalation must keep the expansion within the node bound"
            );
            let mut streaming = synopsis.streaming_matcher();
            for query in workload.all() {
                let expected = oracle.estimate(query);
                let got = streaming.estimate(query);
                assert!(
                    close(expected, got),
                    "{dataset:?} {query} (het: {}): streaming {got} != materialized {expected}",
                    synopsis.het().is_some()
                );
            }
        }
    }
}
