//! Differential tests pinning partitioned synopsis construction to the
//! monolithic build: same serialized kernel bytes, entry-for-entry equal
//! hyper-edge tables, and bit-identical estimates for every partition
//! count — the "truncation divergence" bug family is structurally
//! excluded because the partitioned path merges exact per-partition
//! statistics *before* any truncation or estimation decision is made.

use xseed::datagen::{Dataset, WorkloadGenerator, WorkloadSpec};
use xseed::prelude::*;
use xseed::xseed_core::het::{HetEntryKind, HyperEdgeTable};

/// The partition counts every differential test pins: the degenerate
/// single-partition plan, even splits, and a count coprime to typical
/// root fan-outs so ranges land mid-sibling-run.
const PARTITIONS: [usize; 4] = [1, 2, 4, 7];

/// Flattens a HET into a sortable, bit-exact value vector.
fn het_entries(het: &HyperEdgeTable) -> Vec<(u64, u8, u64, u64, u64)> {
    let mut entries: Vec<_> = het
        .entries_by_error()
        .into_iter()
        .map(|e| {
            let kind = matches!(e.kind, HetEntryKind::Correlated) as u8;
            (
                e.key,
                kind,
                e.cardinality,
                e.bsel.to_bits(),
                e.error.to_bits(),
            )
        })
        .collect();
    entries.sort_unstable();
    entries
}

/// Builds monolithically and with every partition count in `PARTITIONS`,
/// asserting kernels, HETs, and a workload of estimates are bit-identical.
fn assert_partitioned_build_matches(doc: &Document, config: &XseedConfig, label: &str) {
    let (mono, mono_stats) = XseedSynopsis::build_with_het(doc, config.clone());
    let mono_kernel = mono.kernel().serialize();
    let mono_het = het_entries(mono.het().expect("monolithic build carries a HET"));
    let workload = WorkloadGenerator::new(doc, 0xD1FF).generate(&WorkloadSpec::small());

    for partitions in PARTITIONS {
        // Kernel-only partitioned build: byte-identical serialized kernel.
        let kernel_only = XseedSynopsis::build_partitioned(doc, config.clone(), partitions);
        assert_eq!(
            kernel_only.kernel().serialize(),
            mono_kernel,
            "{label}: kernel bytes diverge at partitions={partitions}"
        );

        // Full partitioned build: HET entry-for-entry, stats, estimates.
        let (part, part_stats) =
            XseedSynopsis::build_with_het_partitioned(doc, config.clone(), partitions);
        assert_eq!(part.kernel().serialize(), mono_kernel, "{label}");
        assert_eq!(
            part_stats.simple_entries, mono_stats.simple_entries,
            "{label}: simple entries at partitions={partitions}"
        );
        assert_eq!(
            part_stats.correlated_entries, mono_stats.correlated_entries,
            "{label}: correlated entries at partitions={partitions}"
        );
        assert_eq!(
            part_stats.exact_evaluations, mono_stats.exact_evaluations,
            "{label}: exact evaluations at partitions={partitions}"
        );
        assert_eq!(
            het_entries(part.het().expect("partitioned build carries a HET")),
            mono_het,
            "{label}: HET entries diverge at partitions={partitions}"
        );

        let mut mono_matcher = mono.streaming_matcher();
        let mut part_matcher = part.streaming_matcher();
        for query in workload.all() {
            assert_eq!(
                part_matcher.estimate(query).to_bits(),
                mono_matcher.estimate(query).to_bits(),
                "{label}: estimate for {query} diverges at partitions={partitions}"
            );
        }
    }
}

#[test]
fn partitioned_build_matches_monolithic_on_paper_samples() {
    for (doc, label) in [
        (xseed::xmlkit::samples::figure2_document(), "figure2"),
        (xseed::xmlkit::samples::figure4_document(), "figure4"),
    ] {
        let config = XseedConfig::default().with_bsel_threshold(0.99);
        assert_partitioned_build_matches(&doc, &config, label);
    }
}

#[test]
fn partitioned_build_matches_monolithic_on_xmark() {
    let doc = Dataset::XMark10.generate_scaled(0.02);
    assert_partitioned_build_matches(&doc, &XseedConfig::default(), "xmark");
    // The card_threshold truncation path — historically the divergence-prone
    // configuration — must stay bit-identical too.
    assert_partitioned_build_matches(
        &doc,
        &XseedConfig::default().with_card_threshold(2.0),
        "xmark/card-threshold",
    );
}

#[test]
fn partitioned_build_matches_monolithic_on_dblp() {
    let doc = Dataset::Dblp.generate_scaled(0.01);
    assert_partitioned_build_matches(&doc, &XseedConfig::default(), "dblp");
}

#[test]
fn partitioned_build_matches_monolithic_on_recursive_treebank() {
    let doc = Dataset::TreebankSmall.generate_scaled(0.02);
    let config = XseedConfig::recursive_for_size(doc.element_count());
    assert_partitioned_build_matches(&doc, &config, "treebank");
}

#[test]
fn partition_plans_cover_the_document_for_any_worker_count() {
    use xseed::xseed_core::PartitionPlan;
    let doc = Dataset::Dblp.generate_scaled(0.01);
    let root_children = doc.children(doc.root()).count();
    for partitions in [1, 2, 3, 5, 8, 64, root_children + 10] {
        let plan = PartitionPlan::for_document(&doc, partitions);
        assert_eq!(plan.partition_count(), partitions.max(1));
        let mut next = 0;
        for range in plan.ranges() {
            assert_eq!(range.start, next, "ranges must be contiguous");
            assert!(range.end >= range.start);
            next = range.end;
        }
        assert_eq!(next, root_children, "ranges must cover every root child");
    }
}
