//! Accuracy regression suite: committed golden fixtures pin the
//! estimator's per-query output and aggregate error on the six
//! canonical workloads, so a future change cannot silently degrade
//! estimation quality (cf. the regression discipline argued for by the
//! cardinality-estimation benchmark literature).
//!
//! Each scenario builds the synopsis **with** its HET (the full
//! estimation stack), runs the deterministic SP/BP/CP workload, and
//! checks against `tests/fixtures/<name>.golden`:
//!
//! * every per-query estimate must match the committed value (tight
//!   tolerance — this catches any estimator drift, better or worse);
//! * the aggregate NRMSE must not exceed the committed value by more
//!   than 5% (the headroom exists only so a justified estimator change
//!   can land together with regenerated fixtures).
//!
//! Regenerate the fixtures with
//! `UPDATE_GOLDEN=1 cargo test --test accuracy` after an *intentional*
//! accuracy change, and commit the diff — reviewers then see exactly
//! which estimates moved.

use xseed::prelude::*;

/// Workload seed; changing it invalidates every fixture.
const SEED: u64 = 0xACC0;

struct Scenario {
    name: &'static str,
    dataset: Dataset,
    scale: f64,
    recursive: bool,
}

const SCENARIOS: [Scenario; 6] = [
    Scenario {
        name: "xmark",
        dataset: Dataset::XMark10,
        scale: 0.02,
        recursive: false,
    },
    Scenario {
        name: "dblp",
        dataset: Dataset::Dblp,
        scale: 0.01,
        recursive: false,
    },
    Scenario {
        name: "treebank",
        dataset: Dataset::TreebankSmall,
        scale: 0.02,
        recursive: true,
    },
    // Wide, shallow records with many repeated feature children — the
    // shape the other three scenarios don't cover.
    Scenario {
        name: "swissprot",
        dataset: Dataset::SwissProt,
        scale: 0.02,
        recursive: false,
    },
    // Relational-style order/lineitem nesting: deep fan-out but zero
    // recursion, the classic data-centric shape.
    Scenario {
        name: "tpch",
        dataset: Dataset::Tpch,
        scale: 0.02,
        recursive: false,
    },
    // Text-centric articles with shallow recursion (nested sections) —
    // between Treebank's heavy recursion and the flat record datasets.
    Scenario {
        name: "xbench",
        dataset: Dataset::XBench,
        scale: 0.02,
        recursive: true,
    },
];

struct Measured {
    /// `(query text, estimate, actual)` in workload order.
    rows: Vec<(String, f64, u64)>,
    nrmse: f64,
}

fn measure(scenario: &Scenario) -> Measured {
    let doc = scenario.dataset.generate_scaled(scenario.scale);
    let config = if scenario.recursive {
        XseedConfig::recursive_for_size(doc.element_count())
    } else {
        XseedConfig::default()
    };
    let workload = WorkloadGenerator::new(&doc, SEED).generate(&WorkloadSpec::small());
    assert!(!workload.is_empty());
    let (synopsis, stats) = XseedSynopsis::build_with_het(&doc, config);
    assert!(stats.simple_entries > 0);

    let storage = NokStorage::from_document(&doc);
    let eval = Evaluator::new(&storage);
    let mut matcher = synopsis.streaming_matcher();
    let rows: Vec<(String, f64, u64)> = workload
        .all()
        .map(|q| (q.to_string(), matcher.estimate(q), eval.count(q)))
        .collect();

    // NRMSE: root-mean-squared error normalized by the mean actual
    // cardinality of the workload.
    let n = rows.len() as f64;
    let mse = rows
        .iter()
        .map(|(_, est, act)| (est - *act as f64).powi(2))
        .sum::<f64>()
        / n;
    let mean_actual = rows.iter().map(|(_, _, act)| *act as f64).sum::<f64>() / n;
    assert!(mean_actual > 0.0, "degenerate workload: all actuals zero");
    Measured {
        nrmse: mse.sqrt() / mean_actual,
        rows,
    }
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.golden"))
}

fn render(scenario: &Scenario, measured: &Measured) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# accuracy golden for {name}: dataset={dataset:?} scale={scale} seed={SEED:#x} \
         queries={n}\n\
         # regenerate with: UPDATE_GOLDEN=1 cargo test --test accuracy\n",
        name = scenario.name,
        dataset = scenario.dataset,
        scale = scenario.scale,
        n = measured.rows.len(),
    ));
    out.push_str(&format!("nrmse\t{:.9}\n", measured.nrmse));
    for (query, est, actual) in &measured.rows {
        out.push_str(&format!("q\t{query}\t{est:.9}\t{actual}\n"));
    }
    out
}

struct Golden {
    rows: Vec<(String, f64, u64)>,
    nrmse: f64,
}

fn parse_golden(name: &str, text: &str) -> Golden {
    let mut rows = Vec::new();
    let mut nrmse = None;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["nrmse", value] => nrmse = Some(value.parse::<f64>().unwrap()),
            ["q", query, est, actual] => rows.push((
                query.to_string(),
                est.parse::<f64>().unwrap(),
                actual.parse::<u64>().unwrap(),
            )),
            other => panic!("{name}.golden: malformed line {other:?}"),
        }
    }
    Golden {
        rows,
        nrmse: nrmse.unwrap_or_else(|| panic!("{name}.golden: missing nrmse line")),
    }
}

fn check(scenario: &Scenario) {
    let measured = measure(scenario);
    let path = fixture_path(scenario.name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render(scenario, &measured)).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with UPDATE_GOLDEN=1 cargo test --test accuracy",
            path.display()
        )
    });
    let golden = parse_golden(scenario.name, &text);

    assert_eq!(
        measured.rows.len(),
        golden.rows.len(),
        "{}: workload size changed (did the generator or seed change?)",
        scenario.name
    );
    for (i, ((query, est, actual), (g_query, g_est, g_actual))) in
        measured.rows.iter().zip(&golden.rows).enumerate()
    {
        assert_eq!(
            query, g_query,
            "{}: query {i} changed — workload generation drifted",
            scenario.name
        );
        assert_eq!(
            actual, g_actual,
            "{}: {query}: actual cardinality changed — dataset generation drifted",
            scenario.name
        );
        // Golden values are printed with 9 fractional digits, so compare
        // against the committed rounding, not full f64 precision.
        let tolerance = 2e-9 + 1e-9 * est.abs();
        assert!(
            (est - g_est).abs() <= tolerance,
            "{}: {query}: estimate {est} drifted from golden {g_est}",
            scenario.name
        );
    }
    assert!(
        measured.nrmse.is_finite(),
        "{}: NRMSE must be finite",
        scenario.name
    );
    assert!(
        measured.nrmse <= golden.nrmse * 1.05 + 1e-9,
        "{}: aggregate NRMSE regressed: {} vs golden {} — estimation quality degraded",
        scenario.name,
        measured.nrmse,
        golden.nrmse
    );
}

#[test]
fn xmark_accuracy_matches_golden() {
    check(&SCENARIOS[0]);
}

#[test]
fn dblp_accuracy_matches_golden() {
    check(&SCENARIOS[1]);
}

#[test]
fn treebank_accuracy_matches_golden() {
    check(&SCENARIOS[2]);
}

#[test]
fn swissprot_accuracy_matches_golden() {
    check(&SCENARIOS[3]);
}

#[test]
fn tpch_accuracy_matches_golden() {
    check(&SCENARIOS[4]);
}

#[test]
fn xbench_accuracy_matches_golden() {
    check(&SCENARIOS[5]);
}
