//! Accuracy regression suite: committed golden fixtures pin the
//! estimator's per-query output and aggregate error on the six
//! canonical workloads, so a future change cannot silently degrade
//! estimation quality (cf. the regression discipline argued for by the
//! cardinality-estimation benchmark literature).
//!
//! Each scenario builds the synopsis **with** its HET (the full
//! estimation stack), runs the deterministic SP/BP/CP workload, and
//! checks against `tests/fixtures/<name>.golden`:
//!
//! * every per-query estimate and upper bound must match the committed
//!   values (tight tolerance — this catches any estimator drift, better
//!   or worse);
//! * every upper bound must dominate both the true cardinality and the
//!   point estimate — zero violations, on every workload (the
//!   differential soundness contract of `EST … mode=bound`);
//! * the per-workload milli-q percentiles (p50/p90/p99, same bucket
//!   edges as the service's online `METRICS qerr` tracking) for both
//!   modes must match the committed `qerr_point` / `qerr_bound` lines
//!   exactly (they are deterministic integers);
//! * the aggregate NRMSE must not exceed the committed value by more
//!   than 5% (the headroom exists only so a justified estimator change
//!   can land together with regenerated fixtures).
//!
//! Regenerate the fixtures with
//! `UPDATE_GOLDEN=1 cargo test --test accuracy` after an *intentional*
//! accuracy change, and commit the diff — reviewers then see exactly
//! which estimates moved.

use xseed::prelude::*;

/// Workload seed; changing it invalidates every fixture.
const SEED: u64 = 0xACC0;

struct Scenario {
    name: &'static str,
    dataset: Dataset,
    scale: f64,
    recursive: bool,
}

const SCENARIOS: [Scenario; 6] = [
    Scenario {
        name: "xmark",
        dataset: Dataset::XMark10,
        scale: 0.02,
        recursive: false,
    },
    Scenario {
        name: "dblp",
        dataset: Dataset::Dblp,
        scale: 0.01,
        recursive: false,
    },
    Scenario {
        name: "treebank",
        dataset: Dataset::TreebankSmall,
        scale: 0.02,
        recursive: true,
    },
    // Wide, shallow records with many repeated feature children — the
    // shape the other three scenarios don't cover.
    Scenario {
        name: "swissprot",
        dataset: Dataset::SwissProt,
        scale: 0.02,
        recursive: false,
    },
    // Relational-style order/lineitem nesting: deep fan-out but zero
    // recursion, the classic data-centric shape.
    Scenario {
        name: "tpch",
        dataset: Dataset::Tpch,
        scale: 0.02,
        recursive: false,
    },
    // Text-centric articles with shallow recursion (nested sections) —
    // between Treebank's heavy recursion and the flat record datasets.
    Scenario {
        name: "xbench",
        dataset: Dataset::XBench,
        scale: 0.02,
        recursive: true,
    },
];

struct Measured {
    /// `(query text, estimate, bound, actual)` in workload order.
    rows: Vec<(String, f64, f64, u64)>,
    nrmse: f64,
    /// Milli-q `(p50, p90, p99)` of the point estimates.
    qerr_point: (u64, u64, u64),
    /// Milli-q `(p50, p90, p99)` of the upper bounds.
    qerr_bound: (u64, u64, u64),
}

/// Milli-q p50/p90/p99 of `(estimate, actual)` pairs, on the same
/// deterministic power-of-two bucket edges as the service's online
/// q-error tracking.
fn qerr_percentiles(pairs: impl Iterator<Item = (f64, u64)>) -> (u64, u64, u64) {
    use xseed::xseed_service::{q_error_milli, HistogramSnapshot};
    let mut hist = HistogramSnapshot::default();
    for (est, actual) in pairs {
        hist.record(q_error_milli(est, actual));
    }
    (
        hist.percentile(0.5),
        hist.percentile(0.9),
        hist.percentile(0.99),
    )
}

fn measure(scenario: &Scenario) -> Measured {
    let doc = scenario.dataset.generate_scaled(scenario.scale);
    let config = if scenario.recursive {
        XseedConfig::recursive_for_size(doc.element_count())
    } else {
        XseedConfig::default()
    };
    let workload = WorkloadGenerator::new(&doc, SEED).generate(&WorkloadSpec::small());
    assert!(!workload.is_empty());
    let (synopsis, stats) = XseedSynopsis::build_with_het(&doc, config);
    assert!(stats.simple_entries > 0);

    let storage = NokStorage::from_document(&doc);
    let eval = Evaluator::new(&storage);
    let mut matcher = synopsis.streaming_matcher();
    let rows: Vec<(String, f64, f64, u64)> = workload
        .all()
        .map(|q| {
            let be = matcher.estimate_bound(q);
            (q.to_string(), be.estimate, be.bound, eval.count(q))
        })
        .collect();

    // NRMSE: root-mean-squared error normalized by the mean actual
    // cardinality of the workload.
    let n = rows.len() as f64;
    let mse = rows
        .iter()
        .map(|(_, est, _, act)| (est - *act as f64).powi(2))
        .sum::<f64>()
        / n;
    let mean_actual = rows.iter().map(|(_, _, _, act)| *act as f64).sum::<f64>() / n;
    assert!(mean_actual > 0.0, "degenerate workload: all actuals zero");
    Measured {
        nrmse: mse.sqrt() / mean_actual,
        qerr_point: qerr_percentiles(rows.iter().map(|(_, est, _, act)| (*est, *act))),
        qerr_bound: qerr_percentiles(rows.iter().map(|(_, _, bound, act)| (*bound, *act))),
        rows,
    }
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.golden"))
}

fn render(scenario: &Scenario, measured: &Measured) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# accuracy golden for {name}: dataset={dataset:?} scale={scale} seed={SEED:#x} \
         queries={n}\n\
         # regenerate with: UPDATE_GOLDEN=1 cargo test --test accuracy\n",
        name = scenario.name,
        dataset = scenario.dataset,
        scale = scenario.scale,
        n = measured.rows.len(),
    ));
    out.push_str(&format!("nrmse\t{:.9}\n", measured.nrmse));
    let (p50, p90, p99) = measured.qerr_point;
    out.push_str(&format!("qerr_point\t{p50}\t{p90}\t{p99}\n"));
    let (p50, p90, p99) = measured.qerr_bound;
    out.push_str(&format!("qerr_bound\t{p50}\t{p90}\t{p99}\n"));
    for (query, est, bound, actual) in &measured.rows {
        out.push_str(&format!("q\t{query}\t{est:.9}\t{bound:.9}\t{actual}\n"));
    }
    out
}

struct Golden {
    rows: Vec<(String, f64, f64, u64)>,
    nrmse: f64,
    qerr_point: (u64, u64, u64),
    qerr_bound: (u64, u64, u64),
}

fn parse_golden(name: &str, text: &str) -> Golden {
    let mut rows = Vec::new();
    let mut nrmse = None;
    let mut qerr_point = None;
    let mut qerr_bound = None;
    let parse_qerr = |p50: &str, p90: &str, p99: &str| {
        (
            p50.parse::<u64>().unwrap(),
            p90.parse::<u64>().unwrap(),
            p99.parse::<u64>().unwrap(),
        )
    };
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.as_slice() {
            ["nrmse", value] => nrmse = Some(value.parse::<f64>().unwrap()),
            ["qerr_point", p50, p90, p99] => qerr_point = Some(parse_qerr(p50, p90, p99)),
            ["qerr_bound", p50, p90, p99] => qerr_bound = Some(parse_qerr(p50, p90, p99)),
            ["q", query, est, bound, actual] => rows.push((
                query.to_string(),
                est.parse::<f64>().unwrap(),
                bound.parse::<f64>().unwrap(),
                actual.parse::<u64>().unwrap(),
            )),
            other => panic!("{name}.golden: malformed line {other:?}"),
        }
    }
    Golden {
        rows,
        nrmse: nrmse.unwrap_or_else(|| panic!("{name}.golden: missing nrmse line")),
        qerr_point: qerr_point.unwrap_or_else(|| panic!("{name}.golden: missing qerr_point line")),
        qerr_bound: qerr_bound.unwrap_or_else(|| panic!("{name}.golden: missing qerr_bound line")),
    }
}

fn check(scenario: &Scenario) {
    let measured = measure(scenario);
    let path = fixture_path(scenario.name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render(scenario, &measured)).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with UPDATE_GOLDEN=1 cargo test --test accuracy",
            path.display()
        )
    });
    let golden = parse_golden(scenario.name, &text);

    assert_eq!(
        measured.rows.len(),
        golden.rows.len(),
        "{}: workload size changed (did the generator or seed change?)",
        scenario.name
    );
    for (i, ((query, est, bound, actual), (g_query, g_est, g_bound, g_actual))) in
        measured.rows.iter().zip(&golden.rows).enumerate()
    {
        assert_eq!(
            query, g_query,
            "{}: query {i} changed — workload generation drifted",
            scenario.name
        );
        assert_eq!(
            actual, g_actual,
            "{}: {query}: actual cardinality changed — dataset generation drifted",
            scenario.name
        );
        // Golden values are printed with 9 fractional digits, so compare
        // against the committed rounding, not full f64 precision.
        let tolerance = 2e-9 + 1e-9 * est.abs();
        assert!(
            (est - g_est).abs() <= tolerance,
            "{}: {query}: estimate {est} drifted from golden {g_est}",
            scenario.name
        );
        let bound_tolerance = 2e-9 + 1e-9 * bound.abs();
        assert!(
            (bound - g_bound).abs() <= bound_tolerance,
            "{}: {query}: bound {bound} drifted from golden {g_bound}",
            scenario.name
        );
        // The soundness contract of `EST … mode=bound`: zero violations
        // allowed, on every workload query.
        assert!(
            *bound + 1e-9 >= *actual as f64,
            "{}: {query}: bound {bound} < true cardinality {actual}",
            scenario.name
        );
        assert!(
            *bound + 1e-9 >= *est,
            "{}: {query}: bound {bound} < point estimate {est}",
            scenario.name
        );
    }
    assert_eq!(
        measured.qerr_point, golden.qerr_point,
        "{}: point-mode q-error percentiles drifted",
        scenario.name
    );
    assert_eq!(
        measured.qerr_bound, golden.qerr_bound,
        "{}: bound-mode q-error percentiles drifted",
        scenario.name
    );
    assert!(
        measured.nrmse.is_finite(),
        "{}: NRMSE must be finite",
        scenario.name
    );
    assert!(
        measured.nrmse <= golden.nrmse * 1.05 + 1e-9,
        "{}: aggregate NRMSE regressed: {} vs golden {} — estimation quality degraded",
        scenario.name,
        measured.nrmse,
        golden.nrmse
    );
}

#[test]
fn xmark_accuracy_matches_golden() {
    check(&SCENARIOS[0]);
}

#[test]
fn dblp_accuracy_matches_golden() {
    check(&SCENARIOS[1]);
}

#[test]
fn treebank_accuracy_matches_golden() {
    check(&SCENARIOS[2]);
}

#[test]
fn swissprot_accuracy_matches_golden() {
    check(&SCENARIOS[3]);
}

#[test]
fn tpch_accuracy_matches_golden() {
    check(&SCENARIOS[4]);
}

#[test]
fn xbench_accuracy_matches_golden() {
    check(&SCENARIOS[5]);
}
