//! Cross-crate integration tests: dataset generation → synopsis
//! construction → estimation → error measurement, exercising the same
//! pipeline as the experiment harness but at test-friendly scales.

use xseed::prelude::*;
use xseed::xseed_bench::{ErrorMetrics, Observation};

fn observations<F: FnMut(&PathExpr) -> f64>(
    workload: &Workload,
    evaluator: &Evaluator<'_>,
    mut estimate: F,
) -> Vec<Observation> {
    workload
        .all()
        .map(|q| Observation {
            estimated: estimate(q),
            actual: evaluator.count(q) as f64,
        })
        .collect()
}

#[test]
fn xmark_pipeline_produces_reasonable_errors() {
    let doc = Dataset::XMark10.generate_scaled(0.08);
    let workload = WorkloadGenerator::new(&doc, 3).generate(&WorkloadSpec {
        branching: 40,
        complex: 40,
        max_simple: 200,
        predicates_per_step: 1,
    });
    let storage = NokStorage::from_document(&doc);
    let evaluator = Evaluator::new(&storage);

    let (synopsis, _) =
        XseedSynopsis::build_with_het(&doc, XseedConfig::default().with_memory_budget(50 * 1024));
    let estimator = synopsis.estimator();
    let metrics = ErrorMetrics::compute(&observations(&workload, &evaluator, |q| {
        estimator.estimate(q)
    }));
    // Simple paths are exact via the HET, so the normalized error over the
    // whole workload must stay moderate.
    assert!(metrics.count > 100);
    assert!(
        metrics.nrmse < 1.0,
        "NRMSE {} unexpectedly high for XMark with HET",
        metrics.nrmse
    );
    assert!(
        metrics.opd > 0.7,
        "order preservation {} too low",
        metrics.opd
    );
}

#[test]
fn synopsis_is_much_smaller_than_document_and_storage() {
    let doc = Dataset::Dblp.generate_scaled(0.05);
    let storage = NokStorage::from_document(&doc);
    let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
    assert!(synopsis.kernel_size_bytes() * 50 < doc.source_bytes());
    assert!(synopsis.kernel_size_bytes() * 10 < storage.heap_bytes());
}

#[test]
fn kernel_estimates_simple_paths_exactly_when_paths_are_unambiguous() {
    // On TPC-H every rooted label path is structurally homogeneous, so the
    // kernel alone answers all simple paths exactly.
    let doc = Dataset::Tpch.generate_scaled(0.05);
    let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
    let path_tree = PathTree::from_document(&doc);
    for (expr, actual) in path_tree.all_simple_paths(doc.names()) {
        let estimate = synopsis.estimate(&expr);
        assert!(
            (estimate - actual as f64).abs() < 1e-6,
            "{expr}: estimated {estimate}, actual {actual}"
        );
    }
}

#[test]
fn incremental_update_tracks_document_changes() {
    let doc = Dataset::XBench.generate_scaled(0.05);
    let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
    let mut kernel = synopsis.kernel().clone();

    // Insert a new article subtree under the catalog root and verify the
    // estimate for /catalog/article grows accordingly.
    let article = Document::parse_str(
        "<article><prolog><title/><author><name/></author><dateline/></prolog><body><section><heading/><p/></section></body></article>",
    )
    .unwrap();
    let before = XseedSynopsis::from_kernel(kernel.clone(), XseedConfig::default())
        .estimate(&parse_query("/catalog/article").unwrap());
    kernel.add_subtree(&["catalog"], &article).unwrap();
    let after = XseedSynopsis::from_kernel(kernel.clone(), XseedConfig::default())
        .estimate(&parse_query("/catalog/article").unwrap());
    assert!(
        (after - before - 1.0).abs() < 1e-6,
        "before {before}, after {after}"
    );

    // Removing it restores the original estimate.
    kernel.remove_subtree(&["catalog"], &article).unwrap();
    let restored = XseedSynopsis::from_kernel(kernel, XseedConfig::default())
        .estimate(&parse_query("/catalog/article").unwrap());
    assert!((restored - before).abs() < 1e-6);
}

#[test]
fn serialized_synopsis_can_be_shipped_to_an_optimizer() {
    // Build on one "machine", serialize, deserialize elsewhere, estimates
    // agree — the deployment story for a DBMS optimizer.
    let doc = Dataset::SwissProt.generate_scaled(0.05);
    let original = XseedSynopsis::build(&doc, XseedConfig::default());
    let bytes = original.kernel().serialize();
    let restored = XseedSynopsis::from_kernel(
        xseed::xseed_core::Kernel::deserialize(&bytes).unwrap(),
        XseedConfig::default(),
    );
    let workload = WorkloadGenerator::new(&doc, 5).generate(&WorkloadSpec {
        branching: 30,
        complex: 30,
        max_simple: 100,
        predicates_per_step: 1,
    });
    for q in workload.all() {
        assert!(
            (original.estimate(q) - restored.estimate(q)).abs() < 1e-9,
            "{q}"
        );
    }
}

#[test]
fn treesketch_and_xseed_agree_on_flat_data_but_not_on_recursive_data() {
    // Flat data: both synopses are accurate.
    let flat = Dataset::Tpch.generate_scaled(0.03);
    let storage = NokStorage::from_document(&flat);
    let evaluator = Evaluator::new(&storage);
    let xseed = XseedSynopsis::build(&flat, XseedConfig::default());
    let sketch = TreeSketch::build(&flat, None);
    let q = parse_query("/tpch/orders/order/lineitem").unwrap();
    let actual = evaluator.count(&q) as f64;
    assert!((xseed.estimate(&q) - actual).abs() / actual < 0.05);
    assert!((sketch.estimate(&q) - actual).abs() / actual < 0.05);

    // Recursive data: XSEED stays closer on repeated descendant steps.
    let recursive = Dataset::TreebankSmall.generate_scaled(0.3);
    let storage = NokStorage::from_document(&recursive);
    let evaluator = Evaluator::new(&storage);
    let xseed = XseedSynopsis::build(&recursive, XseedConfig::recursive_document());
    let sketch = TreeSketch::build(&recursive, Some(25 * 1024));
    let q = parse_query("//NP//NP//NP").unwrap();
    let actual = evaluator.count(&q) as f64;
    let xseed_err = (xseed.estimate(&q) - actual).abs();
    let sketch_err = (sketch.estimate(&q) - actual).abs();
    assert!(
        xseed_err <= sketch_err,
        "XSEED error {xseed_err} vs TreeSketch error {sketch_err} (actual {actual})"
    );
}
