//! Recursive documents: where XSEED's recursion-level labels pay off.
//!
//! Builds synopses for a Treebank-like (deeply recursive) document and
//! compares XSEED and TreeSketch on recursive descendant queries such as
//! `//NP//NP` — the class of queries the paper identifies as the hardest
//! to estimate.
//!
//! Run with: `cargo run --release --example recursive_treebank`

use xseed::prelude::*;

fn main() {
    let doc = Dataset::TreebankSmall.generate_scaled(0.6);
    let stats = DocumentStats::compute(&doc);
    println!(
        "Treebank-like document: {} elements, avg/max recursion level {:.2}/{}",
        stats.element_count, stats.avg_recursion_level, stats.max_recursion_level
    );

    // The paper raises CARD_THRESHOLD (to 20 for the 121k-element
    // Treebank.05) so the expanded path tree stays small; the scaled
    // preset picks the equivalent threshold for this document's size.
    let config = XseedConfig::recursive_for_size(doc.element_count()).with_memory_budget(25 * 1024);
    let (synopsis, _) = XseedSynopsis::build_with_het(&doc, config);
    let sketch = TreeSketch::build(&doc, Some(25 * 1024));
    println!(
        "XSEED synopsis: {} bytes (kernel {} bytes); TreeSketch: {} bytes",
        synopsis.size_bytes(),
        synopsis.kernel_size_bytes(),
        sketch.size_bytes()
    );
    let ept_len = synopsis.estimator().ept_len();
    let report = synopsis.estimate_with_stats(&parse_query("//S").unwrap());
    println!(
        "Expanded path tree: {} nodes for a {}-element document ({:.2}%); \
         //S visits {} of them\n",
        ept_len,
        doc.element_count(),
        100.0 * ept_len as f64 / doc.element_count() as f64,
        report.ept_nodes
    );

    let storage = NokStorage::from_document(&doc);
    let evaluator = Evaluator::new(&storage);
    let queries = [
        "//NP",
        "//NP//NP",
        "//S//VP//NP",
        "//VP//VP",
        "//S//S//S",
        "//VP[PP]//NN",
    ];
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "query", "actual", "XSEED", "TreeSketch"
    );
    for text in queries {
        let query = parse_query(text).unwrap();
        let actual = evaluator.count(&query);
        let xseed_est = synopsis.estimate(&query);
        let sketch_est = sketch.estimate(&query);
        println!("{text:<16} {actual:>10} {xseed_est:>12.1} {sketch_est:>12.1}");
    }
    println!("\nXSEED tracks recursion levels on its edges, so repeated //-steps");
    println!("stay close to the truth; TreeSketch expands through its summary");
    println!("graph without recursion information and drifts.");
}
