//! Memory-budget adaptivity: the same synopsis reconfigured from a few
//! hundred bytes (bare kernel) up to an unlimited hyper-edge table.
//!
//! Reproduces the spirit of Table 3's budget axis: the kernel is the
//! irreducible core, and every extra kilobyte of HET buys accuracy.
//!
//! Run with: `cargo run --release --example memory_budget`

use xseed::prelude::*;
use xseed_bench::{ErrorMetrics, Observation};

fn main() {
    let doc = Dataset::Dblp.generate_scaled(0.2);
    println!("DBLP-like document: {} elements", doc.element_count());

    let workload = WorkloadGenerator::new(&doc, 7).generate(&WorkloadSpec {
        branching: 300,
        complex: 300,
        max_simple: 1_000,
        predicates_per_step: 1,
    });
    let storage = NokStorage::from_document(&doc);
    let evaluator = Evaluator::new(&storage);
    let actuals: Vec<(PathExpr, f64)> = workload
        .all()
        .map(|q| (q.clone(), evaluator.count(q) as f64))
        .collect();

    // Build once with an unlimited budget, then tighten it step by step:
    // the HET keeps its entries "on disk" and only changes residency.
    // A permissive BSEL_THRESHOLD makes the builder enumerate branching
    // hyper-edges for most path-tree nodes, so there is something for the
    // budget to trade off.
    let config = XseedConfig::default().with_bsel_threshold(0.9);
    let (mut synopsis, _) = XseedSynopsis::build_with_het(&doc, config);
    let kernel_bytes = synopsis.kernel_size_bytes();
    println!("kernel size: {kernel_bytes} bytes\n");
    println!(
        "{:>12} {:>14} {:>10} {:>10}",
        "budget", "synopsis bytes", "RMSE", "NRMSE"
    );

    let budgets: [Option<usize>; 5] = [
        Some(kernel_bytes), // kernel only: no room for any HET entry
        Some(4 * 1024),
        Some(25 * 1024),
        Some(50 * 1024),
        None, // unlimited
    ];
    for budget in budgets {
        synopsis.set_memory_budget(budget);
        let estimator = synopsis.estimator();
        let observations: Vec<Observation> = actuals
            .iter()
            .map(|(q, actual)| Observation {
                estimated: estimator.estimate(q),
                actual: *actual,
            })
            .collect();
        let metrics = ErrorMetrics::compute(&observations);
        let label = budget
            .map(|b| format!("{}KB", b / 1024))
            .unwrap_or_else(|| "unlimited".to_string());
        println!(
            "{label:>12} {:>14} {:>10.2} {:>9.2}%",
            synopsis.size_bytes(),
            metrics.rmse,
            metrics.nrmse_percent()
        );
    }
    println!("\nThe error decreases monotonically as the budget grows, and the");
    println!("synopsis never exceeds the budget it was given.");
}
