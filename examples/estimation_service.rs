//! The estimation service end to end: a catalog of named synopses, a
//! worker pool estimating from shared snapshots, batches over one
//! snapshot pass, admission control shedding excess load, and a live
//! update that republishes a new epoch without disturbing in-flight
//! readers.
//!
//! Run with `cargo run --release --example estimation_service`.

use std::sync::Arc;
use xseed::prelude::*;

fn main() {
    // A catalog holds many named synopses; load two builtin datasets.
    let catalog = Arc::new(Catalog::new());
    let xmark = Dataset::XMark10.generate_scaled(0.1);
    catalog.load_document("xmark", &xmark, XseedConfig::default());
    let treebank = Dataset::TreebankSmall.generate_scaled(0.1);
    catalog.load_document(
        "treebank",
        &treebank,
        XseedConfig::recursive_for_size(treebank.element_count()),
    );

    // A service with 4 workers, each with its own request queue (idle
    // workers steal from busy siblings).
    let service = Service::new(catalog.clone(), ServiceConfig::with_workers(4));

    // Single estimates: text in, cardinality out. The parsed plan is
    // cached, so the reparse below is a cache hit.
    let est = service.estimate("xmark", "//item[payment]").unwrap();
    println!("xmark //item[payment]          ~ {est:.1}");
    let est = service.estimate("xmark", "//item[payment]").unwrap();
    println!("xmark //item[payment] (cached) ~ {est:.1}");

    // Batches run as one snapshot pass over a shared frontier memo —
    // the traveler's expansion is recorded once per epoch and replayed
    // per query.
    let workload = WorkloadGenerator::new(&xmark, 42).generate(&WorkloadSpec::small());
    let texts: Vec<String> = workload.all().map(|q| q.to_string()).collect();
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
    let estimates = service.estimate_batch("xmark", &refs).unwrap();
    println!(
        "batched {} xmark queries, total estimated cardinality {:.0}",
        estimates.len(),
        estimates.iter().sum::<f64>()
    );

    // Updates republish a fresh epoch-stamped snapshot; a snapshot taken
    // before the update keeps answering from its own consistent state.
    let old = catalog.snapshot("xmark").unwrap();
    let (_, fresh) = catalog
        .update("xmark", |synopsis| {
            let root = synopsis
                .kernel()
                .name(synopsis.kernel().root().unwrap())
                .to_string();
            let subtree = Document::parse_str("<audit_log/>").unwrap();
            synopsis
                .kernel_mut()
                .add_subtree(&[root.as_str()], &subtree)
        })
        .unwrap();
    let q = parse_query("/site/audit_log").unwrap();
    println!(
        "epoch {} sees /site/audit_log ~ {:.1}; epoch {} still sees {:.1}",
        fresh.epoch(),
        fresh.estimate(&q),
        old.epoch(),
        old.estimate(&q)
    );

    // Admission control: a batch larger than the whole queue budget is
    // shed with a structured error instead of queueing without bound —
    // the daemon turns this into the protocol's OVERLOADED reply.
    let tiny = Service::new(
        catalog.clone(),
        ServiceConfig::with_workers(1).with_queue_capacity(4),
    );
    match tiny.estimate_batch("xmark", &refs) {
        Err(ServiceError::Overloaded { queued, capacity }) => println!(
            "a {}-query batch against a {capacity}-query budget sheds \
             (queued={queued}) — retry smaller or later",
            refs.len()
        ),
        other => println!("unexpected admission result: {other:?}"),
    }

    let stats = service.stats();
    println!(
        "service stats: {} workers, {} estimates, {} batches, {} steals, \
         {} accepted / {} shed (peak queue {} of {}), plan cache {}/{} hits",
        stats.workers,
        stats.total_executed(),
        stats.batches,
        stats.steals,
        stats.accepted,
        stats.shed,
        stats.peak_queued,
        stats.queue_capacity * stats.workers,
        stats.plan_cache.hits,
        stats.plan_cache.hits + stats.plan_cache.misses,
    );
}
