//! An XMark auction-site scenario: the workload a cost-based optimizer
//! would throw at the synopsis.
//!
//! Generates an XMark-like document, builds XSEED with a pre-computed
//! hyper-edge table under a memory budget, and reports estimation error
//! (and the error of the TreeSketch baseline) on a mixed SP/BP/CP
//! workload — a miniature of the paper's Table 3 experiment.
//!
//! Run with: `cargo run --release --example auction_optimizer`

use xseed::prelude::*;
use xseed_bench::{ErrorMetrics, Observation};

fn main() {
    let doc = Dataset::XMark10.generate_scaled(0.3);
    println!("XMark document: {} elements", doc.element_count());

    // Workload: all simple paths plus random branching and complex queries.
    let workload = WorkloadGenerator::new(&doc, 42).generate(&WorkloadSpec {
        branching: 200,
        complex: 200,
        max_simple: 1_000,
        predicates_per_step: 1,
    });
    println!(
        "Workload: {} SP, {} BP, {} CP queries",
        workload.simple.len(),
        workload.branching.len(),
        workload.complex.len()
    );

    // Ground truth.
    let storage = NokStorage::from_document(&doc);
    let evaluator = Evaluator::new(&storage);

    // XSEED with a 25 KB budget (kernel + hyper-edge table).
    let config = XseedConfig::default().with_memory_budget(25 * 1024);
    let (synopsis, stats) = XseedSynopsis::build_with_het(&doc, config);
    println!(
        "XSEED: kernel {} bytes, HET {} resident bytes ({} simple + {} correlated entries built)",
        synopsis.kernel_size_bytes(),
        synopsis.het_resident_bytes(),
        stats.simple_entries,
        stats.correlated_entries,
    );

    // TreeSketch baseline at the same budget.
    let sketch = TreeSketch::build(&doc, Some(25 * 1024));
    println!(
        "TreeSketch: {} bytes, {} classes after {} merges",
        sketch.size_bytes(),
        sketch.class_count(),
        sketch.merges()
    );

    let estimator = synopsis.estimator();
    let mut xseed_obs = Vec::new();
    let mut sketch_obs = Vec::new();
    for query in workload.all() {
        let actual = evaluator.count(query) as f64;
        xseed_obs.push(Observation {
            estimated: estimator.estimate(query),
            actual,
        });
        sketch_obs.push(Observation {
            estimated: sketch.estimate(query),
            actual,
        });
    }
    let xseed_metrics = ErrorMetrics::compute(&xseed_obs);
    let sketch_metrics = ErrorMetrics::compute(&sketch_obs);
    println!(
        "\n{:<12} {:>10} {:>10} {:>8}",
        "synopsis", "RMSE", "NRMSE", "OPD"
    );
    for (name, m) in [("XSEED", xseed_metrics), ("TreeSketch", sketch_metrics)] {
        println!(
            "{name:<12} {:>10.2} {:>9.2}% {:>8.3}",
            m.rmse,
            m.nrmse_percent(),
            m.opd
        );
    }
}
