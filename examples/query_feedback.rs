//! Self-tuning via query feedback (Figure 1's feedback arrow).
//!
//! Instead of pre-computing the hyper-edge table, the optimizer can feed
//! the actual cardinalities observed after execution back into the
//! synopsis. This example runs a feedback loop on a correlated document
//! and shows the estimation error shrinking query by query — first
//! against a bare synopsis, then through the serving layer, where a
//! maintenance policy turns accumulated feedback error into an automatic
//! HET rebuild (no operator, no re-supplied document).
//!
//! Run with: `cargo run --release --example query_feedback`

use std::sync::Arc;
use xseed::prelude::*;
use xseed_service::{Catalog, MaintenancePolicy, RetentionPolicy, Service, ServiceConfig};

fn main() {
    // The Figure 4 style document: strong parent/sibling correlations that
    // the bare kernel cannot capture.
    let doc = xmlkit::samples::figure4_document();
    let storage = NokStorage::from_document(&doc);
    let evaluator = Evaluator::new(&storage);
    let mut synopsis = XseedSynopsis::build(&doc, XseedConfig::default());

    let queries = [
        "/a/b/d/e",
        "/a/c/d/e",
        "/a/b/d/f",
        "/a/c/d/f",
        "/a/b/d[f]/e",
        "/a/c/d[f]/e",
    ];

    println!("Round 1: kernel-only estimates (no feedback yet)");
    let mut first_round_error = 0.0;
    for text in queries {
        let query = parse_query(text).unwrap();
        let estimate = synopsis.estimate(&query);
        let actual = evaluator.count(&query);
        first_round_error += (estimate - actual as f64).abs();
        println!("  {text:<14} estimate {estimate:>8.2}   actual {actual:>4}");

        // The optimizer executed the query; feed the truth back. For the
        // branching queries we also pass the unpredicated base cardinality
        // so the correlated backward selectivity can be derived.
        let base = match text {
            "/a/b/d[f]/e" => Some(evaluator.count(&parse_query("/a/b/d/e").unwrap())),
            "/a/c/d[f]/e" => Some(evaluator.count(&parse_query("/a/c/d/e").unwrap())),
            _ => None,
        };
        synopsis.record_feedback(&query, actual, base);
    }

    println!("\nRound 2: the same queries after feedback");
    let mut second_round_error = 0.0;
    for text in queries {
        let query = parse_query(text).unwrap();
        let estimate = synopsis.estimate(&query);
        let actual = evaluator.count(&query);
        second_round_error += (estimate - actual as f64).abs();
        println!("  {text:<14} estimate {estimate:>8.2}   actual {actual:>4}");
    }

    println!(
        "\nTotal absolute error: {first_round_error:.2} before feedback, {second_round_error:.2} after."
    );
    println!(
        "HET now holds {} entries ({} bytes resident).",
        synopsis.het().map(|h| h.len()).unwrap_or(0),
        synopsis.het_resident_bytes()
    );

    // --- The same loop, self-maintaining through the serving layer. ---
    //
    // The catalog retains the document and an error-mass policy decides
    // when accumulated drift warrants rebuilding the whole HET from
    // exact statistics: one piece of feedback repairs one entry, but the
    // triggered rebuild repairs every simple path at once.
    println!("\nSelf-maintaining service: retain + error-mass policy");
    let catalog = Arc::new(Catalog::new());
    catalog.load_document_with(
        "fig4",
        &doc,
        XseedConfig::default(),
        RetentionPolicy::Retain,
        MaintenancePolicy::ErrorMassBound(10.0),
    );
    let service = Service::new(catalog, ServiceConfig::with_workers(2));

    let fed_back = "/a/b/d/e";
    let actual = evaluator.count(&parse_query(fed_back).unwrap());
    let fb = service.feedback("fig4", fed_back, actual, None).unwrap();
    println!(
        "  FEEDBACK {fed_back}: outcome={}, estimated {:.2}, actual {actual}, error {:.2}",
        fb.report.outcome, fb.report.estimated, fb.report.error
    );
    if let Some(ticket) = fb.rebuild {
        let (stats, epoch) = ticket.wait().expect("maintenance rebuild");
        println!(
            "  error mass crossed the bound: automatic rebuild published epoch {epoch} \
             ({} simple + {} correlated entries)",
            stats.simple_entries, stats.correlated_entries
        );
    }
    // A path the feedback never mentioned is now exact too.
    let untouched = "/a/c/d/f";
    let est = service.estimate("fig4", untouched).unwrap();
    let truth = evaluator.count(&parse_query(untouched).unwrap());
    println!("  {untouched} (never fed back): estimate {est:.2}, actual {truth}");
    let stats = service.stats();
    println!(
        "  counters: feedback_applied={}, rebuilds_triggered={}",
        stats.feedback_applied, stats.rebuilds_triggered
    );
}
