//! Self-tuning via query feedback (Figure 1's feedback arrow).
//!
//! Instead of pre-computing the hyper-edge table, the optimizer can feed
//! the actual cardinalities observed after execution back into the
//! synopsis. This example runs a feedback loop on a correlated document
//! and shows the estimation error shrinking query by query.
//!
//! Run with: `cargo run --release --example query_feedback`

use xseed::prelude::*;

fn main() {
    // The Figure 4 style document: strong parent/sibling correlations that
    // the bare kernel cannot capture.
    let doc = xmlkit::samples::figure4_document();
    let storage = NokStorage::from_document(&doc);
    let evaluator = Evaluator::new(&storage);
    let mut synopsis = XseedSynopsis::build(&doc, XseedConfig::default());

    let queries = [
        "/a/b/d/e",
        "/a/c/d/e",
        "/a/b/d/f",
        "/a/c/d/f",
        "/a/b/d[f]/e",
        "/a/c/d[f]/e",
    ];

    println!("Round 1: kernel-only estimates (no feedback yet)");
    let mut first_round_error = 0.0;
    for text in queries {
        let query = parse_query(text).unwrap();
        let estimate = synopsis.estimate(&query);
        let actual = evaluator.count(&query);
        first_round_error += (estimate - actual as f64).abs();
        println!("  {text:<14} estimate {estimate:>8.2}   actual {actual:>4}");

        // The optimizer executed the query; feed the truth back. For the
        // branching queries we also pass the unpredicated base cardinality
        // so the correlated backward selectivity can be derived.
        let base = match text {
            "/a/b/d[f]/e" => Some(evaluator.count(&parse_query("/a/b/d/e").unwrap())),
            "/a/c/d[f]/e" => Some(evaluator.count(&parse_query("/a/c/d/e").unwrap())),
            _ => None,
        };
        synopsis.record_feedback(&query, actual, base);
    }

    println!("\nRound 2: the same queries after feedback");
    let mut second_round_error = 0.0;
    for text in queries {
        let query = parse_query(text).unwrap();
        let estimate = synopsis.estimate(&query);
        let actual = evaluator.count(&query);
        second_round_error += (estimate - actual as f64).abs();
        println!("  {text:<14} estimate {estimate:>8.2}   actual {actual:>4}");
    }

    println!(
        "\nTotal absolute error: {first_round_error:.2} before feedback, {second_round_error:.2} after."
    );
    println!(
        "HET now holds {} entries ({} bytes resident).",
        synopsis.het().map(|h| h.len()).unwrap_or(0),
        synopsis.het_resident_bytes()
    );
}
