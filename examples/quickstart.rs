//! Quickstart: build an XSEED synopsis for a small document and compare
//! its estimates with exact answers.
//!
//! Run with: `cargo run --example quickstart`

use xseed::prelude::*;

fn main() {
    // The article document of the paper's Example 1 / Figure 2(a).
    let doc = xmlkit::samples::figure2_document();
    println!(
        "Document: {} elements, {} distinct names",
        doc.element_count(),
        doc.names().len()
    );

    // Build the kernel-only synopsis — one SAX pass, a few hundred bytes.
    let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
    println!(
        "XSEED kernel: {} bytes\n{}",
        synopsis.kernel_size_bytes(),
        synopsis.kernel()
    );

    // Exact evaluation for comparison.
    let storage = NokStorage::from_document(&doc);
    let evaluator = Evaluator::new(&storage);

    let queries = [
        "/a/c/s/s/t", // Example 3 of the paper
        "/a/c/s",
        "//s//s//p", // Observation 3
        "/a/c/s[t]/p",
        "//p",
    ];
    println!("{:<16} {:>10} {:>10}", "query", "estimate", "actual");
    for text in queries {
        let query = parse_query(text).expect("query parses");
        let estimate = synopsis.estimate(&query);
        let actual = evaluator.count(&query);
        println!("{text:<16} {estimate:>10.2} {actual:>10}");
    }
}
