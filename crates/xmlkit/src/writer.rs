//! Serialization of [`Document`]s back to XML text.
//!
//! The synthetic dataset generators build [`Document`]s programmatically;
//! this module turns them into XML text so the full pipeline (SAX parse →
//! kernel construction) is exercised exactly as it would be on real data
//! files. A compact mode (no indentation) and a pretty mode are provided.

use crate::tree::{Document, NodeId};

/// Formatting options for [`write_document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteOptions {
    /// Emit a leading `<?xml version="1.0"?>` declaration.
    pub declaration: bool,
    /// Indent nested elements by two spaces per level and put each element
    /// on its own line. When `false`, the output is a single line.
    pub pretty: bool,
}

/// Serializes `doc` to XML text with the given options.
///
/// Elements with no children and no text are written as self-closing tags.
/// Recorded text lengths are materialized as filler characters (`x`), so
/// the byte size of the output approximates the original document size;
/// the structural shape — which is all the synopsis cares about — is exact.
pub fn write_document(doc: &Document, options: WriteOptions) -> String {
    let mut out = String::with_capacity(doc.element_count() * 8);
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if options.pretty {
            out.push('\n');
        }
    }
    write_node(doc, doc.root(), options, 0, &mut out);
    if options.pretty {
        out.push('\n');
    }
    out
}

/// Serializes `doc` compactly (no declaration, no indentation).
pub fn to_string(doc: &Document) -> String {
    write_document(doc, WriteOptions::default())
}

fn write_node(doc: &Document, id: NodeId, options: WriteOptions, level: usize, out: &mut String) {
    let name = doc.name(id);
    let node = doc.node(id);
    let has_children = node.first_child.is_some();
    let has_text = node.text_bytes > 0;

    if options.pretty {
        if level > 0 {
            out.push('\n');
        }
        for _ in 0..level {
            out.push_str("  ");
        }
    }
    out.push('<');
    out.push_str(name);
    if !has_children && !has_text {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if has_text {
        for _ in 0..node.text_bytes {
            out.push('x');
        }
    }
    for child in doc.children(id) {
        write_node(doc, child, options, level + 1, out);
    }
    if options.pretty && has_children {
        out.push('\n');
        for _ in 0..level {
            out.push_str("  ");
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Document, DocumentBuilder};

    #[test]
    fn roundtrip_compact() {
        let original = "<a><b/><c><d/></c></a>";
        let doc = Document::parse_str(original).unwrap();
        let text = to_string(&doc);
        assert_eq!(text, original);
        let reparsed = Document::parse_str(&text).unwrap();
        assert!(doc.structurally_equal(&reparsed));
    }

    #[test]
    fn text_is_materialized_as_filler() {
        let doc = Document::parse_str("<a>hello</a>").unwrap();
        let text = to_string(&doc);
        assert_eq!(text, "<a>xxxxx</a>");
    }

    #[test]
    fn declaration_and_pretty() {
        let doc = Document::parse_str("<a><b/></a>").unwrap();
        let text = write_document(
            &doc,
            WriteOptions {
                declaration: true,
                pretty: true,
            },
        );
        assert!(text.starts_with("<?xml"));
        assert!(text.contains("\n  <b/>"));
        let reparsed = Document::parse_str(&text).unwrap();
        assert!(doc.structurally_equal(&reparsed));
    }

    #[test]
    fn roundtrip_builder_document() {
        let mut b = DocumentBuilder::new();
        b.start_element("root");
        for _ in 0..3 {
            b.start_element("item");
            b.start_element("name");
            b.text_len(4);
            b.end_element();
            b.end_element();
        }
        b.end_element();
        let doc = b.finish().unwrap();
        let text = to_string(&doc);
        let reparsed = Document::parse_str(&text).unwrap();
        assert!(doc.structurally_equal(&reparsed));
        assert_eq!(reparsed.element_count(), 7);
    }

    #[test]
    fn pretty_roundtrip_preserves_structure() {
        let doc = Document::parse_str("<r><a><b/><c/></a><d/></r>").unwrap();
        let pretty = write_document(
            &doc,
            WriteOptions {
                declaration: false,
                pretty: true,
            },
        );
        let reparsed = Document::parse_str(&pretty).unwrap();
        assert!(doc.structurally_equal(&reparsed));
    }
}
