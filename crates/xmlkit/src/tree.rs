//! Arena-backed XML document tree.
//!
//! The XSEED pipeline is element-structure oriented: cardinality estimation
//! for structural path queries only depends on element names and the
//! parent–child relation. The [`Document`] type therefore stores the
//! element tree in a compact arena (`Vec` of nodes addressed by
//! [`NodeId`]), with first-child / next-sibling / parent links, the interned
//! label of every element, and (optionally) the concatenated text content.
//!
//! The tree supports:
//! * construction from XML text ([`Document::parse_str`]) or
//!   programmatically ([`DocumentBuilder`]),
//! * preorder traversal and child iteration,
//! * subtree extraction and structural equality, used by the incremental
//!   synopsis-update machinery,
//! * basic size statistics.

use crate::error::{Error, Result};
use crate::names::{LabelId, NameTable};
use crate::sax::{SaxEvent, SaxParser};
use std::fmt;

/// Index of a node in a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One element node in the arena.
#[derive(Debug, Clone)]
pub struct Node {
    /// Interned element name.
    pub label: LabelId,
    /// Parent element, `None` for the root.
    pub parent: Option<NodeId>,
    /// First child in document order.
    pub first_child: Option<NodeId>,
    /// Last child in document order (makes appends O(1)).
    pub last_child: Option<NodeId>,
    /// Next sibling in document order.
    pub next_sibling: Option<NodeId>,
    /// Number of bytes of text directly contained in this element
    /// (not including descendants). Text content itself is not stored;
    /// only its size contributes to the document-size statistics.
    pub text_bytes: u32,
}

/// An in-memory XML element tree.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    names: NameTable,
    root: NodeId,
    /// Total size in bytes of the original serialized form, if known
    /// (set when parsing from text; estimated otherwise).
    source_bytes: usize,
}

impl Document {
    /// Parses an XML string into a document tree.
    pub fn parse_str(input: &str) -> Result<Self> {
        let mut builder = DocumentBuilder::new();
        let mut parser = SaxParser::new(input);
        loop {
            match parser.next_event()? {
                SaxEvent::StartElement { name, .. } => {
                    builder.start_element(&name);
                }
                SaxEvent::EndElement { .. } => {
                    builder.end_element();
                }
                SaxEvent::Text(t) => {
                    builder.text_len(t.len());
                }
                SaxEvent::Comment(_) | SaxEvent::ProcessingInstruction { .. } => {}
                SaxEvent::Eof => break,
            }
        }
        let mut doc = builder.finish()?;
        doc.source_bytes = input.len();
        Ok(doc)
    }

    /// Number of element nodes.
    pub fn element_count(&self) -> usize {
        self.nodes.len()
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The name table of this document.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Size in bytes of the serialized document (exact if parsed from
    /// text, otherwise an estimate based on tag and text sizes).
    pub fn source_bytes(&self) -> usize {
        self.source_bytes
    }

    /// Immutable access to a node. Panics on an invalid id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Checked access to a node.
    pub fn get(&self, id: NodeId) -> Result<&Node> {
        self.nodes
            .get(id.index())
            .ok_or(Error::InvalidNodeId { id: id.index() })
    }

    /// The interned label of `id`.
    #[inline]
    pub fn label(&self, id: NodeId) -> LabelId {
        self.node(id).label
    }

    /// The element name of `id`.
    pub fn name(&self, id: NodeId) -> &str {
        self.names.name_or_panic(self.node(id).label)
    }

    /// Iterates over the children of `id` in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.node(id).first_child,
        }
    }

    /// Number of children of `id`.
    pub fn child_count(&self, id: NodeId) -> usize {
        self.children(id).count()
    }

    /// Iterates over all nodes in preorder (document order), starting at
    /// the root.
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder {
            doc: self,
            stack: vec![self.root],
        }
    }

    /// Iterates over the subtree rooted at `id` in preorder.
    pub fn preorder_from(&self, id: NodeId) -> Preorder<'_> {
        Preorder {
            doc: self,
            stack: vec![id],
        }
    }

    /// Returns the rooted path of labels from the document root down to
    /// `id`, inclusive.
    pub fn rooted_path(&self, id: NodeId) -> Vec<LabelId> {
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            path.push(self.node(n).label);
            cur = self.node(n).parent;
        }
        path.reverse();
        path
    }

    /// Depth of `id` (root has depth 1).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = Some(id);
        while let Some(n) = cur {
            d += 1;
            cur = self.node(n).parent;
        }
        d
    }

    /// Maximum depth over all nodes.
    pub fn max_depth(&self) -> usize {
        self.preorder().map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// Extracts the subtree rooted at `id` as a new standalone document.
    /// Labels are re-interned into a fresh name table so the result is
    /// self-contained.
    pub fn subtree(&self, id: NodeId) -> Document {
        let mut builder = DocumentBuilder::new();
        self.copy_into(id, &mut builder);
        builder
            .finish()
            .expect("subtree of a valid document is a valid document")
    }

    fn copy_into(&self, id: NodeId, builder: &mut DocumentBuilder) {
        builder.start_element(self.name(id));
        builder.text_len(self.node(id).text_bytes as usize);
        let children: Vec<NodeId> = self.children(id).collect();
        for c in children {
            self.copy_into(c, builder);
        }
        builder.end_element();
    }

    /// Structural equality: same shape and same element names, ignoring
    /// text and the identity of label ids.
    pub fn structurally_equal(&self, other: &Document) -> bool {
        fn eq(a: &Document, an: NodeId, b: &Document, bn: NodeId) -> bool {
            if a.name(an) != b.name(bn) {
                return false;
            }
            let ac: Vec<NodeId> = a.children(an).collect();
            let bc: Vec<NodeId> = b.children(bn).collect();
            if ac.len() != bc.len() {
                return false;
            }
            ac.iter().zip(bc.iter()).all(|(&x, &y)| eq(a, x, b, y))
        }
        eq(self, self.root, other, other.root)
    }

    /// Approximate number of heap bytes used by the in-memory tree.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>() + self.names.heap_bytes()
    }

    /// Counts elements per label, indexed by [`LabelId`].
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.names.len()];
        for n in self.preorder() {
            hist[self.label(n).index()] += 1;
        }
        hist
    }
}

/// Iterator over the children of a node.
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Iterator for Children<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).next_sibling;
        Some(cur)
    }
}

/// Preorder (document order) iterator.
pub struct Preorder<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Preorder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.stack.pop()?;
        // Push children in reverse so the leftmost child is visited first.
        let children: Vec<NodeId> = self.doc.children(cur).collect();
        for c in children.into_iter().rev() {
            self.stack.push(c);
        }
        Some(cur)
    }
}

/// Incremental builder for [`Document`]s.
///
/// Call [`start_element`](DocumentBuilder::start_element) /
/// [`end_element`](DocumentBuilder::end_element) in document order (the
/// same shape as SAX events) and then [`finish`](DocumentBuilder::finish).
#[derive(Debug, Default)]
pub struct DocumentBuilder {
    nodes: Vec<Node>,
    names: NameTable,
    stack: Vec<NodeId>,
    root: Option<NodeId>,
    estimated_bytes: usize,
}

impl DocumentBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new element with the given name.
    pub fn start_element(&mut self, name: &str) -> NodeId {
        let label = self.names.intern(name);
        let id = NodeId(self.nodes.len() as u32);
        let parent = self.stack.last().copied();
        self.nodes.push(Node {
            label,
            parent,
            first_child: None,
            last_child: None,
            next_sibling: None,
            text_bytes: 0,
        });
        // Opening + closing tag bytes: <name></name>
        self.estimated_bytes += 2 * name.len() + 5;
        if let Some(p) = parent {
            let prev_last = self.nodes[p.index()].last_child;
            match prev_last {
                Some(prev) => self.nodes[prev.index()].next_sibling = Some(id),
                None => self.nodes[p.index()].first_child = Some(id),
            }
            self.nodes[p.index()].last_child = Some(id);
        } else if self.root.is_none() {
            self.root = Some(id);
        }
        self.stack.push(id);
        id
    }

    /// Records `len` bytes of text inside the currently open element.
    pub fn text_len(&mut self, len: usize) {
        if let Some(&cur) = self.stack.last() {
            self.nodes[cur.index()].text_bytes = self.nodes[cur.index()]
                .text_bytes
                .saturating_add(len as u32);
            self.estimated_bytes += len;
        }
    }

    /// Closes the most recently opened element.
    pub fn end_element(&mut self) {
        self.stack.pop();
    }

    /// Current nesting depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Number of elements created so far.
    pub fn element_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finishes the build. Fails if no element was created or elements are
    /// still open (which would indicate a builder bug at the call site).
    pub fn finish(self) -> Result<Document> {
        let root = self.root.ok_or(Error::EmptyDocument)?;
        if !self.stack.is_empty() {
            return Err(Error::UnexpectedEof {
                open_elements: self
                    .stack
                    .iter()
                    .map(|&id| {
                        self.names
                            .name_or_panic(self.nodes[id.index()].label)
                            .to_string()
                    })
                    .collect(),
            });
        }
        Ok(Document {
            nodes: self.nodes,
            names: self.names,
            root,
            source_bytes: self.estimated_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_figure2_doc() -> Document {
        // The XML tree of Figure 2(a): article with title, authors and two
        // chapters; sections nested up to recursion level 2.
        Document::parse_str(
            "<a>\
               <t/><u/>\
               <c><t/><s><t/><p/><s><p/></s></s><s><p/><p/></s></c>\
               <c><t/><p/><p/><s><t/><p/><s><t/><p/><s><p/><p/><p/></s></s></s><s><p/><p/><s/><s/></s><s><p/></s></c>\
             </a>",
        )
        .unwrap()
    }

    #[test]
    fn parse_simple() {
        let doc = Document::parse_str("<a><b/><b/><c/></a>").unwrap();
        assert_eq!(doc.element_count(), 4);
        assert_eq!(doc.name(doc.root()), "a");
        assert_eq!(doc.child_count(doc.root()), 3);
    }

    #[test]
    fn children_in_document_order() {
        let doc = Document::parse_str("<r><x/><y/><z/></r>").unwrap();
        let names: Vec<&str> = doc.children(doc.root()).map(|c| doc.name(c)).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }

    #[test]
    fn preorder_is_document_order() {
        let doc = Document::parse_str("<r><a><b/></a><c/></r>").unwrap();
        let names: Vec<&str> = doc.preorder().map(|n| doc.name(n)).collect();
        assert_eq!(names, vec!["r", "a", "b", "c"]);
    }

    #[test]
    fn rooted_path_and_depth() {
        let doc = Document::parse_str("<r><a><b/></a></r>").unwrap();
        let b = doc.preorder().last().unwrap();
        assert_eq!(doc.name(b), "b");
        assert_eq!(doc.depth(b), 3);
        let path: Vec<&str> = doc
            .rooted_path(b)
            .into_iter()
            .map(|l| doc.names().name(l).unwrap())
            .collect();
        assert_eq!(path, vec!["r", "a", "b"]);
        assert_eq!(doc.max_depth(), 3);
    }

    #[test]
    fn subtree_extraction() {
        let doc = Document::parse_str("<r><a><b/><c/></a><d/></r>").unwrap();
        let a = doc.children(doc.root()).next().unwrap();
        let sub = doc.subtree(a);
        assert_eq!(sub.element_count(), 3);
        assert_eq!(sub.name(sub.root()), "a");
        let expect = Document::parse_str("<a><b/><c/></a>").unwrap();
        assert!(sub.structurally_equal(&expect));
    }

    #[test]
    fn structural_equality_detects_differences() {
        let a = Document::parse_str("<r><a/><b/></r>").unwrap();
        let b = Document::parse_str("<r><a/><b/></r>").unwrap();
        let c = Document::parse_str("<r><b/><a/></r>").unwrap();
        let d = Document::parse_str("<r><a/></r>").unwrap();
        assert!(a.structurally_equal(&b));
        assert!(!a.structurally_equal(&c));
        assert!(!a.structurally_equal(&d));
    }

    #[test]
    fn label_histogram_counts() {
        let doc = Document::parse_str("<r><a/><a/><b/></r>").unwrap();
        let hist = doc.label_histogram();
        let r = doc.names().lookup("r").unwrap();
        let a = doc.names().lookup("a").unwrap();
        let b = doc.names().lookup("b").unwrap();
        assert_eq!(hist[r.index()], 1);
        assert_eq!(hist[a.index()], 2);
        assert_eq!(hist[b.index()], 1);
    }

    #[test]
    fn text_bytes_recorded() {
        let doc = Document::parse_str("<r>hello<a>world!</a></r>").unwrap();
        let root = doc.root();
        assert_eq!(doc.node(root).text_bytes, 5);
        let a = doc.children(root).next().unwrap();
        assert_eq!(doc.node(a).text_bytes, 6);
        assert_eq!(doc.source_bytes(), "<r>hello<a>world!</a></r>".len());
    }

    #[test]
    fn builder_unbalanced_fails() {
        let mut b = DocumentBuilder::new();
        b.start_element("a");
        b.start_element("b");
        b.end_element();
        assert!(b.finish().is_err());
    }

    #[test]
    fn builder_empty_fails() {
        assert!(DocumentBuilder::new().finish().is_err());
    }

    #[test]
    fn figure2_document_shape() {
        let doc = paper_figure2_doc();
        // 1 a + 2 c + counts from the figure: the document has 35 nodes.
        assert_eq!(doc.name(doc.root()), "a");
        let a_children: Vec<&str> = doc.children(doc.root()).map(|c| doc.name(c)).collect();
        assert_eq!(a_children, vec!["t", "u", "c", "c"]);
    }

    #[test]
    fn get_invalid_node() {
        let doc = Document::parse_str("<a/>").unwrap();
        assert!(doc.get(NodeId(42)).is_err());
        assert!(doc.get(doc.root()).is_ok());
    }

    #[test]
    fn heap_bytes_positive() {
        let doc = Document::parse_str("<a><b/></a>").unwrap();
        assert!(doc.heap_bytes() > 0);
    }
}
