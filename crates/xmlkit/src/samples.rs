//! Sample documents taken from the paper, used by tests, examples, and
//! documentation across the workspace.

use crate::tree::Document;

/// The XML tree of **Figure 2(a)** of the paper (the `article` document of
/// Example 1, with element names mapped to the compact alphabet
/// `a`/`t`/`u`/`c`/`p`/`s`).
///
/// The document is constructed so that its XSEED kernel is exactly the
/// kernel of Figure 2(b):
///
/// * `(a,t) = (1:1)`, `(a,u) = (1:1)`, `(a,c) = (1:2)`
/// * `(c,t) = (2:2)`, `(c,p) = (2:3)`, `(c,s) = (2:5)`
/// * `(s,t) = (2:2, 1:1)`
/// * `(s,p) = (5:9, 1:2, 2:3)`
/// * `(s,s) = (0:0, 2:2, 1:2)`
///
/// It contains 36 elements: 1 `a`, 6 `t`, 1 `u`, 2 `c`, 9 `s`, 17 `p`, with
/// a maximum recursion level of 2 (three nested `s` elements).
pub fn figure2_document() -> Document {
    Document::parse_str(FIGURE2_XML).expect("the Figure 2(a) sample is well-formed")
}

/// The serialized form of [`figure2_document`].
pub const FIGURE2_XML: &str = "<a>\
<t/>\
<u/>\
<c>\
<t/>\
<p/>\
<s><t/><p/><p/><s><t/><p/><p/></s></s>\
<s><p/><p/></s>\
</c>\
<c>\
<t/>\
<p/><p/>\
<s><t/><p/><p/><s><s><p/><p/></s><s><p/></s></s></s>\
<s><p/><p/></s>\
<s><p/></s>\
</c>\
</a>";

/// A document exhibiting the ancestor/sibling correlations of **Figure 4**
/// and Examples 4–5 of the paper.
///
/// Its XSEED kernel has the same shape as Figure 4 — `a` over `b` and `c`,
/// both leading to `d`, which has `e` and `f` children — and the
/// distribution of `e`/`f` children is strongly correlated with whether the
/// `d`'s parent is a `b` or a `c`, so the kernel's independence assumption
/// produces visible estimation errors that the Hyper-Edge Table repairs.
///
/// Concretely: `d` elements under `b` mostly have `e` children, while `d`
/// elements under `c` mostly have `f` children.
pub fn figure4_document() -> Document {
    let mut xml = String::from("<a>");
    // 3 b elements; 2 of them have d children (5 d total under b).
    // d-under-b: rich in e (2 e each), poor in f.
    xml.push_str("<b>");
    for _ in 0..3 {
        xml.push_str("<d><e/><e/><e/><e/></d>");
    }
    xml.push_str("</b>");
    xml.push_str("<b>");
    for _ in 0..2 {
        xml.push_str("<d><e/><e/><e/><e/><f/></d>");
    }
    xml.push_str("</b>");
    xml.push_str("<b/>");
    // 4 c elements; 3 of them have d children (9 d total under c).
    // d-under-c: rich in f, poor in e.
    xml.push_str("<c>");
    for _ in 0..3 {
        xml.push_str("<d><f/><f/><f/><f/><f/><f/></d>");
    }
    xml.push_str("</c>");
    xml.push_str("<c>");
    for _ in 0..3 {
        xml.push_str("<d><f/><f/><f/><f/><f/></d>");
    }
    xml.push_str("</c>");
    xml.push_str("<c>");
    for _ in 0..3 {
        xml.push_str("<d><f/><f/><f/><f/></d>");
    }
    xml.push_str("</c>");
    xml.push_str("<c/>");
    xml.push_str("</a>");
    Document::parse_str(&xml).expect("the Figure 4 sample is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DocumentStats;

    #[test]
    fn figure2_element_counts() {
        let doc = figure2_document();
        assert_eq!(doc.element_count(), 36);
        let hist = doc.label_histogram();
        let count = |name: &str| hist[doc.names().lookup(name).unwrap().index()];
        assert_eq!(count("a"), 1);
        assert_eq!(count("t"), 6);
        assert_eq!(count("u"), 1);
        assert_eq!(count("c"), 2);
        assert_eq!(count("s"), 9);
        assert_eq!(count("p"), 17);
    }

    #[test]
    fn figure2_recursion_level() {
        let doc = figure2_document();
        let stats = DocumentStats::compute(&doc);
        assert_eq!(stats.max_recursion_level, 2);
        assert!(stats.avg_recursion_level > 0.0);
    }

    #[test]
    fn figure4_shape() {
        let doc = figure4_document();
        let hist = doc.label_histogram();
        let count = |name: &str| hist[doc.names().lookup(name).unwrap().index()];
        assert_eq!(count("a"), 1);
        assert_eq!(count("b"), 3);
        assert_eq!(count("c"), 4);
        assert_eq!(count("d"), 14);
        assert_eq!(count("e"), 20);
        assert_eq!(count("f"), 47);
    }
}
