//! Element-name interning.
//!
//! The paper maps element names to a compact alphabet (Section 2,
//! Example 1): `f(article) = a`, `f(title) = t`, and so on. Internally
//! every component of this reproduction works with small integer
//! [`LabelId`]s instead of strings; the [`NameTable`] owns the bijection.

use std::collections::HashMap;
use std::fmt;

/// A compact integer identifier for an element name.
///
/// Label ids are dense: the first distinct name interned receives id 0,
/// the second id 1, and so on. This makes them directly usable as vector
/// indices in the synopsis structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub u32);

impl LabelId {
    /// Returns the raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A bidirectional mapping between element names and [`LabelId`]s.
///
/// Interning is idempotent: interning the same name twice returns the same
/// id. Lookup by name and by id are both O(1).
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    by_name: HashMap<String, LabelId>,
    by_id: Vec<String>,
}

impl NameTable {
    /// Creates an empty name table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its label id. Repeated calls with the same
    /// name return the same id.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = LabelId(self.by_id.len() as u32);
        self.by_id.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Returns the id of `name` if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name associated with `id`, if any.
    pub fn name(&self, id: LabelId) -> Option<&str> {
        self.by_id.get(id.index()).map(|s| s.as_str())
    }

    /// Returns the name associated with `id`, panicking with a clear
    /// message if the id is unknown. Intended for display code where the
    /// id is known to come from this table.
    pub fn name_or_panic(&self, id: LabelId) -> &str {
        self.name(id)
            .unwrap_or_else(|| panic!("label id {id} not present in name table"))
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Returns `true` if no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over `(LabelId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (LabelId(i as u32), s.as_str()))
    }

    /// Approximate number of heap bytes used by the table. Used when
    /// reporting synopsis sizes that embed a name table.
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self.by_id.iter().map(|s| s.len()).sum();
        // Each name is stored twice (map key + vector entry) plus map/vec
        // bookkeeping; a conservative constant per entry covers that.
        2 * strings + self.by_id.len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.intern("article");
        let b = t.intern("title");
        let a2 = t.intern("article");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ids_are_dense() {
        let mut t = NameTable::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(t.intern(name).index(), i);
        }
    }

    #[test]
    fn lookup_and_name_roundtrip() {
        let mut t = NameTable::new();
        let id = t.intern("chapter");
        assert_eq!(t.lookup("chapter"), Some(id));
        assert_eq!(t.lookup("missing"), None);
        assert_eq!(t.name(id), Some("chapter"));
        assert_eq!(t.name(LabelId(99)), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = NameTable::new();
        t.intern("x");
        t.intern("y");
        let collected: Vec<_> = t
            .iter()
            .map(|(id, n)| (id.index(), n.to_string()))
            .collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn empty_table() {
        let t = NameTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.name(LabelId(0)), None);
    }

    #[test]
    fn heap_bytes_grows() {
        let mut t = NameTable::new();
        let e = t.heap_bytes();
        t.intern("some-element-name");
        assert!(t.heap_bytes() > e);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn name_or_panic_panics() {
        let t = NameTable::new();
        t.name_or_panic(LabelId(3));
    }

    #[test]
    fn display_label() {
        assert_eq!(LabelId(7).to_string(), "#7");
    }
}
