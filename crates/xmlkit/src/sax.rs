//! A streaming (SAX-style) pull parser for XML documents.
//!
//! The parser covers the subset of XML needed by the XSEED pipeline and
//! the synthetic datasets:
//!
//! * elements with attributes (single- or double-quoted values),
//! * self-closing elements,
//! * character data and CDATA sections,
//! * comments, processing instructions, the XML declaration, and a
//!   DOCTYPE declaration (all skipped or reported but not interpreted),
//! * the five predefined entities (`&amp;`, `&lt;`, `&gt;`, `&apos;`,
//!   `&quot;`) and numeric character references in text and attribute
//!   values.
//!
//! It checks well-formedness: tags must nest properly and the document
//! must have exactly one root element.
//!
//! The design is a *pull* parser: callers repeatedly invoke
//! [`SaxParser::next_event`] and receive [`SaxEvent`]s until [`SaxEvent::Eof`].
//! This mirrors how Algorithm 1 of the paper consumes "opening tag" and
//! "closing tag" events to build the XSEED kernel in a single pass.

use crate::error::{Error, Result};

/// A single attribute on an element start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written in the document.
    pub name: String,
    /// Attribute value with entity references resolved.
    pub value: String,
}

/// Events produced by [`SaxParser`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaxEvent {
    /// An element start tag (`<name ...>`), or the opening half of a
    /// self-closing tag. For self-closing tags the parser emits
    /// `StartElement` immediately followed by `EndElement`.
    StartElement {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// An element end tag (`</name>`), or the closing half of a
    /// self-closing tag.
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data between tags, with entities resolved. Whitespace-only
    /// text is still reported; callers that do not care simply ignore it.
    Text(String),
    /// A comment (`<!-- ... -->`); the payload excludes the delimiters.
    Comment(String),
    /// A processing instruction (`<?target data?>`), excluding the XML
    /// declaration which is silently skipped.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data (possibly empty).
        data: String,
    },
    /// End of input. Returned forever once reached.
    Eof,
}

/// Internal parser state: what has been seen at the document level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DocState {
    /// Before the root element.
    Prolog,
    /// Inside the root element.
    InRoot,
    /// After the root element closed.
    Epilog,
}

/// A pull parser over a UTF-8 XML string.
///
/// ```
/// use xmlkit::sax::{SaxParser, SaxEvent};
///
/// let mut p = SaxParser::new("<a><b x='1'/>hi</a>");
/// assert!(matches!(p.next_event().unwrap(), SaxEvent::StartElement { name, .. } if name == "a"));
/// assert!(matches!(p.next_event().unwrap(), SaxEvent::StartElement { name, .. } if name == "b"));
/// assert!(matches!(p.next_event().unwrap(), SaxEvent::EndElement { name } if name == "b"));
/// assert!(matches!(p.next_event().unwrap(), SaxEvent::Text(t) if t == "hi"));
/// assert!(matches!(p.next_event().unwrap(), SaxEvent::EndElement { name } if name == "a"));
/// assert!(matches!(p.next_event().unwrap(), SaxEvent::Eof));
/// ```
#[derive(Debug)]
pub struct SaxParser<'a> {
    input: &'a [u8],
    pos: usize,
    /// Stack of currently open element names.
    open: Vec<String>,
    /// Pending end-element produced by a self-closing tag.
    pending_end: Option<String>,
    state: DocState,
    eof_reported: bool,
}

impl<'a> SaxParser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        SaxParser {
            input: input.as_bytes(),
            pos: 0,
            open: Vec::new(),
            pending_end: None,
            state: DocState::Prolog,
            eof_reported: false,
        }
    }

    /// Current byte offset into the input (useful for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Returns the next event, or an error if the document is malformed.
    ///
    /// After [`SaxEvent::Eof`] has been returned it will be returned again
    /// on every subsequent call.
    pub fn next_event(&mut self) -> Result<SaxEvent> {
        if let Some(name) = self.pending_end.take() {
            self.pop_open(&name)?;
            return Ok(SaxEvent::EndElement { name });
        }
        loop {
            if self.pos >= self.input.len() {
                return self.handle_eof();
            }
            if self.peek() == b'<' {
                return self.parse_markup();
            }
            // Character data.
            let start = self.pos;
            while self.pos < self.input.len() && self.peek() != b'<' {
                self.pos += 1;
            }
            let raw = &self.input[start..self.pos];
            let text = decode_entities(std::str::from_utf8(raw).map_err(|_| Error::Syntax {
                message: "invalid UTF-8 in text".into(),
                offset: start,
            })?);
            match self.state {
                DocState::InRoot => return Ok(SaxEvent::Text(text)),
                _ => {
                    // Whitespace outside the root is allowed; anything else
                    // is a well-formedness error.
                    if text.trim().is_empty() {
                        continue;
                    }
                    return Err(Error::Syntax {
                        message: "character data outside the root element".into(),
                        offset: start,
                    });
                }
            }
        }
    }

    /// Convenience: parse the entire input, collecting every event except
    /// `Eof` into a vector.
    pub fn collect_events(mut self) -> Result<Vec<SaxEvent>> {
        let mut out = Vec::new();
        loop {
            let evt = self.next_event()?;
            if evt == SaxEvent::Eof {
                return Ok(out);
            }
            out.push(evt);
        }
    }

    fn handle_eof(&mut self) -> Result<SaxEvent> {
        if !self.open.is_empty() {
            return Err(Error::UnexpectedEof {
                open_elements: self.open.clone(),
            });
        }
        if self.state == DocState::Prolog && !self.eof_reported {
            return Err(Error::EmptyDocument);
        }
        self.eof_reported = true;
        Ok(SaxEvent::Eof)
    }

    #[inline]
    fn peek(&self) -> u8 {
        self.input[self.pos]
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn parse_markup(&mut self) -> Result<SaxEvent> {
        debug_assert_eq!(self.peek(), b'<');
        if self.starts_with(b"<!--") {
            return self.parse_comment();
        }
        if self.starts_with(b"<![CDATA[") {
            return self.parse_cdata();
        }
        if self.starts_with(b"<!DOCTYPE") || self.starts_with(b"<!doctype") {
            self.skip_doctype()?;
            return self.next_event();
        }
        if self.starts_with(b"<?") {
            return self.parse_pi();
        }
        if self.starts_with(b"</") {
            return self.parse_end_tag();
        }
        self.parse_start_tag()
    }

    fn parse_comment(&mut self) -> Result<SaxEvent> {
        let start = self.pos;
        self.pos += 4; // "<!--"
        if let Some(end) = find(self.input, self.pos, b"-->") {
            let body = std::str::from_utf8(&self.input[self.pos..end])
                .map_err(|_| Error::Syntax {
                    message: "invalid UTF-8 in comment".into(),
                    offset: self.pos,
                })?
                .to_string();
            self.pos = end + 3;
            Ok(SaxEvent::Comment(body))
        } else {
            Err(Error::Syntax {
                message: "unterminated comment".into(),
                offset: start,
            })
        }
    }

    fn parse_cdata(&mut self) -> Result<SaxEvent> {
        let start = self.pos;
        self.pos += 9; // "<![CDATA["
        if let Some(end) = find(self.input, self.pos, b"]]>") {
            let body = std::str::from_utf8(&self.input[self.pos..end])
                .map_err(|_| Error::Syntax {
                    message: "invalid UTF-8 in CDATA".into(),
                    offset: self.pos,
                })?
                .to_string();
            self.pos = end + 3;
            if self.state != DocState::InRoot {
                return Err(Error::Syntax {
                    message: "CDATA outside the root element".into(),
                    offset: start,
                });
            }
            Ok(SaxEvent::Text(body))
        } else {
            Err(Error::Syntax {
                message: "unterminated CDATA section".into(),
                offset: start,
            })
        }
    }

    fn skip_doctype(&mut self) -> Result<()> {
        // A DOCTYPE may contain an internal subset in brackets; skip to the
        // matching '>' while tracking bracket depth.
        let start = self.pos;
        let mut depth = 0usize;
        while self.pos < self.input.len() {
            match self.peek() {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(Error::Syntax {
            message: "unterminated DOCTYPE declaration".into(),
            offset: start,
        })
    }

    fn parse_pi(&mut self) -> Result<SaxEvent> {
        let start = self.pos;
        self.pos += 2; // "<?"
        let end = find(self.input, self.pos, b"?>").ok_or_else(|| Error::Syntax {
            message: "unterminated processing instruction".into(),
            offset: start,
        })?;
        let body = std::str::from_utf8(&self.input[self.pos..end]).map_err(|_| Error::Syntax {
            message: "invalid UTF-8 in processing instruction".into(),
            offset: self.pos,
        })?;
        self.pos = end + 2;
        let body = body.trim();
        let (target, data) = match body.find(char::is_whitespace) {
            Some(i) => (&body[..i], body[i..].trim_start()),
            None => (body, ""),
        };
        if target.eq_ignore_ascii_case("xml") {
            // XML declaration: skip entirely.
            return self.next_event();
        }
        Ok(SaxEvent::ProcessingInstruction {
            target: target.to_string(),
            data: data.to_string(),
        })
    }

    fn parse_end_tag(&mut self) -> Result<SaxEvent> {
        let start = self.pos;
        self.pos += 2; // "</"
        let name = self.read_name()?;
        self.skip_whitespace();
        if self.pos >= self.input.len() || self.peek() != b'>' {
            return Err(Error::Syntax {
                message: format!("malformed closing tag </{name}"),
                offset: start,
            });
        }
        self.pos += 1;
        self.pop_open(&name)?;
        Ok(SaxEvent::EndElement { name })
    }

    fn parse_start_tag(&mut self) -> Result<SaxEvent> {
        let start = self.pos;
        self.pos += 1; // "<"
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            if self.pos >= self.input.len() {
                return Err(Error::Syntax {
                    message: format!("unterminated start tag <{name}"),
                    offset: start,
                });
            }
            match self.peek() {
                b'>' => {
                    self.pos += 1;
                    self.push_open(name.clone(), start)?;
                    return Ok(SaxEvent::StartElement { name, attributes });
                }
                b'/' => {
                    if !self.starts_with(b"/>") {
                        return Err(Error::Syntax {
                            message: "expected '/>'".into(),
                            offset: self.pos,
                        });
                    }
                    self.pos += 2;
                    self.push_open(name.clone(), start)?;
                    self.pending_end = Some(name.clone());
                    return Ok(SaxEvent::StartElement { name, attributes });
                }
                _ => {
                    let attr = self.read_attribute()?;
                    attributes.push(attr);
                }
            }
        }
    }

    fn read_attribute(&mut self) -> Result<Attribute> {
        let name = self.read_name()?;
        self.skip_whitespace();
        if self.pos >= self.input.len() || self.peek() != b'=' {
            return Err(Error::Syntax {
                message: format!("attribute '{name}' missing '='"),
                offset: self.pos,
            });
        }
        self.pos += 1;
        self.skip_whitespace();
        if self.pos >= self.input.len() {
            return Err(Error::Syntax {
                message: "unterminated attribute value".into(),
                offset: self.pos,
            });
        }
        let quote = self.peek();
        if quote != b'"' && quote != b'\'' {
            return Err(Error::Syntax {
                message: "attribute value must be quoted".into(),
                offset: self.pos,
            });
        }
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.input.len() && self.peek() != quote {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return Err(Error::Syntax {
                message: "unterminated attribute value".into(),
                offset: start,
            });
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| Error::Syntax {
            message: "invalid UTF-8 in attribute value".into(),
            offset: start,
        })?;
        self.pos += 1; // closing quote
        Ok(Attribute {
            name,
            value: decode_entities(raw),
        })
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        while self.pos < self.input.len() && is_name_byte(self.peek()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(Error::Syntax {
                message: "expected a name".into(),
                offset: start,
            });
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| Error::Syntax {
                message: "invalid UTF-8 in name".into(),
                offset: start,
            })?
            .to_string())
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.input.len() && self.peek().is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn push_open(&mut self, name: String, offset: usize) -> Result<()> {
        match self.state {
            DocState::Prolog => {
                self.state = DocState::InRoot;
            }
            DocState::InRoot => {}
            DocState::Epilog => {
                return Err(Error::MultipleRoots { offset });
            }
        }
        self.open.push(name);
        Ok(())
    }

    fn pop_open(&mut self, name: &str) -> Result<()> {
        match self.open.pop() {
            Some(expected) if expected == name => {
                if self.open.is_empty() {
                    self.state = DocState::Epilog;
                }
                Ok(())
            }
            Some(expected) => Err(Error::MismatchedTag {
                expected,
                found: name.to_string(),
                offset: self.pos,
            }),
            None => Err(Error::Syntax {
                message: format!("closing tag </{name}> without matching start tag"),
                offset: self.pos,
            }),
        }
    }
}

/// Returns true for bytes allowed in (our subset of) XML names.
#[inline]
fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':')
}

/// Finds `needle` in `haystack` starting at `from`, returning the index of
/// the first match.
fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| i + from)
}

/// Resolves the predefined entities and numeric character references in
/// `raw`. Unknown entities are passed through unchanged, which is the
/// lenient behaviour we want for synthetic data.
pub fn decode_entities(raw: &str) -> String {
    if !raw.contains('&') {
        return raw.to_string();
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        if let Some(semi) = tail.find(';') {
            let entity = &tail[1..semi];
            let decoded: Option<String> = match entity {
                "amp" => Some("&".into()),
                "lt" => Some("<".into()),
                "gt" => Some(">".into()),
                "apos" => Some("'".into()),
                "quot" => Some("\"".into()),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    u32::from_str_radix(&entity[2..], 16)
                        .ok()
                        .and_then(char::from_u32)
                        .map(|c| c.to_string())
                }
                _ if entity.starts_with('#') => entity[1..]
                    .parse::<u32>()
                    .ok()
                    .and_then(char::from_u32)
                    .map(|c| c.to_string()),
                _ => None,
            };
            match decoded {
                Some(s) => {
                    out.push_str(&s);
                    rest = &tail[semi + 1..];
                }
                None => {
                    // Unknown entity: emit literally and continue after '&'.
                    out.push('&');
                    rest = &tail[1..];
                }
            }
        } else {
            out.push('&');
            rest = &tail[1..];
        }
    }
    out.push_str(rest);
    out
}

/// Escapes the characters that must be escaped in XML text content.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes the characters that must be escaped inside a double-quoted
/// attribute value.
pub fn escape_attr(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Vec<SaxEvent> {
        SaxParser::new(s).collect_events().unwrap()
    }

    #[test]
    fn simple_document() {
        let evts = events("<a><b></b></a>");
        assert_eq!(evts.len(), 4);
        assert!(matches!(&evts[0], SaxEvent::StartElement { name, .. } if name == "a"));
        assert!(matches!(&evts[3], SaxEvent::EndElement { name } if name == "a"));
    }

    #[test]
    fn self_closing_emits_both_events() {
        let evts = events("<a><b/></a>");
        assert!(matches!(&evts[1], SaxEvent::StartElement { name, .. } if name == "b"));
        assert!(matches!(&evts[2], SaxEvent::EndElement { name } if name == "b"));
    }

    #[test]
    fn attributes_both_quote_styles() {
        let evts = events(r#"<a x="1" y='two'/>"#);
        match &evts[0] {
            SaxEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].name, "x");
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].value, "two");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn text_and_entities() {
        let evts = events("<a>x &amp; y &lt;z&gt; &#65;&#x42;</a>");
        match &evts[1] {
            SaxEvent::Text(t) => assert_eq!(t, "x & y <z> AB"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cdata_is_text() {
        let evts = events("<a><![CDATA[<raw> & stuff]]></a>");
        match &evts[1] {
            SaxEvent::Text(t) => assert_eq!(t, "<raw> & stuff"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_pis() {
        let evts = events("<?xml version=\"1.0\"?><!-- hello --><a><?target data?></a>");
        assert!(matches!(&evts[0], SaxEvent::Comment(c) if c.trim() == "hello"));
        assert!(
            matches!(&evts[2], SaxEvent::ProcessingInstruction { target, data } if target == "target" && data == "data")
        );
    }

    #[test]
    fn doctype_is_skipped() {
        let evts = events("<!DOCTYPE article [ <!ELEMENT article (#PCDATA)> ]><article/>");
        assert!(matches!(&evts[0], SaxEvent::StartElement { name, .. } if name == "article"));
    }

    #[test]
    fn mismatched_tags_error() {
        let err = SaxParser::new("<a><b></a></b>")
            .collect_events()
            .unwrap_err();
        assert!(matches!(err, Error::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_error() {
        let err = SaxParser::new("<a><b>").collect_events().unwrap_err();
        assert!(matches!(err, Error::UnexpectedEof { open_elements } if open_elements.len() == 2));
    }

    #[test]
    fn multiple_roots_error() {
        let err = SaxParser::new("<a/><b/>").collect_events().unwrap_err();
        assert!(matches!(err, Error::MultipleRoots { .. }));
    }

    #[test]
    fn empty_document_error() {
        let err = SaxParser::new("   ").collect_events().unwrap_err();
        assert_eq!(err, Error::EmptyDocument);
        let err = SaxParser::new("").collect_events().unwrap_err();
        assert_eq!(err, Error::EmptyDocument);
    }

    #[test]
    fn text_outside_root_is_error() {
        let err = SaxParser::new("hello<a/>").collect_events().unwrap_err();
        assert!(matches!(err, Error::Syntax { .. }));
    }

    #[test]
    fn eof_is_sticky() {
        let mut p = SaxParser::new("<a/>");
        while p.next_event().unwrap() != SaxEvent::Eof {}
        assert_eq!(p.next_event().unwrap(), SaxEvent::Eof);
        assert_eq!(p.next_event().unwrap(), SaxEvent::Eof);
    }

    #[test]
    fn unknown_entity_passes_through() {
        assert_eq!(decode_entities("a &unknown; b"), "a &unknown; b");
        assert_eq!(decode_entities("trailing &"), "trailing &");
    }

    #[test]
    fn escape_roundtrip() {
        let original = "a < b & c > d";
        assert_eq!(decode_entities(&escape_text(original)), original);
        let attr = "say \"hi\" & <bye>";
        assert_eq!(decode_entities(&escape_attr(attr)), attr);
    }

    #[test]
    fn depth_tracking() {
        let mut p = SaxParser::new("<a><b><c/></b></a>");
        p.next_event().unwrap();
        assert_eq!(p.depth(), 1);
        p.next_event().unwrap();
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn malformed_closing_tag() {
        let err = SaxParser::new("<a></a junk>").collect_events().unwrap_err();
        assert!(matches!(err, Error::Syntax { .. }));
    }

    #[test]
    fn attribute_missing_equals() {
        let err = SaxParser::new("<a attr></a>").collect_events().unwrap_err();
        assert!(matches!(err, Error::Syntax { .. }));
    }

    #[test]
    fn unquoted_attribute_is_error() {
        let err = SaxParser::new("<a attr=1></a>")
            .collect_events()
            .unwrap_err();
        assert!(matches!(err, Error::Syntax { .. }));
    }

    #[test]
    fn deeply_nested_document() {
        let depth = 200;
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<n>");
        }
        for _ in 0..depth {
            s.push_str("</n>");
        }
        let evts = events(&s);
        assert_eq!(evts.len(), depth * 2);
    }
}
