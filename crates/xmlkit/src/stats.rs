//! Document statistics, including the recursion-level machinery of
//! Definition 1 of the paper.
//!
//! * The **path recursion level (PRL)** of a rooted path is the maximum
//!   number of occurrences of any label on the path, minus one.
//! * The **recursion level of a node** is the PRL of the rooted path ending
//!   at that node.
//! * The **document recursion level (DRL)** is the maximum PRL over all
//!   rooted paths — equivalently, the maximum node recursion level.
//!
//! These notions drive both the XSEED kernel (edge labels are indexed by
//! recursion level) and the dataset characterization of Table 2
//! (avg/max recursion level per dataset).

use crate::names::LabelId;
use crate::tree::{Document, NodeId};
use std::collections::HashMap;

/// Aggregate statistics about a document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentStats {
    /// Total number of element nodes.
    pub element_count: usize,
    /// Number of distinct element names.
    pub distinct_labels: usize,
    /// Maximum element depth (root = 1).
    pub max_depth: usize,
    /// Average element depth.
    pub avg_depth: f64,
    /// Average node recursion level (Definition 1).
    pub avg_recursion_level: f64,
    /// Document recursion level: maximum node recursion level.
    pub max_recursion_level: usize,
    /// Number of distinct rooted label paths (the size of the path tree).
    pub distinct_rooted_paths: usize,
    /// Serialized size in bytes (exact when parsed from text).
    pub source_bytes: usize,
}

impl DocumentStats {
    /// Computes statistics for `doc` in a single DFS pass.
    pub fn compute(doc: &Document) -> Self {
        let mut walker = RecursionWalker::new();
        let mut depth_sum = 0usize;
        let mut max_depth = 0usize;
        let mut rl_sum = 0usize;
        let mut max_rl = 0usize;
        let mut count = 0usize;
        let mut path_set: HashMap<u64, ()> = HashMap::new();
        let mut path_hash_stack: Vec<u64> = Vec::new();

        // Iterative DFS with explicit enter/leave so the walker's label
        // counts mirror the current rooted path.
        enum Step {
            Enter(NodeId),
            Leave(NodeId),
        }
        let mut stack = vec![Step::Enter(doc.root())];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(n) => {
                    let label = doc.label(n);
                    let rl = walker.push(label);
                    let depth = walker.depth();
                    count += 1;
                    depth_sum += depth;
                    max_depth = max_depth.max(depth);
                    rl_sum += rl;
                    max_rl = max_rl.max(rl);

                    let parent_hash = path_hash_stack
                        .last()
                        .copied()
                        .unwrap_or(0xcbf2_9ce4_8422_2325);
                    let h = fnv_step(parent_hash, label.0);
                    path_hash_stack.push(h);
                    path_set.insert(h, ());

                    stack.push(Step::Leave(n));
                    let children: Vec<NodeId> = doc.children(n).collect();
                    for c in children.into_iter().rev() {
                        stack.push(Step::Enter(c));
                    }
                }
                Step::Leave(n) => {
                    walker.pop(doc.label(n));
                    path_hash_stack.pop();
                }
            }
        }

        DocumentStats {
            element_count: count,
            distinct_labels: doc.names().len(),
            max_depth,
            avg_depth: depth_sum as f64 / count as f64,
            avg_recursion_level: rl_sum as f64 / count as f64,
            max_recursion_level: max_rl,
            distinct_rooted_paths: path_set.len(),
            source_bytes: doc.source_bytes(),
        }
    }
}

/// One FNV-1a hashing step folding a label id into a running path hash.
#[inline]
fn fnv_step(hash: u64, label: u32) -> u64 {
    let mut h = hash;
    for b in label.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Tracks the recursion level of the current rooted path during a DFS walk.
///
/// This is the simple (hash-map based) sibling of the counter-stacks
/// structure of Figure 3: it keeps, for each label, the number of
/// occurrences on the current rooted path, plus the maximum occurrence
/// count, recomputing the maximum lazily on pops.
#[derive(Debug, Default)]
pub struct RecursionWalker {
    counts: HashMap<LabelId, usize>,
    depth: usize,
    /// Histogram of occurrence counts: `occ_hist[k]` = number of labels
    /// occurring exactly `k` times on the current path (index 0 unused).
    occ_hist: Vec<usize>,
    current_max: usize,
}

impl RecursionWalker {
    /// Creates a walker with an empty path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes `label` onto the current path; returns the recursion level of
    /// the path *including* the new node.
    pub fn push(&mut self, label: LabelId) -> usize {
        let c = self.counts.entry(label).or_insert(0);
        let old = *c;
        *c += 1;
        let new = *c;
        if self.occ_hist.len() <= new {
            self.occ_hist.resize(new + 1, 0);
        }
        if old > 0 {
            self.occ_hist[old] -= 1;
        }
        self.occ_hist[new] += 1;
        self.current_max = self.current_max.max(new);
        self.depth += 1;
        self.current_max - 1
    }

    /// Pops `label` from the current path (must mirror the matching push).
    pub fn pop(&mut self, label: LabelId) {
        let c = self
            .counts
            .get_mut(&label)
            .expect("pop of a label that was never pushed");
        let old = *c;
        *c -= 1;
        self.occ_hist[old] -= 1;
        if *c > 0 {
            self.occ_hist[old - 1] += 1;
        } else {
            self.counts.remove(&label);
        }
        // The maximum can only have decreased if its histogram bucket
        // emptied; scan downwards (cheap: max recursion levels are small).
        while self.current_max > 0 && self.occ_hist[self.current_max] == 0 {
            self.current_max -= 1;
        }
        self.depth -= 1;
    }

    /// Current path depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Recursion level of the current path (0 for an empty path).
    pub fn recursion_level(&self) -> usize {
        self.current_max.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Document;

    #[test]
    fn non_recursive_document() {
        let doc = Document::parse_str("<a><b/><c><d/></c></a>").unwrap();
        let s = DocumentStats::compute(&doc);
        assert_eq!(s.element_count, 4);
        assert_eq!(s.distinct_labels, 4);
        assert_eq!(s.max_recursion_level, 0);
        assert_eq!(s.avg_recursion_level, 0.0);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.distinct_rooted_paths, 4);
    }

    #[test]
    fn recursive_document_levels() {
        // Path (a,c,s,s,s,p) has three s nodes => recursion level 2.
        let doc = Document::parse_str("<a><c><s><s><s><p/></s></s></s></c></a>").unwrap();
        let s = DocumentStats::compute(&doc);
        assert_eq!(s.max_recursion_level, 2);
        assert!(s.avg_recursion_level > 0.0);
    }

    #[test]
    fn paper_example_prl() {
        // From Section 2.1: (a,c,s,p) has PRL 0; (a,c,s,s,s,p) has PRL 2.
        let mut w = RecursionWalker::new();
        let a = LabelId(0);
        let c = LabelId(1);
        let s = LabelId(2);
        let p = LabelId(3);
        assert_eq!(w.push(a), 0);
        assert_eq!(w.push(c), 0);
        assert_eq!(w.push(s), 0);
        assert_eq!(w.push(p), 0);
        w.pop(p);
        assert_eq!(w.push(s), 1);
        assert_eq!(w.push(s), 2);
        assert_eq!(w.push(p), 2);
        assert_eq!(w.recursion_level(), 2);
    }

    #[test]
    fn walker_push_pop_restores_state() {
        let mut w = RecursionWalker::new();
        let x = LabelId(7);
        w.push(x);
        w.push(x);
        assert_eq!(w.recursion_level(), 1);
        w.pop(x);
        assert_eq!(w.recursion_level(), 0);
        w.pop(x);
        assert_eq!(w.recursion_level(), 0);
        assert_eq!(w.depth(), 0);
    }

    #[test]
    fn distinct_rooted_paths_counts_label_paths() {
        // Two <b/> children under the same parent share a rooted label path.
        let doc = Document::parse_str("<a><b/><b/><c><b/></c></a>").unwrap();
        let s = DocumentStats::compute(&doc);
        // Paths: /a, /a/b, /a/c, /a/c/b
        assert_eq!(s.distinct_rooted_paths, 4);
    }

    #[test]
    fn avg_depth_simple() {
        let doc = Document::parse_str("<a><b/></a>").unwrap();
        let s = DocumentStats::compute(&doc);
        assert!((s.avg_depth - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "never pushed")]
    fn pop_unpushed_label_panics() {
        let mut w = RecursionWalker::new();
        w.pop(LabelId(0));
    }
}
