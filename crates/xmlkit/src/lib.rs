//! # xmlkit — XML substrate for the XSEED reproduction
//!
//! This crate provides everything the XSEED synopsis needs from an XML
//! processing stack, implemented from scratch:
//!
//! * [`sax`] — a streaming, event-driven (SAX-style) pull parser over XML
//!   text. The XSEED kernel is constructed directly from this event stream
//!   (Algorithm 1 of the paper), so the parser is the foundation of the
//!   whole pipeline.
//! * [`tree`] — an arena-backed in-memory XML document tree
//!   ([`tree::Document`]). The exact evaluator (NoK), the path tree, and
//!   the TreeSketch baseline all operate on this representation.
//! * [`writer`] — serialization of a [`tree::Document`] back to XML text,
//!   used to round-trip synthetic datasets through the SAX parser.
//! * [`names`] — a symbol table mapping element names to compact integer
//!   labels ([`names::LabelId`]), mirroring the paper's alphabet mapping
//!   `f(article) = a`, `f(title) = t`, ...
//! * [`stats`] — document statistics: node counts, depth, and the
//!   recursion-level machinery of Definition 1 (path recursion level,
//!   node recursion level, document recursion level).
//!
//! ## Quick example
//!
//! ```
//! use xmlkit::tree::Document;
//! use xmlkit::stats::DocumentStats;
//!
//! let doc = Document::parse_str(
//!     "<article><title/><authors/><chapter><title/><para/></chapter></article>",
//! ).unwrap();
//! assert_eq!(doc.element_count(), 6);
//! let stats = DocumentStats::compute(&doc);
//! assert_eq!(stats.max_recursion_level, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod names;
pub mod samples;
pub mod sax;
pub mod stats;
pub mod tree;
pub mod writer;

pub use error::{Error, Result};
pub use names::{LabelId, NameTable};
pub use sax::{SaxEvent, SaxParser};
pub use tree::{Document, NodeId};
