//! Error types shared by the XML substrate.

use std::fmt;

/// Convenience result alias used throughout `xmlkit`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while parsing or manipulating XML documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The parser encountered a syntactic problem in the XML text.
    ///
    /// Carries a human-readable message and the byte offset at which the
    /// problem was detected.
    Syntax {
        /// Description of the problem.
        message: String,
        /// Byte offset into the input where the problem was detected.
        offset: usize,
    },
    /// A closing tag did not match the innermost open element.
    MismatchedTag {
        /// The element name that was open.
        expected: String,
        /// The element name found in the closing tag.
        found: String,
        /// Byte offset of the offending closing tag.
        offset: usize,
    },
    /// The document ended while elements were still open.
    UnexpectedEof {
        /// Names of the elements still open, outermost first.
        open_elements: Vec<String>,
    },
    /// The document contains more than one root element or content outside
    /// the root element.
    MultipleRoots {
        /// Byte offset of the second root element.
        offset: usize,
    },
    /// The document contains no element at all.
    EmptyDocument,
    /// An operation referenced a node id that does not belong to the
    /// document (for example, after using an id from a different document).
    InvalidNodeId {
        /// The offending node id (raw index).
        id: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { message, offset } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            Error::MismatchedTag {
                expected,
                found,
                offset,
            } => write!(
                f,
                "mismatched closing tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            Error::UnexpectedEof { open_elements } => write!(
                f,
                "unexpected end of document with {} unclosed element(s): {}",
                open_elements.len(),
                open_elements.join(", ")
            ),
            Error::MultipleRoots { offset } => {
                write!(f, "unexpected second root element at byte {offset}")
            }
            Error::EmptyDocument => write!(f, "document contains no element"),
            Error::InvalidNodeId { id } => write!(f, "invalid node id {id}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_syntax() {
        let e = Error::Syntax {
            message: "bad".into(),
            offset: 7,
        };
        assert_eq!(e.to_string(), "XML syntax error at byte 7: bad");
    }

    #[test]
    fn display_mismatch() {
        let e = Error::MismatchedTag {
            expected: "a".into(),
            found: "b".into(),
            offset: 3,
        };
        assert!(e.to_string().contains("</a>"));
        assert!(e.to_string().contains("</b>"));
    }

    #[test]
    fn display_eof() {
        let e = Error::UnexpectedEof {
            open_elements: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("2 unclosed"));
    }

    #[test]
    fn display_empty_and_roots() {
        assert!(Error::EmptyDocument.to_string().contains("no element"));
        assert!(Error::MultipleRoots { offset: 10 }
            .to_string()
            .contains("second root"));
        assert!(Error::InvalidNodeId { id: 4 }.to_string().contains('4'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
