//! A SwissProt-like protein database document.
//!
//! SwissProt entries are wide, shallow records with many repeated feature
//! and reference elements — another "simple, non-recursive" dataset, but
//! with higher fan-out variance than DBLP.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlkit::tree::{Document, DocumentBuilder};

/// Configuration for the SwissProt generator.
#[derive(Debug, Clone)]
pub struct SwissProtConfig {
    /// Number of protein entries.
    pub entries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SwissProtConfig {
    fn default() -> Self {
        SwissProtConfig {
            entries: 3_000,
            seed: 0x5155,
        }
    }
}

const FEATURE_KINDS: [&str; 6] = [
    "DOMAIN", "CHAIN", "BINDING", "SIGNAL", "TRANSMEM", "CONFLICT",
];

/// Generates a SwissProt-like document.
pub fn generate(config: &SwissProtConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = DocumentBuilder::new();
    b.start_element("root");
    for _ in 0..config.entries {
        entry(&mut b, &mut rng);
    }
    b.end_element();
    b.finish().expect("generator produces balanced documents")
}

fn field(b: &mut DocumentBuilder, name: &str, text: usize) {
    b.start_element(name);
    b.text_len(text);
    b.end_element();
}

fn entry(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.start_element("Entry");
    field(b, "AC", 8);
    field(b, "Mod", 10);
    field(b, "Descr", 60);
    let species = rng.random_range(1..=2usize);
    for _ in 0..species {
        field(b, "Species", 20);
    }
    field(b, "Org", 25);

    // References.
    let refs = rng.random_range(1..=6usize);
    for _ in 0..refs {
        b.start_element("Ref");
        let authors = rng.random_range(1..=8usize);
        for _ in 0..authors {
            field(b, "Author", 14);
        }
        field(b, "Cite", 35);
        if rng.random_bool(0.7) {
            field(b, "MedlineID", 8);
        }
        b.end_element();
    }

    // Keywords.
    let keywords = rng.random_range(0..=5usize);
    for _ in 0..keywords {
        field(b, "Keyword", 12);
    }

    // Features.
    if rng.random_bool(0.85) {
        b.start_element("Features");
        let features = rng.random_range(1..=10usize);
        for _ in 0..features {
            let kind = FEATURE_KINDS[rng.random_range(0..FEATURE_KINDS.len())];
            b.start_element(kind);
            field(b, "Descr", 25);
            field(b, "From", 4);
            field(b, "To", 4);
            b.end_element();
        }
        b.end_element();
    }
    b.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::stats::DocumentStats;

    #[test]
    fn non_recursive_wide_records() {
        let doc = generate(&SwissProtConfig {
            entries: 200,
            seed: 1,
        });
        let stats = DocumentStats::compute(&doc);
        assert_eq!(stats.max_recursion_level, 0);
        assert_eq!(stats.max_depth, 5);
        assert!(stats.element_count > 3_000);
        assert!(stats.distinct_labels > 10);
    }

    #[test]
    fn deterministic() {
        let a = generate(&SwissProtConfig {
            entries: 50,
            seed: 2,
        });
        let b = generate(&SwissProtConfig {
            entries: 50,
            seed: 2,
        });
        assert!(a.structurally_equal(&b));
    }
}
