//! Query workload generation (Section 6.1).
//!
//! For each dataset the paper uses three workload classes:
//!
//! * **SP** — *all* possible simple path queries (one per distinct rooted
//!   label path, i.e. per path-tree node);
//! * **BP** — 1,000 randomly generated branching path queries (`/` axes
//!   with predicates);
//! * **CP** — 1,000 randomly generated complex path queries (`//` axes,
//!   wildcards, and possibly predicates).
//!
//! To exercise HETs with different MBP settings the paper additionally
//! generates 2BP/3BP (and 2CP/3CP) workloads with up to two or three
//! predicates per step. Queries are generated from the document's path
//! tree, so they are non-trivial (they address paths that exist), like the
//! sample query `//regions/australia/item[shipping]/location`.

use nokstore::{PathTree, PathTreeNodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlkit::tree::Document;
use xpathkit::ast::{Axis, NodeTest, PathExpr, Step};
use xpathkit::classify::QueryClass;

/// How many queries of each random class to generate, and their shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Number of random branching path (BP) queries.
    pub branching: usize,
    /// Number of random complex path (CP) queries.
    pub complex: usize,
    /// Cap on the number of simple path queries (the paper uses all of
    /// them; very path-rich documents such as Treebank benefit from a cap
    /// when running quick experiments).
    pub max_simple: usize,
    /// Maximum number of predicates attached to a single step (the
    /// workload-side MBP: 1 for BP/CP, 2 for 2BP/2CP, 3 for 3BP/3CP).
    pub predicates_per_step: usize,
}

impl WorkloadSpec {
    /// The paper's workload: all SP queries plus 1,000 BP and 1,000 CP.
    pub fn paper() -> Self {
        WorkloadSpec {
            branching: 1_000,
            complex: 1_000,
            max_simple: usize::MAX,
            predicates_per_step: 1,
        }
    }

    /// A reduced workload for fast experiments and tests.
    pub fn small() -> Self {
        WorkloadSpec {
            branching: 100,
            complex: 100,
            max_simple: 400,
            predicates_per_step: 1,
        }
    }

    /// Returns the same spec with a different number of predicates per
    /// step (2BP/3BP workloads).
    pub fn with_predicates_per_step(mut self, n: usize) -> Self {
        self.predicates_per_step = n.max(1);
        self
    }
}

/// A generated workload, split by query class.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// All (or capped) simple path queries.
    pub simple: Vec<PathExpr>,
    /// Random branching path queries.
    pub branching: Vec<PathExpr>,
    /// Random complex path queries.
    pub complex: Vec<PathExpr>,
}

impl Workload {
    /// Total number of queries.
    pub fn len(&self) -> usize {
        self.simple.len() + self.branching.len() + self.complex.len()
    }

    /// Returns `true` if the workload contains no queries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over every query in the workload (SP, then BP, then CP).
    pub fn all(&self) -> impl Iterator<Item = &PathExpr> {
        self.simple
            .iter()
            .chain(self.branching.iter())
            .chain(self.complex.iter())
    }

    /// The queries of one class.
    pub fn of_class(&self, class: QueryClass) -> &[PathExpr] {
        match class {
            QueryClass::SimplePath => &self.simple,
            QueryClass::BranchingPath => &self.branching,
            QueryClass::ComplexPath => &self.complex,
        }
    }
}

/// Generates workloads from a document's path tree.
pub struct WorkloadGenerator<'a> {
    doc: &'a Document,
    path_tree: PathTree,
    seed: u64,
}

impl<'a> WorkloadGenerator<'a> {
    /// Creates a generator for `doc`; `seed` makes generation
    /// deterministic.
    pub fn new(doc: &'a Document, seed: u64) -> Self {
        WorkloadGenerator {
            doc,
            path_tree: PathTree::from_document(doc),
            seed,
        }
    }

    /// Generates a workload according to `spec`.
    pub fn generate(&self, spec: &WorkloadSpec) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let simple = self.simple_queries(spec.max_simple);
        let branching =
            self.random_queries(&mut rng, spec.branching, spec.predicates_per_step, false);
        let complex = self.random_queries(&mut rng, spec.complex, spec.predicates_per_step, true);
        Workload {
            simple,
            branching,
            complex,
        }
    }

    /// All simple path queries (one per path-tree node), capped.
    fn simple_queries(&self, cap: usize) -> Vec<PathExpr> {
        self.path_tree
            .all_simple_paths(self.doc.names())
            .into_iter()
            .map(|(expr, _)| expr)
            .take(cap)
            .collect()
    }

    /// Random BP (when `complex` is false) or CP (when true) queries.
    fn random_queries(
        &self,
        rng: &mut StdRng,
        count: usize,
        predicates_per_step: usize,
        complex: bool,
    ) -> Vec<PathExpr> {
        // Candidate spine paths: path-tree nodes of depth >= 2.
        let candidates: Vec<PathTreeNodeId> = self
            .path_tree
            .ids()
            .filter(|&id| self.path_tree.label_path(id).len() >= 2)
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let names = self.doc.names();
        let mut out = Vec::with_capacity(count);
        // Cap the attempts so degenerate documents cannot loop forever.
        let mut attempts = 0usize;
        while out.len() < count && attempts < count * 20 {
            attempts += 1;
            let target = candidates[rng.random_range(0..candidates.len())];
            let spine: Vec<PathTreeNodeId> = self.rooted_chain(target);
            let mut steps: Vec<Step> = Vec::with_capacity(spine.len());
            for &node in &spine {
                let name = names
                    .name_or_panic(self.path_tree.node(node).label)
                    .to_string();
                steps.push(Step::child(name));
            }
            // Attach predicates: pick a step (not the last) whose path-tree
            // node has more than one child, then add up to
            // `predicates_per_step` sibling labels as predicates.
            let mut attached = false;
            for (i, &node) in spine.iter().enumerate().rev().skip(1) {
                let children = &self.path_tree.node(node).children;
                if children.len() < 2 {
                    continue;
                }
                let next_label = self.path_tree.node(spine[i + 1]).label;
                let mut sibling_labels: Vec<String> = children
                    .iter()
                    .filter(|&&c| self.path_tree.node(c).label != next_label)
                    .map(|&c| {
                        names
                            .name_or_panic(self.path_tree.node(c).label)
                            .to_string()
                    })
                    .collect();
                if sibling_labels.is_empty() {
                    continue;
                }
                let n_preds = rng.random_range(1..=predicates_per_step.min(sibling_labels.len()));
                for _ in 0..n_preds {
                    let idx = rng.random_range(0..sibling_labels.len());
                    let label = sibling_labels.swap_remove(idx);
                    steps[i].predicates.push(PathExpr::simple([label]));
                }
                attached = true;
                break;
            }
            if !complex && !attached {
                // A BP query must have at least one predicate.
                continue;
            }
            if complex {
                self.complicate(rng, &mut steps);
            }
            out.push(PathExpr::new(steps));
        }
        out
    }

    /// Turns a branching/simple spine into a complex query: descendant
    /// axes, possibly a dropped prefix, and occasional wildcards.
    fn complicate(&self, rng: &mut StdRng, steps: &mut Vec<Step>) {
        // Drop a prefix and start with a descendant axis, like the sample
        // query //regions/australia/item[shipping]/location.
        if steps.len() > 2 && rng.random_bool(0.6) {
            let drop = rng.random_range(1..steps.len() - 1);
            steps.drain(0..drop);
        }
        steps[0].axis = Axis::Descendant;
        for step in steps.iter_mut().skip(1) {
            if rng.random_bool(0.25) {
                step.axis = Axis::Descendant;
            }
            if rng.random_bool(0.1) {
                step.test = NodeTest::Wildcard;
            }
        }
    }

    /// The path-tree nodes from the root down to `target`.
    fn rooted_chain(&self, target: PathTreeNodeId) -> Vec<PathTreeNodeId> {
        let mut rev = Vec::new();
        let mut cur = Some(target);
        while let Some(id) = cur {
            rev.push(id);
            cur = self.path_tree.node(id).parent;
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use nokstore::{Evaluator, NokStorage};

    fn xmark() -> Document {
        Dataset::XMark10.generate_scaled(0.1)
    }

    #[test]
    fn classes_are_correct() {
        let doc = xmark();
        let workload = WorkloadGenerator::new(&doc, 1).generate(&WorkloadSpec::small());
        assert!(!workload.simple.is_empty());
        assert!(!workload.branching.is_empty());
        assert!(!workload.complex.is_empty());
        for q in &workload.simple {
            assert_eq!(q.classify(), QueryClass::SimplePath, "{q}");
        }
        for q in &workload.branching {
            assert_eq!(q.classify(), QueryClass::BranchingPath, "{q}");
        }
        for q in &workload.complex {
            assert_eq!(q.classify(), QueryClass::ComplexPath, "{q}");
        }
    }

    #[test]
    fn simple_queries_cover_every_rooted_path() {
        let doc = xmark();
        let spec = WorkloadSpec {
            max_simple: usize::MAX,
            ..WorkloadSpec::small()
        };
        let workload = WorkloadGenerator::new(&doc, 1).generate(&spec);
        let pt = PathTree::from_document(&doc);
        assert_eq!(workload.simple.len(), pt.len());
    }

    #[test]
    fn generated_queries_are_mostly_non_trivial() {
        // The paper stresses its random queries are non-trivial; spine
        // paths are drawn from the path tree, so the vast majority of BP
        // queries (and a solid share of CP queries) must have matches.
        let doc = xmark();
        let storage = NokStorage::from_document(&doc);
        let eval = Evaluator::new(&storage);
        let spec = WorkloadSpec {
            branching: 40,
            complex: 40,
            max_simple: 10,
            predicates_per_step: 1,
        };
        let workload = WorkloadGenerator::new(&doc, 7).generate(&spec);
        let non_empty = workload
            .branching
            .iter()
            .filter(|q| eval.count(q) > 0)
            .count();
        assert!(
            non_empty * 2 > workload.branching.len(),
            "only {non_empty}/{} BP queries have matches",
            workload.branching.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let doc = xmark();
        let a = WorkloadGenerator::new(&doc, 9).generate(&WorkloadSpec::small());
        let b = WorkloadGenerator::new(&doc, 9).generate(&WorkloadSpec::small());
        let c = WorkloadGenerator::new(&doc, 10).generate(&WorkloadSpec::small());
        assert_eq!(a.branching, b.branching);
        assert_eq!(a.complex, b.complex);
        assert_ne!(a.branching, c.branching);
    }

    #[test]
    fn predicates_per_step_respected() {
        let doc = xmark();
        let spec = WorkloadSpec::small().with_predicates_per_step(3);
        let workload = WorkloadGenerator::new(&doc, 5).generate(&spec);
        assert!(workload
            .branching
            .iter()
            .all(|q| q.max_predicates_per_step() <= 3));
        // With 3 allowed, at least some query should actually use > 1.
        assert!(workload
            .branching
            .iter()
            .any(|q| q.max_predicates_per_step() > 1));
    }

    #[test]
    fn of_class_and_len() {
        let doc = xmark();
        let w = WorkloadGenerator::new(&doc, 2).generate(&WorkloadSpec::small());
        assert_eq!(
            w.len(),
            w.simple.len() + w.branching.len() + w.complex.len()
        );
        assert_eq!(w.of_class(QueryClass::SimplePath).len(), w.simple.len());
        assert_eq!(w.of_class(QueryClass::ComplexPath).len(), w.complex.len());
        assert!(!w.is_empty());
        assert_eq!(w.all().count(), w.len());
    }
}
