//! An XMark-like auction-site document.
//!
//! XMark (Schmidt et al.) models an online auction site: regions with
//! items, people, categories, and open/closed auctions. The paper
//! classifies it as "complex with a small degree of recursion": the only
//! recursive structure is the `description`/`parlist`/`listitem` nesting
//! (average recursion level 0.04, maximum 1 in the 10/100 MB instances).
//! The generator reproduces that structure and lets the overall size be
//! scaled so that both the "XMark10" and "XMark100" configurations can be
//! produced.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlkit::tree::{Document, DocumentBuilder};

/// Configuration for the XMark generator.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Number of items across all regions; the other entity counts scale
    /// proportionally, mirroring XMark's scale factor.
    pub items: usize,
    /// RNG seed.
    pub seed: u64,
    /// Maximum depth of the parlist/listitem recursion.
    pub max_parlist_depth: usize,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            items: 2_000,
            seed: 0x0A_7C,
            max_parlist_depth: 2,
        }
    }
}

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Generates an XMark-like document.
pub fn generate(config: &XmarkConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = DocumentBuilder::new();
    b.start_element("site");

    // Regions and their items.
    b.start_element("regions");
    for (i, region) in REGIONS.iter().enumerate() {
        b.start_element(region);
        let share = region_share(i, config.items);
        for _ in 0..share {
            item(&mut b, &mut rng, config);
        }
        b.end_element();
    }
    b.end_element();

    // Categories.
    b.start_element("categories");
    let categories = (config.items / 20).max(4);
    for _ in 0..categories {
        b.start_element("category");
        field(&mut b, "name", 15);
        description(&mut b, &mut rng, config, 0);
        b.end_element();
    }
    b.end_element();

    // Category graph.
    b.start_element("catgraph");
    for _ in 0..categories {
        b.start_element("edge");
        field(&mut b, "from", 6);
        field(&mut b, "to", 6);
        b.end_element();
    }
    b.end_element();

    // People.
    b.start_element("people");
    let people = config.items / 2 + 10;
    for _ in 0..people {
        person(&mut b, &mut rng);
    }
    b.end_element();

    // Open auctions.
    b.start_element("open_auctions");
    let open = config.items / 2;
    for _ in 0..open {
        open_auction(&mut b, &mut rng, config);
    }
    b.end_element();

    // Closed auctions.
    b.start_element("closed_auctions");
    let closed = config.items / 3;
    for _ in 0..closed {
        closed_auction(&mut b, &mut rng, config);
    }
    b.end_element();

    b.end_element();
    b.finish().expect("generator produces balanced documents")
}

fn region_share(index: usize, items: usize) -> usize {
    // Uneven split like real XMark: europe and namerica carry most items.
    let weights = [5usize, 15, 5, 35, 30, 10];
    (items * weights[index] / 100).max(1)
}

fn field(b: &mut DocumentBuilder, name: &str, text: usize) {
    b.start_element(name);
    b.text_len(text);
    b.end_element();
}

fn item(b: &mut DocumentBuilder, rng: &mut StdRng, config: &XmarkConfig) {
    b.start_element("item");
    field(b, "location", 12);
    field(b, "quantity", 2);
    field(b, "name", 18);
    field(b, "payment", 20);
    description(b, rng, config, 0);
    if rng.random_bool(0.75) {
        field(b, "shipping", 25);
    }
    let incategories = rng.random_range(1..=4usize);
    for _ in 0..incategories {
        field(b, "incategory", 6);
    }
    if rng.random_bool(0.6) {
        b.start_element("mailbox");
        let mails = rng.random_range(0..=3usize);
        for _ in 0..mails {
            b.start_element("mail");
            field(b, "from", 15);
            field(b, "to", 15);
            field(b, "date", 10);
            field(b, "text", 60);
            b.end_element();
        }
        b.end_element();
    }
    b.end_element();
}

/// The recursive description structure: description → text | parlist,
/// parlist → listitem+, listitem → text | parlist.
fn description(b: &mut DocumentBuilder, rng: &mut StdRng, config: &XmarkConfig, depth: usize) {
    b.start_element("description");
    if depth < config.max_parlist_depth && rng.random_bool(0.25) {
        parlist(b, rng, config, depth);
    } else {
        field(b, "text", 80);
    }
    b.end_element();
}

fn parlist(b: &mut DocumentBuilder, rng: &mut StdRng, config: &XmarkConfig, depth: usize) {
    b.start_element("parlist");
    let items = rng.random_range(1..=3usize);
    for _ in 0..items {
        b.start_element("listitem");
        if depth + 1 < config.max_parlist_depth && rng.random_bool(0.3) {
            parlist(b, rng, config, depth + 1);
        } else {
            field(b, "text", 40);
        }
        b.end_element();
    }
    b.end_element();
}

fn person(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.start_element("person");
    field(b, "name", 16);
    field(b, "emailaddress", 25);
    if rng.random_bool(0.6) {
        field(b, "phone", 12);
    }
    if rng.random_bool(0.5) {
        b.start_element("address");
        field(b, "street", 20);
        field(b, "city", 12);
        field(b, "country", 12);
        field(b, "zipcode", 6);
        b.end_element();
    }
    if rng.random_bool(0.3) {
        field(b, "homepage", 30);
    }
    if rng.random_bool(0.4) {
        field(b, "creditcard", 19);
    }
    if rng.random_bool(0.7) {
        b.start_element("profile");
        let interests = rng.random_range(0..=4usize);
        for _ in 0..interests {
            field(b, "interest", 6);
        }
        if rng.random_bool(0.5) {
            field(b, "education", 15);
        }
        field(b, "gender", 6);
        field(b, "business", 3);
        if rng.random_bool(0.6) {
            field(b, "age", 2);
        }
        b.end_element();
    }
    if rng.random_bool(0.5) {
        b.start_element("watches");
        let watches = rng.random_range(1..=3usize);
        for _ in 0..watches {
            field(b, "watch", 6);
        }
        b.end_element();
    }
    b.end_element();
}

fn open_auction(b: &mut DocumentBuilder, rng: &mut StdRng, config: &XmarkConfig) {
    b.start_element("open_auction");
    field(b, "initial", 6);
    if rng.random_bool(0.4) {
        field(b, "reserve", 6);
    }
    let bidders = rng.random_range(0..=5usize);
    for _ in 0..bidders {
        b.start_element("bidder");
        field(b, "date", 10);
        field(b, "time", 8);
        field(b, "personref", 8);
        field(b, "increase", 5);
        b.end_element();
    }
    field(b, "current", 6);
    if rng.random_bool(0.3) {
        field(b, "privacy", 4);
    }
    field(b, "itemref", 8);
    field(b, "seller", 8);
    annotation(b, rng, config);
    field(b, "quantity", 2);
    field(b, "type", 8);
    b.start_element("interval");
    field(b, "start", 10);
    field(b, "end", 10);
    b.end_element();
    b.end_element();
}

fn closed_auction(b: &mut DocumentBuilder, rng: &mut StdRng, config: &XmarkConfig) {
    b.start_element("closed_auction");
    field(b, "seller", 8);
    field(b, "buyer", 8);
    field(b, "itemref", 8);
    field(b, "price", 7);
    field(b, "date", 10);
    field(b, "quantity", 2);
    field(b, "type", 8);
    annotation(b, rng, config);
    b.end_element();
}

fn annotation(b: &mut DocumentBuilder, rng: &mut StdRng, config: &XmarkConfig) {
    b.start_element("annotation");
    field(b, "author", 8);
    description(b, rng, config, 0);
    if rng.random_bool(0.5) {
        field(b, "happiness", 2);
    }
    b.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::stats::DocumentStats;

    fn small() -> Document {
        generate(&XmarkConfig {
            items: 150,
            seed: 11,
            max_parlist_depth: 2,
        })
    }

    #[test]
    fn has_small_recursion() {
        let doc = small();
        let stats = DocumentStats::compute(&doc);
        // parlist nesting gives recursion level >= 1 but stays small.
        assert!(stats.max_recursion_level >= 1);
        assert!(stats.max_recursion_level <= 2);
        assert!(stats.avg_recursion_level < 0.2);
    }

    #[test]
    fn paper_sample_query_is_non_trivial() {
        // //regions/australia/item[shipping]/location is the sample CP
        // query of Section 6.1; it must have matches.
        let doc = small();
        let storage = nokstore::NokStorage::from_document(&doc);
        let eval = nokstore::Evaluator::new(&storage);
        let q = xpathkit::parse("//regions/australia/item[shipping]/location").unwrap();
        assert!(eval.count(&q) > 0);
    }

    #[test]
    fn scaling_grows_linearly() {
        let small = generate(&XmarkConfig {
            items: 100,
            seed: 3,
            max_parlist_depth: 2,
        });
        let large = generate(&XmarkConfig {
            items: 1_000,
            seed: 3,
            max_parlist_depth: 2,
        });
        let ratio = large.element_count() as f64 / small.element_count() as f64;
        assert!(ratio > 6.0 && ratio < 14.0, "ratio {ratio}");
    }

    #[test]
    fn deterministic() {
        let a = generate(&XmarkConfig {
            items: 80,
            seed: 5,
            max_parlist_depth: 2,
        });
        let b = generate(&XmarkConfig {
            items: 80,
            seed: 5,
            max_parlist_depth: 2,
        });
        assert!(a.structurally_equal(&b));
    }

    #[test]
    fn all_major_sections_present() {
        let doc = small();
        let names = doc.names();
        for name in [
            "site",
            "regions",
            "categories",
            "people",
            "open_auctions",
            "closed_auctions",
            "parlist",
            "listitem",
        ] {
            assert!(names.lookup(name).is_some(), "missing section {name}");
        }
    }
}
