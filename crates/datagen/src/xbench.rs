//! An XBench-TC/MD-like document.
//!
//! XBench (Yao, Özsu, Khandelwal) generates families of text-centric and
//! data-centric documents. The paper groups it with XMark as "complex with
//! a small degree of recursion". The generator here mimics the
//! text-centric multi-document (TC/MD) flavour: a catalogue of articles
//! with nested sections that may recurse one or two levels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlkit::tree::{Document, DocumentBuilder};

/// Configuration for the XBench generator.
#[derive(Debug, Clone)]
pub struct XbenchConfig {
    /// Number of articles in the catalogue.
    pub articles: usize,
    /// Maximum section nesting depth.
    pub max_section_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XbenchConfig {
    fn default() -> Self {
        XbenchConfig {
            articles: 1_200,
            max_section_depth: 3,
            seed: 0xBE_7C,
        }
    }
}

/// Generates an XBench-like document.
pub fn generate(config: &XbenchConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = DocumentBuilder::new();
    b.start_element("catalog");
    for _ in 0..config.articles {
        article(&mut b, &mut rng, config);
    }
    b.end_element();
    b.finish().expect("generator produces balanced documents")
}

fn field(b: &mut DocumentBuilder, name: &str, text: usize) {
    b.start_element(name);
    b.text_len(text);
    b.end_element();
}

fn article(b: &mut DocumentBuilder, rng: &mut StdRng, config: &XbenchConfig) {
    b.start_element("article");
    b.start_element("prolog");
    field(b, "title", 50);
    let authors = rng.random_range(1..=4usize);
    for _ in 0..authors {
        b.start_element("author");
        field(b, "name", 16);
        if rng.random_bool(0.5) {
            field(b, "affiliation", 30);
        }
        b.end_element();
    }
    field(b, "dateline", 10);
    if rng.random_bool(0.6) {
        let keywords = rng.random_range(1..=5usize);
        for _ in 0..keywords {
            field(b, "keyword", 10);
        }
    }
    b.end_element();

    b.start_element("body");
    let sections = rng.random_range(1..=4usize);
    for _ in 0..sections {
        section(b, rng, config, 1);
    }
    b.end_element();

    if rng.random_bool(0.4) {
        b.start_element("epilog");
        let refs = rng.random_range(1..=6usize);
        for _ in 0..refs {
            field(b, "reference", 40);
        }
        b.end_element();
    }
    b.end_element();
}

fn section(b: &mut DocumentBuilder, rng: &mut StdRng, config: &XbenchConfig, depth: usize) {
    b.start_element("section");
    field(b, "heading", 25);
    let paragraphs = rng.random_range(1..=4usize);
    for _ in 0..paragraphs {
        field(b, "p", 120);
    }
    if depth < config.max_section_depth && rng.random_bool(0.35) {
        let subsections = rng.random_range(1..=2usize);
        for _ in 0..subsections {
            section(b, rng, config, depth + 1);
        }
    }
    b.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::stats::DocumentStats;

    #[test]
    fn small_recursion_from_nested_sections() {
        let doc = generate(&XbenchConfig {
            articles: 150,
            max_section_depth: 3,
            seed: 4,
        });
        let stats = DocumentStats::compute(&doc);
        assert!(stats.max_recursion_level >= 1);
        assert!(stats.max_recursion_level <= 3);
        assert!(stats.element_count > 1_500);
    }

    #[test]
    fn deterministic() {
        let a = generate(&XbenchConfig {
            articles: 30,
            max_section_depth: 3,
            seed: 8,
        });
        let b = generate(&XbenchConfig {
            articles: 30,
            max_section_depth: 3,
            seed: 8,
        });
        assert!(a.structurally_equal(&b));
    }
}
