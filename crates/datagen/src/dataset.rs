//! The dataset catalogue used by the experiments.
//!
//! Each variant corresponds to one of the datasets of Table 2 of the
//! paper (plus the additional families mentioned in Section 6.1), mapped
//! to a synthetic generator and a default scale chosen so the whole
//! experiment suite runs in minutes on a laptop while preserving the
//! relative size ordering of the originals (XMark100 ≈ 10 × XMark10,
//! Treebank ≈ 20 × Treebank.05, and so on).

use crate::{dblp, swissprot, tpch, treebank, xbench, xmark};
use xmlkit::tree::Document;

/// The datasets of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// DBLP bibliography: simple, no recursion (169 MB in the paper).
    Dblp,
    /// XMark auction site at the 10 MB scale: complex, small recursion.
    XMark10,
    /// XMark auction site at the 100 MB scale.
    XMark100,
    /// SwissProt protein database: simple, no recursion.
    SwissProt,
    /// TPC-H exported as XML: simple, no recursion.
    Tpch,
    /// XBench TC/MD: complex, small recursion.
    XBench,
    /// 5% sample of Treebank: complex, high recursion.
    TreebankSmall,
    /// Full Treebank: complex, high recursion.
    Treebank,
}

impl Dataset {
    /// Every dataset in the catalogue.
    pub fn all() -> &'static [Dataset] {
        &[
            Dataset::Dblp,
            Dataset::XMark10,
            Dataset::XMark100,
            Dataset::SwissProt,
            Dataset::Tpch,
            Dataset::XBench,
            Dataset::TreebankSmall,
            Dataset::Treebank,
        ]
    }

    /// The datasets reported in Table 2 of the paper.
    pub fn table2() -> &'static [Dataset] {
        &[
            Dataset::Dblp,
            Dataset::XMark10,
            Dataset::XMark100,
            Dataset::TreebankSmall,
            Dataset::Treebank,
        ]
    }

    /// The datasets reported in Table 3 of the paper.
    pub fn table3() -> &'static [Dataset] {
        &[
            Dataset::Dblp,
            Dataset::XMark10,
            Dataset::XMark100,
            Dataset::TreebankSmall,
        ]
    }

    /// The name the paper uses for this dataset.
    pub fn paper_name(&self) -> &'static str {
        match self {
            Dataset::Dblp => "DBLP",
            Dataset::XMark10 => "XMark10",
            Dataset::XMark100 => "XMark100",
            Dataset::SwissProt => "SwissProt",
            Dataset::Tpch => "TPC-H",
            Dataset::XBench => "XBench TC/MD",
            Dataset::TreebankSmall => "Treebank.05",
            Dataset::Treebank => "Treebank",
        }
    }

    /// The paper's own category for the dataset.
    pub fn category(&self) -> &'static str {
        match self {
            Dataset::Dblp | Dataset::SwissProt | Dataset::Tpch => "simple, no recursion",
            Dataset::XMark10 | Dataset::XMark100 | Dataset::XBench => {
                "complex, small degree of recursion"
            }
            Dataset::TreebankSmall | Dataset::Treebank => "complex, high degree of recursion",
        }
    }

    /// `true` for the Treebank-class datasets, which need the recursive
    /// estimator configuration (higher cardinality threshold, lower
    /// backward-selectivity threshold).
    pub fn is_highly_recursive(&self) -> bool {
        matches!(self, Dataset::TreebankSmall | Dataset::Treebank)
    }

    /// Generates the dataset at its default scale.
    pub fn generate(&self) -> Document {
        self.generate_scaled(1.0)
    }

    /// Generates the dataset with sizes multiplied by `scale` (clamped so
    /// at least a handful of records are produced). `scale = 1.0` is the
    /// default experiment size; smaller values are useful in unit tests.
    pub fn generate_scaled(&self, scale: f64) -> Document {
        let scaled = |n: usize| ((n as f64 * scale).round() as usize).max(4);
        match self {
            Dataset::Dblp => dblp::generate(&dblp::DblpConfig {
                records: scaled(12_000),
                ..Default::default()
            }),
            Dataset::XMark10 => xmark::generate(&xmark::XmarkConfig {
                items: scaled(700),
                ..Default::default()
            }),
            Dataset::XMark100 => xmark::generate(&xmark::XmarkConfig {
                items: scaled(7_000),
                seed: 0x0A_7C + 1,
                ..Default::default()
            }),
            Dataset::SwissProt => swissprot::generate(&swissprot::SwissProtConfig {
                entries: scaled(3_000),
                ..Default::default()
            }),
            Dataset::Tpch => tpch::generate(&tpch::TpchConfig {
                orders: scaled(2_500),
                ..Default::default()
            }),
            Dataset::XBench => xbench::generate(&xbench::XbenchConfig {
                articles: scaled(1_200),
                ..Default::default()
            }),
            Dataset::TreebankSmall => treebank::generate(&treebank::TreebankConfig {
                sentences: scaled(350),
                ..Default::default()
            }),
            Dataset::Treebank => treebank::generate(&treebank::TreebankConfig {
                sentences: scaled(7_000),
                seed: 0x7EEB + 1,
                ..Default::default()
            }),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::stats::DocumentStats;

    #[test]
    fn catalogue_lists_are_consistent() {
        assert_eq!(Dataset::all().len(), 8);
        assert_eq!(Dataset::table2().len(), 5);
        assert_eq!(Dataset::table3().len(), 4);
        for d in Dataset::table2() {
            assert!(Dataset::all().contains(d));
        }
    }

    #[test]
    fn paper_names_and_categories() {
        assert_eq!(Dataset::Dblp.paper_name(), "DBLP");
        assert_eq!(Dataset::TreebankSmall.paper_name(), "Treebank.05");
        assert_eq!(Dataset::Dblp.category(), "simple, no recursion");
        assert!(Dataset::Treebank.is_highly_recursive());
        assert!(!Dataset::XMark10.is_highly_recursive());
        assert_eq!(Dataset::XMark10.to_string(), "XMark10");
    }

    #[test]
    fn scaled_generation_respects_categories() {
        // Use tiny scales to keep the test fast.
        let dblp = Dataset::Dblp.generate_scaled(0.02);
        assert_eq!(DocumentStats::compute(&dblp).max_recursion_level, 0);
        let treebank = Dataset::TreebankSmall.generate_scaled(0.2);
        assert!(DocumentStats::compute(&treebank).max_recursion_level >= 3);
        let xmark = Dataset::XMark10.generate_scaled(0.1);
        let r = DocumentStats::compute(&xmark).max_recursion_level;
        assert!((1..=2).contains(&r));
    }

    #[test]
    fn xmark100_is_larger_than_xmark10() {
        let small = Dataset::XMark10.generate_scaled(0.05);
        let large = Dataset::XMark100.generate_scaled(0.05);
        assert!(large.element_count() > 5 * small.element_count());
    }
}
