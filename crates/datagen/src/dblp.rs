//! A DBLP-like bibliography document.
//!
//! DBLP is the canonical "simple, non-recursive" dataset of the paper's
//! taxonomy: a flat root with millions of publication records, each a
//! shallow subtree of bibliographic fields. The generator reproduces the
//! traits that matter for cardinality estimation:
//!
//! * a handful of record kinds (`article`, `inproceedings`, `proceedings`,
//!   `phdthesis`, `www`) with very different frequencies,
//! * per-kind field sets with optional fields of varying selectivity,
//! * the sibling correlation the paper calls out explicitly: `article`
//!   records that have a `pages` field almost always also have a
//!   `publisher`/`journal`, which breaks the kernel's sibling
//!   independence assumption (Section 6.3 discusses
//!   `/dblp/article[pages]/publisher`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlkit::tree::{Document, DocumentBuilder};

/// Configuration for the DBLP generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of publication records.
    pub records: usize,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            records: 12_000,
            seed: 0xD8_1F,
        }
    }
}

/// Generates a DBLP-like document.
pub fn generate(config: &DblpConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = DocumentBuilder::new();
    b.start_element("dblp");
    for _ in 0..config.records {
        let kind = rng.random_range(0..100u32);
        match kind {
            0..=54 => article(&mut b, &mut rng),
            55..=84 => inproceedings(&mut b, &mut rng),
            85..=92 => proceedings(&mut b, &mut rng),
            93..=96 => phdthesis(&mut b, &mut rng),
            _ => www(&mut b, &mut rng),
        }
    }
    b.end_element();
    b.finish().expect("generator produces balanced documents")
}

fn field(b: &mut DocumentBuilder, name: &str, text: usize) {
    b.start_element(name);
    b.text_len(text);
    b.end_element();
}

fn authors(b: &mut DocumentBuilder, rng: &mut StdRng, max: usize) {
    let n = rng.random_range(1..=max);
    for _ in 0..n {
        field(b, "author", 14);
    }
}

fn article(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.start_element("article");
    authors(b, rng, 5);
    field(b, "title", 60);
    field(b, "year", 4);
    // The pages/journal/publisher correlation: records with pages almost
    // always carry the venue fields too.
    let has_pages = rng.random_bool(0.55);
    if has_pages {
        field(b, "pages", 9);
        field(b, "journal", 30);
        if rng.random_bool(0.9) {
            field(b, "publisher", 20);
        }
        if rng.random_bool(0.7) {
            field(b, "volume", 3);
        }
    } else {
        // Electronic-only records: mostly just a URL.
        if rng.random_bool(0.05) {
            field(b, "publisher", 20);
        }
        if rng.random_bool(0.6) {
            field(b, "ee", 40);
        }
    }
    if rng.random_bool(0.5) {
        field(b, "url", 35);
    }
    // Rare fields: their backward selectivity is below the paper's
    // BSEL_THRESHOLD of 0.1, so the HET builder enumerates branching
    // paths around them.
    if rng.random_bool(0.06) {
        field(b, "note", 25);
    }
    if rng.random_bool(0.04) {
        field(b, "cdrom", 15);
    }
    citations(b, rng, 12);
    b.end_element();
}

fn inproceedings(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.start_element("inproceedings");
    authors(b, rng, 6);
    field(b, "title", 65);
    field(b, "booktitle", 25);
    field(b, "year", 4);
    if rng.random_bool(0.85) {
        field(b, "pages", 9);
    }
    if rng.random_bool(0.55) {
        field(b, "ee", 40);
    }
    if rng.random_bool(0.4) {
        field(b, "crossref", 20);
    }
    if rng.random_bool(0.05) {
        field(b, "cdrom", 15);
    }
    citations(b, rng, 8);
    b.end_element();
}

/// Citation lists: about a third of the records carry a `cite` list of
/// widely varying length, which is what gives real DBLP its structural
/// variety (and makes count-stable partitions large).
fn citations(b: &mut DocumentBuilder, rng: &mut StdRng, max: usize) {
    if rng.random_bool(0.35) {
        let n = rng.random_range(1..=max);
        for _ in 0..n {
            field(b, "cite", 10);
        }
    }
}

fn proceedings(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.start_element("proceedings");
    let editors = rng.random_range(1..=3usize);
    for _ in 0..editors {
        field(b, "editor", 14);
    }
    field(b, "title", 70);
    field(b, "booktitle", 25);
    field(b, "year", 4);
    field(b, "publisher", 20);
    if rng.random_bool(0.8) {
        field(b, "isbn", 13);
    }
    if rng.random_bool(0.6) {
        field(b, "series", 25);
    }
    b.end_element();
}

fn phdthesis(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.start_element("phdthesis");
    field(b, "author", 14);
    field(b, "title", 70);
    field(b, "year", 4);
    field(b, "school", 30);
    if rng.random_bool(0.3) {
        field(b, "publisher", 20);
    }
    b.end_element();
}

fn www(b: &mut DocumentBuilder, rng: &mut StdRng) {
    b.start_element("www");
    authors(b, rng, 3);
    field(b, "title", 20);
    field(b, "url", 40);
    if rng.random_bool(0.2) {
        field(b, "note", 25);
    }
    b.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::stats::DocumentStats;

    fn small() -> Document {
        generate(&DblpConfig {
            records: 500,
            seed: 7,
        })
    }

    #[test]
    fn is_non_recursive_and_shallow() {
        let doc = small();
        let stats = DocumentStats::compute(&doc);
        assert_eq!(stats.max_recursion_level, 0);
        assert_eq!(stats.max_depth, 3);
        assert!(stats.element_count > 2_000);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(&DblpConfig {
            records: 200,
            seed: 1,
        });
        let b = generate(&DblpConfig {
            records: 200,
            seed: 1,
        });
        let c = generate(&DblpConfig {
            records: 200,
            seed: 2,
        });
        assert!(a.structurally_equal(&b));
        assert!(!a.structurally_equal(&c));
    }

    #[test]
    fn pages_publisher_correlation_exists() {
        // Articles with pages should mostly have a publisher; articles
        // without pages mostly should not.
        let doc = small();
        let storage = nokstore::NokStorage::from_document(&doc);
        let eval = nokstore::Evaluator::new(&storage);
        let with_pages = eval.count(&xpathkit::parse("/dblp/article[pages]").unwrap()) as f64;
        let with_both =
            eval.count(&xpathkit::parse("/dblp/article[pages][publisher]").unwrap()) as f64;
        let articles = eval.count(&xpathkit::parse("/dblp/article").unwrap()) as f64;
        let with_publisher =
            eval.count(&xpathkit::parse("/dblp/article[publisher]").unwrap()) as f64;
        assert!(with_pages > 0.0 && articles > 0.0);
        // P(publisher | pages) must be much larger than P(publisher).
        assert!(with_both / with_pages > 1.5 * (with_publisher / articles));
    }

    #[test]
    fn record_kinds_present() {
        let doc = small();
        let names = doc.names();
        for kind in [
            "article",
            "inproceedings",
            "proceedings",
            "phdthesis",
            "www",
        ] {
            assert!(names.lookup(kind).is_some(), "missing record kind {kind}");
        }
    }
}
