//! A TPC-H-like relational-data-in-XML document.
//!
//! The paper's TPC-H dataset is the relational benchmark exported as XML:
//! perfectly regular, flat records — the easiest possible case for any
//! synopsis, included to anchor the "simple" end of the spectrum.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlkit::tree::{Document, DocumentBuilder};

/// Configuration for the TPC-H generator.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Number of `orders` rows; `lineitem` and `customer` scale from it.
    pub orders: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            orders: 2_500,
            seed: 0x79C4,
        }
    }
}

/// Generates a TPC-H-like document.
pub fn generate(config: &TpchConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = DocumentBuilder::new();
    b.start_element("tpch");

    b.start_element("customers");
    for _ in 0..config.orders / 4 {
        b.start_element("customer");
        for (name, len) in [
            ("custkey", 6),
            ("name", 18),
            ("address", 25),
            ("nationkey", 2),
            ("phone", 15),
            ("acctbal", 8),
            ("mktsegment", 10),
        ] {
            field(&mut b, name, len);
        }
        b.end_element();
    }
    b.end_element();

    b.start_element("orders");
    for _ in 0..config.orders {
        b.start_element("order");
        for (name, len) in [
            ("orderkey", 8),
            ("custkey", 6),
            ("orderstatus", 1),
            ("totalprice", 9),
            ("orderdate", 10),
            ("orderpriority", 8),
        ] {
            field(&mut b, name, len);
        }
        // Line items nested inside their order (the common XML export).
        let lines = rng.random_range(1..=7usize);
        for _ in 0..lines {
            b.start_element("lineitem");
            for (name, len) in [
                ("partkey", 7),
                ("suppkey", 6),
                ("quantity", 2),
                ("extendedprice", 9),
                ("discount", 4),
                ("tax", 4),
                ("shipdate", 10),
            ] {
                field(&mut b, name, len);
            }
            b.end_element();
        }
        b.end_element();
    }
    b.end_element();

    b.end_element();
    b.finish().expect("generator produces balanced documents")
}

fn field(b: &mut DocumentBuilder, name: &str, text: usize) {
    b.start_element(name);
    b.text_len(text);
    b.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::stats::DocumentStats;

    #[test]
    fn flat_and_regular() {
        let doc = generate(&TpchConfig {
            orders: 100,
            seed: 1,
        });
        let stats = DocumentStats::compute(&doc);
        assert_eq!(stats.max_recursion_level, 0);
        assert_eq!(stats.max_depth, 5);
        assert!(stats.element_count > 1_000);
    }

    #[test]
    fn deterministic() {
        let a = generate(&TpchConfig {
            orders: 40,
            seed: 6,
        });
        let b = generate(&TpchConfig {
            orders: 40,
            seed: 6,
        });
        assert!(a.structurally_equal(&b));
    }
}
