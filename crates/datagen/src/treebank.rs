//! A Treebank-like deeply recursive document.
//!
//! The Penn Treebank XML encoding marks up parsed English sentences with
//! nested grammatical categories (`S`, `NP`, `VP`, `PP`, `SBAR`, ...). It
//! is the paper's "complex with a high degree of recursion" dataset: the
//! same non-terminals nest inside each other many levels deep (average
//! node recursion level ≈ 1.3, maximum 8–10), which is precisely the
//! regime where recursion-oblivious synopses collapse. The generator
//! produces random parse-tree shaped documents with a controlled maximum
//! recursion depth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlkit::tree::{Document, DocumentBuilder};

/// Configuration for the Treebank generator.
#[derive(Debug, Clone)]
pub struct TreebankConfig {
    /// Number of sentences.
    pub sentences: usize,
    /// Maximum nesting depth of the grammar expansion (controls the
    /// document recursion level, which ends up a little below this).
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TreebankConfig {
    fn default() -> Self {
        TreebankConfig {
            sentences: 800,
            max_depth: 12,
            seed: 0x7EEB,
        }
    }
}

/// Non-terminal grammatical categories (these recurse).
const NON_TERMINALS: [&str; 8] = ["S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP", "WHNP"];
/// Terminal part-of-speech tags (leaves).
const TERMINALS: [&str; 10] = [
    "NN", "NNS", "NNP", "VB", "VBD", "DT", "IN", "JJ", "RB", "PRP",
];

/// Generates a Treebank-like document.
pub fn generate(config: &TreebankConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = DocumentBuilder::new();
    b.start_element("FILE");
    for _ in 0..config.sentences {
        b.start_element("EMPTY");
        expand(&mut b, &mut rng, "S", 1, config.max_depth);
        b.end_element();
    }
    b.end_element();
    b.finish().expect("generator produces balanced documents")
}

/// Recursively expands a non-terminal.
fn expand(b: &mut DocumentBuilder, rng: &mut StdRng, symbol: &str, depth: usize, max_depth: usize) {
    b.start_element(symbol);
    if depth >= max_depth {
        terminal(b, rng);
        b.end_element();
        return;
    }
    let children = rng.random_range(1..=3usize);
    for _ in 0..children {
        // Deeper levels become increasingly likely to terminate, producing
        // the long-tailed recursion-depth distribution Treebank shows.
        let continue_probability = 0.62_f64.powf(depth as f64 / 3.0);
        if rng.random_bool(continue_probability) {
            let next = NON_TERMINALS[rng.random_range(0..NON_TERMINALS.len())];
            expand(b, rng, next, depth + 1, max_depth);
        } else {
            terminal(b, rng);
        }
    }
    b.end_element();
}

fn terminal(b: &mut DocumentBuilder, rng: &mut StdRng) {
    let tag = TERMINALS[rng.random_range(0..TERMINALS.len())];
    b.start_element(tag);
    b.text_len(rng.random_range(2..=12usize));
    b.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::stats::DocumentStats;

    fn small() -> Document {
        generate(&TreebankConfig {
            sentences: 150,
            max_depth: 12,
            seed: 3,
        })
    }

    #[test]
    fn is_highly_recursive() {
        let doc = small();
        let stats = DocumentStats::compute(&doc);
        assert!(
            stats.max_recursion_level >= 4,
            "max recursion level {} too small",
            stats.max_recursion_level
        );
        assert!(
            stats.avg_recursion_level > 0.4,
            "avg recursion level {} too small",
            stats.avg_recursion_level
        );
        assert!(stats.max_depth >= 8);
    }

    #[test]
    fn recursive_queries_have_matches() {
        let doc = small();
        let storage = nokstore::NokStorage::from_document(&doc);
        let eval = nokstore::Evaluator::new(&storage);
        assert!(eval.count(&xpathkit::parse("//NP//NP").unwrap()) > 0);
        assert!(eval.count(&xpathkit::parse("//S//VP//NP").unwrap()) > 0);
    }

    #[test]
    fn deterministic() {
        let a = generate(&TreebankConfig {
            sentences: 50,
            max_depth: 10,
            seed: 9,
        });
        let b = generate(&TreebankConfig {
            sentences: 50,
            max_depth: 10,
            seed: 9,
        });
        assert!(a.structurally_equal(&b));
    }

    #[test]
    fn sentence_count_scales_size() {
        let a = generate(&TreebankConfig {
            sentences: 50,
            max_depth: 10,
            seed: 1,
        });
        let b = generate(&TreebankConfig {
            sentences: 500,
            max_depth: 10,
            seed: 1,
        });
        assert!(b.element_count() > 5 * a.element_count());
    }
}
