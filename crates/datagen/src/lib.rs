//! # datagen — synthetic datasets and query workloads for the experiments
//!
//! The paper evaluates XSEED on real and benchmark datasets (DBLP,
//! XMark 10/100 MB, SwissProt, TPC-H, NASA, XBench TC/MD, Treebank).
//! Those files are not redistributable here, so this crate generates
//! **synthetic equivalents**: deterministic, seeded documents that
//! reproduce each dataset's *structural shape* — element vocabulary,
//! fan-out distributions, optional/repeating elements, and (crucially for
//! XSEED) the recursion profile. Structural cardinality estimation depends
//! only on that shape, so the substitution exercises the same code paths;
//! see DESIGN.md for the substitution rationale.
//!
//! * [`dataset`] — the catalogue of datasets with paper-aligned names and
//!   default scales ([`dataset::Dataset`]).
//! * [`dblp`], [`xmark`], [`treebank`], [`swissprot`], [`tpch`],
//!   [`xbench`] — one generator per dataset family.
//! * [`workload`] — SP/BP/CP query workload generation (Section 6.1):
//!   all simple paths plus randomly generated branching and complex
//!   queries, with configurable predicates-per-step (1BP/2BP/3BP).
//!
//! ```
//! use datagen::dataset::Dataset;
//! use datagen::workload::{WorkloadGenerator, WorkloadSpec};
//!
//! let doc = Dataset::XMark10.generate_scaled(0.05);
//! assert!(doc.element_count() > 100);
//! let workload = WorkloadGenerator::new(&doc, 42).generate(&WorkloadSpec::small());
//! assert!(!workload.branching.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod dblp;
pub mod swissprot;
pub mod tpch;
pub mod treebank;
pub mod workload;
pub mod xbench;
pub mod xmark;

pub use dataset::Dataset;
pub use workload::{Workload, WorkloadGenerator, WorkloadSpec};
