//! Table 2 bench: synopsis construction cost per dataset.
//!
//! Regenerates Table 2 (printed once at startup) and then benchmarks the
//! three construction paths the table compares — XSEED kernel, XSEED 1BP
//! HET, and TreeSketch — on a reduced dataset scale so the bench finishes
//! quickly. The paper's finding to look for: the kernel is built in a
//! negligible fraction of the time the baselines need, and the HET
//! dominates XSEED's construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{Dataset, WorkloadSpec};
use std::hint::black_box;
use treesketch::TreeSketch;
use xseed_bench::experiments::table2;
use xseed_bench::harness::PreparedDataset;
use xseed_core::{HetBuilder, KernelBuilder, XseedConfig};

const BENCH_SCALE: f64 = 0.1;

fn construction_benches(c: &mut Criterion) {
    // Print the reproduced Table 2 once, at a scale large enough to be
    // representative but small enough to keep the bench fast.
    let rows = table2::run(BENCH_SCALE, 50 * 1024);
    println!("\n{}", table2::render(&rows));

    let spec = WorkloadSpec {
        branching: 0,
        complex: 0,
        max_simple: 0,
        predicates_per_step: 1,
    };
    let mut group = c.benchmark_group("table2_construction");
    group.sample_size(10);
    for &dataset in Dataset::table2() {
        let prepared = PreparedDataset::prepare(dataset, BENCH_SCALE, &spec, 42);
        let config = prepared.xseed_config();

        group.bench_with_input(
            BenchmarkId::new("xseed_kernel", dataset.paper_name()),
            &prepared,
            |b, p| b.iter(|| black_box(KernelBuilder::from_document(&p.doc))),
        );
        group.bench_with_input(
            BenchmarkId::new("xseed_1bp_het", dataset.paper_name()),
            &prepared,
            |b, p| {
                let kernel = KernelBuilder::from_document(&p.doc);
                b.iter(|| {
                    let builder = HetBuilder::new(&kernel, &p.path_tree, &p.storage, &config);
                    black_box(builder.build().0)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("treesketch", dataset.paper_name()),
            &prepared,
            |b, p| b.iter(|| black_box(TreeSketch::build(&p.doc, Some(50 * 1024)))),
        );
    }
    group.finish();

    // Also benchmark kernel construction straight from XML text (the SAX
    // path the paper actually uses), on one representative dataset.
    let doc = Dataset::XMark10.generate_scaled(BENCH_SCALE);
    let xml = xmlkit::writer::to_string(&doc);
    let _ = XseedConfig::default();
    c.bench_function("table2_construction/kernel_from_sax/XMark10", |b| {
        b.iter(|| black_box(KernelBuilder::from_xml_str(&xml).unwrap()))
    });
}

criterion_group!(benches, construction_benches);
criterion_main!(benches);
