//! Estimate-throughput bench: one-shot `estimate()` before/after the
//! streaming rewrite, plus batched estimator reuse.
//!
//! The seed's `XseedSynopsis::estimate()` regenerated the full expanded
//! path tree arena for every call; the streaming path matches the query
//! directly against a cached frozen-kernel snapshot. This bench measures
//! estimates/sec for both behaviors on an XMark workload and a recursive
//! Treebank-style workload, and records the results (and the one-shot
//! speedup) in `BENCH_estimate_throughput.json` at the workspace root.
//!
//! Set `ESTIMATE_SMOKE=1` to run a single pass per measurement and skip
//! the JSON write (the CI smoke mode keeping every measured path —
//! regenerating, streaming, batched, memoized — compiling and exercised).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{Dataset, WorkloadGenerator, WorkloadSpec};
use std::time::Instant;
use xpathkit::ast::PathExpr;
use xseed_bench::report::json_throughput_entry;
use xseed_core::{ExpandedPathTree, Matcher, XseedConfig, XseedSynopsis};

struct Scenario {
    name: &'static str,
    synopsis: XseedSynopsis,
    queries: Vec<PathExpr>,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (name, dataset, scale, recursive) in [
        ("xmark", Dataset::XMark10, 0.25, false),
        ("treebank", Dataset::TreebankSmall, 0.1, true),
    ] {
        let doc = dataset.generate_scaled(scale);
        let config = if recursive {
            XseedConfig::recursive_for_size(doc.element_count())
        } else {
            XseedConfig::default()
        };
        let synopsis = XseedSynopsis::build(&doc, config);
        let workload = WorkloadGenerator::new(&doc, 0x5EED).generate(&WorkloadSpec::small());
        let queries: Vec<PathExpr> = workload.all().cloned().collect();
        assert!(!queries.is_empty());
        out.push(Scenario {
            name,
            synopsis,
            queries,
        });
    }
    out
}

/// The seed's one-shot behavior: regenerate the EPT arena per query.
fn estimate_regenerating(synopsis: &XseedSynopsis, query: &PathExpr) -> f64 {
    let ept = ExpandedPathTree::generate(synopsis.kernel(), synopsis.config(), synopsis.het());
    Matcher::new(synopsis.kernel(), &ept, synopsis.het()).estimate(query)
}

/// `true` when the CI smoke mode is active: one pass per measurement,
/// no criterion sampling, no JSON write.
fn smoke() -> bool {
    std::env::var_os("ESTIMATE_SMOKE").is_some()
}

/// Times `f` run over every query, returning ns per estimate. In smoke
/// mode a single timed pass follows the warm-up instead of the ~200 ms
/// sampling loop.
fn time_per_estimate(queries: &[PathExpr], mut f: impl FnMut(&PathExpr) -> f64) -> f64 {
    // Warm up once (builds caches), then time enough rounds to cover at
    // least ~200 ms.
    let mut sink = 0.0;
    for q in queries {
        sink += f(q);
    }
    let single_round = smoke();
    let mut rounds = 0u32;
    let start = Instant::now();
    loop {
        for q in queries {
            sink += f(q);
        }
        rounds += 1;
        if single_round || (start.elapsed().as_millis() >= 200 && rounds >= 2) {
            break;
        }
    }
    std::hint::black_box(sink);
    start.elapsed().as_nanos() as f64 / (rounds as f64 * queries.len() as f64)
}

#[allow(clippy::type_complexity)]
fn write_baseline(results: &[(String, usize, f64, f64, f64, f64, f64)]) {
    let mut body = String::from("{\n  \"bench\": \"estimate_throughput\",\n  \"datasets\": {\n");
    for (i, (name, queries, regen, streaming, batched_mat, batched_stream, batched_memo)) in
        results.iter().enumerate()
    {
        body.push_str(&format!(
            "    \"{name}\": {{\n      \"queries\": {queries},\n      \
             \"one_shot_regenerate_per_query\": {},\n      \
             \"one_shot_streaming\": {},\n      \
             \"batched_materialized\": {},\n      \
             \"batched_streaming\": {},\n      \
             \"batched_streaming_memo\": {},\n      \
             \"speedup_one_shot\": {:.2},\n      \
             \"memo_vs_materialized\": {:.2}\n    }}{}\n",
            json_throughput_entry(*regen),
            json_throughput_entry(*streaming),
            json_throughput_entry(*batched_mat),
            json_throughput_entry(*batched_stream),
            json_throughput_entry(*batched_memo),
            regen / streaming,
            batched_mat / batched_memo,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    body.push_str("  }\n}\n");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_estimate_throughput.json"
    );
    std::fs::write(path, body).expect("write BENCH_estimate_throughput.json");
    println!("wrote {path}");
}

fn throughput_benches(c: &mut Criterion) {
    let scenarios = scenarios();
    let mut results = Vec::new();

    // The criterion sampling adds nothing in smoke mode — the measured
    // passes below already exercise every code path once.
    if !smoke() {
        let mut group = c.benchmark_group("estimate_throughput");
        group.sample_size(10);
        for scenario in &scenarios {
            let s = &scenario.synopsis;
            let qs = &scenario.queries;
            group.bench_with_input(
                BenchmarkId::new("one_shot_regenerate", scenario.name),
                &(),
                |b, _| b.iter(|| estimate_regenerating(s, &qs[0])),
            );
            group.bench_with_input(
                BenchmarkId::new("one_shot_streaming", scenario.name),
                &(),
                |b, _| b.iter(|| s.estimate(&qs[0])),
            );
        }
        group.finish();
    }

    for scenario in &scenarios {
        let s = &scenario.synopsis;
        let qs = &scenario.queries;
        let regen = time_per_estimate(qs, |q| estimate_regenerating(s, q));
        let streaming = time_per_estimate(qs, |q| s.estimate(q));
        let batched_mat = {
            let estimator = s.estimator();
            time_per_estimate(qs, |q| estimator.estimate(q))
        };
        let batched_stream = {
            let mut matcher = s.streaming_matcher();
            time_per_estimate(qs, |q| matcher.estimate(q))
        };
        let batched_memo = {
            let mut matcher = s.streaming_matcher();
            matcher.enable_batch_memo();
            time_per_estimate(qs, |q| matcher.estimate(q))
        };
        println!(
            "{}: {} queries | regen {:.0} ns | streaming {:.0} ns ({:.1}x) | \
             batched materialized {:.0} ns | batched streaming {:.0} ns | \
             batched streaming+memo {:.0} ns ({:.2}x vs materialized)",
            scenario.name,
            qs.len(),
            regen,
            streaming,
            regen / streaming,
            batched_mat,
            batched_stream,
            batched_memo,
            batched_mat / batched_memo,
        );
        results.push((
            scenario.name.to_string(),
            qs.len(),
            regen,
            streaming,
            batched_mat,
            batched_stream,
            batched_memo,
        ));
    }
    if smoke() {
        println!("ESTIMATE_SMOKE set: skipping BENCH_estimate_throughput.json write");
    } else {
        write_baseline(&results);
    }
}

criterion_group!(benches, throughput_benches);
criterion_main!(benches);
