//! Offline q-error workload matrix: point estimates vs guaranteed upper
//! bounds on the six accuracy workloads.
//!
//! For every scenario of the accuracy regression suite (same datasets,
//! scales, seed, and `WorkloadSpec::small()` as `tests/accuracy.rs`, so
//! the graded queries are exactly the golden-fixture queries) this bench
//! runs both estimation modes — the point estimate and
//! [`xseed_core::StreamingMatcher::estimate_bound`] — against the NoK
//! ground truth, grades each with
//! [`xseed_service::q_error_milli`] into a
//! [`xseed_service::HistogramSnapshot`], and reports the p50/p90/p99
//! milli-q percentiles per workload and mode. The histograms use the
//! same deterministic power-of-two bucket edges as the service's online
//! `METRICS qerr` tracking (PR 7), so offline matrix cells and online
//! gauge readings are directly comparable.
//!
//! Soundness is enforced, not just measured: any query whose bound falls
//! below the true cardinality (or below its own point estimate) panics
//! the bench. Results are written to `BENCH_qerr_matrix.json` at the
//! workspace root.
//!
//! Set `QERR_SMOKE=1` to grade only the first scenario and skip the JSON
//! write (the CI smoke mode keeping both estimation paths exercised).

use datagen::{Dataset, WorkloadGenerator, WorkloadSpec};
use nokstore::{Evaluator, NokStorage};
use xseed_core::{XseedConfig, XseedSynopsis};
use xseed_service::{format_milli_q, q_error_milli, HistogramSnapshot};

/// Workload seed — must match `tests/accuracy.rs` so the matrix grades
/// the same queries the committed goldens pin.
const SEED: u64 = 0xACC0;

struct Scenario {
    name: &'static str,
    dataset: Dataset,
    scale: f64,
    recursive: bool,
}

const SCENARIOS: [Scenario; 6] = [
    Scenario {
        name: "xmark",
        dataset: Dataset::XMark10,
        scale: 0.02,
        recursive: false,
    },
    Scenario {
        name: "dblp",
        dataset: Dataset::Dblp,
        scale: 0.01,
        recursive: false,
    },
    Scenario {
        name: "treebank",
        dataset: Dataset::TreebankSmall,
        scale: 0.02,
        recursive: true,
    },
    Scenario {
        name: "swissprot",
        dataset: Dataset::SwissProt,
        scale: 0.02,
        recursive: false,
    },
    Scenario {
        name: "tpch",
        dataset: Dataset::Tpch,
        scale: 0.02,
        recursive: false,
    },
    Scenario {
        name: "xbench",
        dataset: Dataset::XBench,
        scale: 0.02,
        recursive: true,
    },
];

/// One graded mode: the milli-q histogram plus the worst observed ratio.
#[derive(Default)]
struct ModeGrades {
    hist: HistogramSnapshot,
}

impl ModeGrades {
    fn grade(&mut self, estimated: f64, actual: u64) {
        self.hist.record(q_error_milli(estimated, actual));
    }

    fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.hist.percentile(0.5),
            self.hist.percentile(0.9),
            self.hist.percentile(0.99),
        )
    }
}

struct Row {
    name: &'static str,
    queries: usize,
    point: ModeGrades,
    bound: ModeGrades,
}

fn grade_scenario(scenario: &Scenario) -> Row {
    let doc = scenario.dataset.generate_scaled(scenario.scale);
    let config = if scenario.recursive {
        XseedConfig::recursive_for_size(doc.element_count())
    } else {
        XseedConfig::default()
    };
    let workload = WorkloadGenerator::new(&doc, SEED).generate(&WorkloadSpec::small());
    assert!(!workload.is_empty(), "{}: empty workload", scenario.name);
    let (synopsis, _) = XseedSynopsis::build_with_het(&doc, config);
    let storage = NokStorage::from_document(&doc);
    let eval = Evaluator::new(&storage);

    let mut matcher = synopsis.streaming_matcher();
    let mut point = ModeGrades::default();
    let mut bound = ModeGrades::default();
    let mut queries = 0usize;
    for query in workload.all() {
        let actual = eval.count(query);
        let be = matcher.estimate_bound(query);
        // Soundness is the contract: a violated bound fails the bench
        // loudly rather than producing a quietly wrong matrix.
        assert!(
            be.bound + 1e-9 >= actual as f64,
            "{}: {query}: bound {} < true cardinality {actual}",
            scenario.name,
            be.bound,
        );
        assert!(
            be.bound + 1e-9 >= be.estimate,
            "{}: {query}: bound {} < point estimate {}",
            scenario.name,
            be.bound,
            be.estimate,
        );
        point.grade(be.estimate, actual);
        bound.grade(be.bound, actual);
        queries += 1;
    }
    Row {
        name: scenario.name,
        queries,
        point,
        bound,
    }
}

fn mode_json(grades: &ModeGrades) -> String {
    let (p50, p90, p99) = grades.percentiles();
    format!(
        "{{ \"qerr_p50\": {}, \"qerr_p90\": {}, \"qerr_p99\": {}, \"qerr_max\": {} }}",
        format_milli_q(p50),
        format_milli_q(p90),
        format_milli_q(p99),
        format_milli_q(grades.hist.max()),
    )
}

fn write_report(rows: &[Row]) {
    let mut body = String::from("{\n  \"bench\": \"qerr_matrix\",\n  \"workloads\": {\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    \"{}\": {{\n      \"queries\": {},\n      \
             \"point\": {},\n      \
             \"bound\": {},\n      \
             \"bound_violations\": 0\n    }}{}\n",
            row.name,
            row.queries,
            mode_json(&row.point),
            mode_json(&row.bound),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_qerr_matrix.json");
    std::fs::write(path, body).expect("write BENCH_qerr_matrix.json");
    println!("wrote {path}");
}

fn main() {
    let smoke = std::env::var_os("QERR_SMOKE").is_some();
    let scenarios: &[Scenario] = if smoke { &SCENARIOS[..1] } else { &SCENARIOS };
    let mut rows = Vec::new();

    for scenario in scenarios {
        let row = grade_scenario(scenario);
        let (pp50, pp90, pp99) = row.point.percentiles();
        let (bp50, bp90, bp99) = row.bound.percentiles();
        println!(
            "qerr_matrix/{name}: queries={n} \
             point p50={pp50} p90={pp90} p99={pp99} \
             bound p50={bp50} p90={bp90} p99={bp99} (milli-q)",
            name = row.name,
            n = row.queries,
        );
        rows.push(row);
    }

    if smoke {
        println!("QERR_SMOKE set: skipping BENCH_qerr_matrix.json write");
    } else {
        write_report(&rows);
    }
}
