//! Concurrent estimation-service throughput.
//!
//! Measures aggregate estimates/sec of the [`xseed_service::Service`]
//! pipeline (catalog snapshot → sharded plan cache → per-worker queues →
//! shared-frontier-memo batch executor) at 1/2/4/8 workers over SP/BP/CP
//! workloads, against the pre-service single-threaded client baseline
//! (parse the text, call `XseedSynopsis::estimate` — the PR 1 usage
//! pattern). Results land in `BENCH_concurrent_throughput.json` at the
//! workspace root.
//!
//! Worker scaling is bounded by the cores the container actually grants
//! (`cpus_available` in the JSON): the snapshot sharing, queues, and
//! stealing are exercised at every worker count regardless, but wall-clock
//! speedup from threads alone cannot exceed the core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{Dataset, WorkloadGenerator, WorkloadSpec};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use xpathkit::QueryClass;
use xseed_bench::report::json_throughput_entry;
use xseed_core::{XseedConfig, XseedSynopsis};
use xseed_service::{Catalog, Service, ServiceConfig};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Scenario {
    name: &'static str,
    synopsis: XseedSynopsis,
    /// (workload label, query texts): per paper class plus the full mix.
    workloads: Vec<(&'static str, Vec<String>)>,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (name, dataset, scale, recursive, split_classes) in [
        ("xmark", Dataset::XMark10, 0.25, false, true),
        ("treebank", Dataset::TreebankSmall, 0.1, true, false),
    ] {
        let doc = dataset.generate_scaled(scale);
        let config = if recursive {
            XseedConfig::recursive_for_size(doc.element_count())
        } else {
            XseedConfig::default()
        };
        let synopsis = XseedSynopsis::build(&doc, config);
        let workload = WorkloadGenerator::new(&doc, 0x5EED).generate(&WorkloadSpec::small());
        let mut workloads: Vec<(&'static str, Vec<String>)> = Vec::new();
        if split_classes {
            for (label, class) in [
                ("SP", QueryClass::SimplePath),
                ("BP", QueryClass::BranchingPath),
                ("CP", QueryClass::ComplexPath),
            ] {
                let texts: Vec<String> = workload
                    .of_class(class)
                    .iter()
                    .map(|q| q.to_string())
                    .collect();
                assert!(!texts.is_empty(), "{name}: empty {label} workload");
                workloads.push((label, texts));
            }
        }
        workloads.push(("ALL", workload.all().map(|q| q.to_string()).collect()));
        out.push(Scenario {
            name,
            synopsis,
            workloads,
        });
    }
    out
}

/// Times `pass` (one full run over the workload, returning the number of
/// estimates produced) until it has run for ~250 ms, returning ns per
/// estimate. One untimed warm-up pass populates caches.
fn time_passes(mut pass: impl FnMut() -> usize) -> f64 {
    let mut estimates = pass();
    assert!(estimates > 0);
    estimates = 0;
    let start = Instant::now();
    let mut rounds = 0u32;
    loop {
        estimates += pass();
        rounds += 1;
        if start.elapsed().as_millis() >= 250 && rounds >= 2 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / estimates as f64
}

/// The pre-service client: parse each text and run a one-shot estimate.
fn naive_pass(synopsis: &XseedSynopsis, texts: &[String]) -> usize {
    let mut sink = 0.0;
    for text in texts {
        let expr = xpathkit::parse(text).expect("workload query parses");
        sink += synopsis.estimate(&expr);
    }
    std::hint::black_box(sink);
    texts.len()
}

fn service_pass(service: &Service, doc: &str, texts: &[String]) -> usize {
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
    let estimates = service.estimate_batch(doc, &refs).expect("batch estimate");
    std::hint::black_box(estimates.len());
    texts.len()
}

struct WorkloadResult {
    label: &'static str,
    queries: usize,
    baseline_ns: f64,
    /// Parallel to `WORKER_COUNTS`.
    worker_ns: Vec<f64>,
}

fn concurrent_benches(c: &mut Criterion) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scenarios = scenarios();
    let mut report = String::from("{\n  \"bench\": \"concurrent_throughput\",\n");
    let counts = WORKER_COUNTS
        .iter()
        .map(|w| w.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(report, "  \"cpus_available\": {cpus},\n  \"worker_counts\": [{counts}],\n  \"baseline\": \"single-threaded parse + one-shot XseedSynopsis::estimate per query (pre-service client)\",\n  \"note\": \"worker scaling is bounded by cpus_available; service wins over the baseline come from the plan cache, snapshot sharing, and the per-batch frontier memo\",\n  \"datasets\": {{\n");

    // Criterion-visible spot check: one-shot service estimate latency.
    {
        let mut group = c.benchmark_group("concurrent_throughput");
        group.sample_size(10);
        for scenario in &scenarios {
            let catalog = Arc::new(Catalog::new());
            catalog.insert(scenario.name, scenario.synopsis.clone());
            let service = Service::new(catalog, ServiceConfig::with_workers(2));
            let (_, texts) = scenario.workloads.last().expect("ALL workload");
            group.bench_with_input(
                BenchmarkId::new("service_estimate", scenario.name),
                &(),
                |b, _| b.iter(|| service.estimate(scenario.name, &texts[0]).unwrap()),
            );
        }
        group.finish();
    }

    for (si, scenario) in scenarios.iter().enumerate() {
        let mut results: Vec<WorkloadResult> = Vec::new();
        for (label, texts) in &scenario.workloads {
            let baseline_ns = time_passes(|| naive_pass(&scenario.synopsis, texts));
            let mut worker_ns = Vec::new();
            for &workers in &WORKER_COUNTS {
                let catalog = Arc::new(Catalog::new());
                catalog.insert(scenario.name, scenario.synopsis.clone());
                let service = Service::new(catalog, ServiceConfig::with_workers(workers));
                let ns = time_passes(|| service_pass(&service, scenario.name, texts));
                worker_ns.push(ns);
            }
            println!(
                "{}/{}: {} queries | naive 1-thread {:.0} ns | service {:?} ns for {:?} workers",
                scenario.name,
                label,
                texts.len(),
                baseline_ns,
                worker_ns.iter().map(|n| n.round()).collect::<Vec<_>>(),
                WORKER_COUNTS,
            );
            results.push(WorkloadResult {
                label,
                queries: texts.len(),
                baseline_ns,
                worker_ns,
            });
        }

        let all = results.last().expect("ALL workload result");
        let w1 = all.worker_ns[0];
        let w8 = all.worker_ns[WORKER_COUNTS.len() - 1];
        let _ = write!(
            report,
            "    \"{}\": {{\n      \"workloads\": {{\n",
            scenario.name
        );
        for (wi, w) in results.iter().enumerate() {
            let _ = write!(
                report,
                "        \"{}\": {{\n          \"queries\": {},\n          \
                 \"single_thread_baseline\": {},\n          \"service_workers\": {{",
                w.label,
                w.queries,
                json_throughput_entry(w.baseline_ns),
            );
            for (i, &workers) in WORKER_COUNTS.iter().enumerate() {
                let _ = write!(
                    report,
                    "\n            \"{}\": {}{}",
                    workers,
                    json_throughput_entry(w.worker_ns[i]),
                    if i + 1 == WORKER_COUNTS.len() {
                        ""
                    } else {
                        ","
                    }
                );
            }
            let _ = write!(
                report,
                "\n          }}\n        }}{}\n",
                if wi + 1 == results.len() { "" } else { "," }
            );
        }
        let _ = write!(
            report,
            "      }},\n      \"aggregate_speedup_8_workers_vs_baseline\": {:.2},\n      \
             \"aggregate_scaling_8_vs_1_workers\": {:.2}\n    }}{}\n",
            all.baseline_ns / w8,
            w1 / w8,
            if si + 1 == scenarios.len() { "" } else { "," }
        );
    }
    report.push_str("  }\n}\n");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_concurrent_throughput.json"
    );
    std::fs::write(path, &report).expect("write BENCH_concurrent_throughput.json");
    println!("wrote {path}");
}

criterion_group!(benches, concurrent_benches);
criterion_main!(benches);
