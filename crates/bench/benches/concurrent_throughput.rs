//! Concurrent estimation-service throughput.
//!
//! Measures aggregate estimates/sec of the [`xseed_service::Service`]
//! pipeline (catalog snapshot → sharded plan cache → per-worker queues →
//! shared-frontier-memo batch executor) at 1/2/4/8 workers over SP/BP/CP
//! workloads, against the pre-service single-threaded client baseline
//! (parse the text, call `XseedSynopsis::estimate` — the PR 1 usage
//! pattern). Also measures the per-snapshot **compiled-query cache**
//! (batched passes with `estimate_plan` vs compiling every estimate from
//! its expression) and the **overload** fast-fail path (shed-decision
//! latency and bound enforcement with the worker fenced). Results land in
//! `BENCH_concurrent_throughput.json` at the workspace root.
//!
//! Worker scaling is bounded by the cores the container actually grants
//! (`cpus_available` in the JSON): the snapshot sharing, queues, and
//! stealing are exercised at every worker count regardless, but wall-clock
//! speedup from threads alone cannot exceed the core count.
//!
//! Also compares **observability on vs off**: the same batched service
//! pass with the default config against one built
//! `with_observability(false)`, recorded as the `observability_off` rows
//! in the JSON. The recording path is one `Instant` pair plus one relaxed
//! `fetch_add` per stage, so the delta must sit within noise (the
//! acceptance bar is ≤2% — see docs/OPERATIONS.md, "Verifying the
//! off-cost").
//!
//! Set `CONCURRENT_SMOKE=1` to run a single pass per measurement and skip
//! the JSON write (the CI smoke mode keeping the whole service pipeline —
//! catalog, queues, stealing, compiled cache, overload shed — compiling
//! and exercised). Set `OBS_SMOKE=1` to run **only** the observability
//! on/off comparison, fully sampled, printing per-scenario deltas and
//! skipping the JSON write.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{Dataset, WorkloadGenerator, WorkloadSpec};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use xpathkit::{PathExpr, QueryClass, QueryPlan};
use xseed_bench::report::json_throughput_entry;
use xseed_core::{SynopsisSnapshot, XseedConfig, XseedSynopsis};
use xseed_service::{Catalog, Service, ServiceConfig, ServiceError};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Scenario {
    name: &'static str,
    synopsis: XseedSynopsis,
    /// (workload label, query texts): per paper class plus the full mix.
    workloads: Vec<(&'static str, Vec<String>)>,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (name, dataset, scale, recursive, split_classes) in [
        ("xmark", Dataset::XMark10, 0.25, false, true),
        ("treebank", Dataset::TreebankSmall, 0.1, true, false),
    ] {
        let doc = dataset.generate_scaled(scale);
        let config = if recursive {
            XseedConfig::recursive_for_size(doc.element_count())
        } else {
            XseedConfig::default()
        };
        let synopsis = XseedSynopsis::build(&doc, config);
        let workload = WorkloadGenerator::new(&doc, 0x5EED).generate(&WorkloadSpec::small());
        let mut workloads: Vec<(&'static str, Vec<String>)> = Vec::new();
        if split_classes {
            for (label, class) in [
                ("SP", QueryClass::SimplePath),
                ("BP", QueryClass::BranchingPath),
                ("CP", QueryClass::ComplexPath),
            ] {
                let texts: Vec<String> = workload
                    .of_class(class)
                    .iter()
                    .map(|q| q.to_string())
                    .collect();
                assert!(!texts.is_empty(), "{name}: empty {label} workload");
                workloads.push((label, texts));
            }
        }
        workloads.push(("ALL", workload.all().map(|q| q.to_string()).collect()));
        out.push(Scenario {
            name,
            synopsis,
            workloads,
        });
    }
    out
}

/// `true` when the CI smoke mode is active: one pass per measurement,
/// no criterion sampling, no JSON write.
fn smoke() -> bool {
    std::env::var_os("CONCURRENT_SMOKE").is_some()
}

/// `true` when the observability-overhead mode is active: only the obs
/// on/off comparison runs — fully sampled even under `CONCURRENT_SMOKE`,
/// because the point is the delta, not the compile check — and the JSON
/// write is skipped.
fn obs_smoke() -> bool {
    std::env::var_os("OBS_SMOKE").is_some()
}

/// Times `pass` (one full run over the workload, returning the number of
/// estimates produced) until it has run for ~250 ms, returning ns per
/// estimate. One untimed warm-up pass populates caches. In smoke mode a
/// single timed pass follows the warm-up instead of the sampling loop.
fn time_passes(mut pass: impl FnMut() -> usize) -> f64 {
    let mut estimates = pass();
    assert!(estimates > 0);
    estimates = 0;
    let single_round = smoke() && !obs_smoke();
    let start = Instant::now();
    let mut rounds = 0u32;
    loop {
        estimates += pass();
        rounds += 1;
        if single_round || (start.elapsed().as_millis() >= 250 && rounds >= 2) {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / estimates as f64
}

/// The pre-service client: parse each text and run a one-shot estimate.
fn naive_pass(synopsis: &XseedSynopsis, texts: &[String]) -> usize {
    let mut sink = 0.0;
    for text in texts {
        let expr = xpathkit::parse(text).expect("workload query parses");
        sink += synopsis.estimate(&expr);
    }
    std::hint::black_box(sink);
    texts.len()
}

fn service_pass(service: &Service, doc: &str, texts: &[String]) -> usize {
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
    let estimates = service.estimate_batch(doc, &refs).expect("batch estimate");
    std::hint::black_box(estimates.len());
    texts.len()
}

/// Batched pass compiling every estimate from its expression — the
/// compiled-cache-**off** shape (what the batch executor did before the
/// per-snapshot compiled cache existed).
fn compiled_off_pass(snapshot: &SynopsisSnapshot, exprs: &[PathExpr]) -> usize {
    let mut matcher = snapshot.matcher_for_batch(exprs.len());
    let mut sink = 0.0;
    for expr in exprs {
        sink += matcher.estimate(expr);
    }
    std::hint::black_box(sink);
    exprs.len()
}

/// Batched pass through `estimate_plan` — the compiled-cache-**on** shape:
/// after the warm-up pass every estimate is a compiled-cache hit.
fn compiled_on_pass(snapshot: &SynopsisSnapshot, plans: &[Arc<QueryPlan>]) -> usize {
    let mut matcher = snapshot.matcher_for_batch(plans.len());
    let mut sink = 0.0;
    for plan in plans {
        sink += matcher.estimate_plan(plan);
    }
    std::hint::black_box(sink);
    plans.len()
}

struct ObsOverheadResult {
    queries: usize,
    /// Median per-pass ns/estimate per mode — see [`obs_overhead`].
    on_ns: f64,
    off_ns: f64,
}

impl ObsOverheadResult {
    /// Relative cost of observability: `(on − off) / off`, in percent.
    /// Negative values mean the off service happened to measure slower —
    /// i.e. the delta is inside the machine's noise floor.
    fn delta_pct(&self) -> f64 {
        (self.on_ns - self.off_ns) / self.off_ns * 100.0
    }
}

/// The batched ALL workload through the full service stack twice: once
/// with the default config (observability on — what every other service
/// row in this bench measures) and once built `with_observability(false)`.
///
/// The delta under test (~1%) is far below the drift a busy machine
/// shows between two sequential quarter-second measurements, so instead
/// of timing each mode in one block, the two services run **interleaved
/// single passes** (a few hundred µs each) and each mode reports the
/// median of its per-pass times: interleaving gives both modes the same
/// machine conditions at sub-millisecond granularity, and the median
/// sheds the passes a descheduling spike hit.
fn obs_overhead(scenario: &Scenario, workers: usize) -> ObsOverheadResult {
    const PASSES: usize = 500;
    let (_, texts) = scenario.workloads.last().expect("ALL workload");
    let services: Vec<Service> = [true, false]
        .into_iter()
        .map(|observability| {
            let catalog = Arc::new(Catalog::new());
            catalog.insert(scenario.name, scenario.synopsis.clone());
            Service::new(
                catalog,
                ServiceConfig::with_workers(workers).with_observability(observability),
            )
        })
        .collect();
    // Warm both services (plan + compiled caches) before sampling.
    for service in &services {
        service_pass(service, scenario.name, texts);
    }
    let mut samples = [Vec::with_capacity(PASSES), Vec::with_capacity(PASSES)];
    for _ in 0..PASSES {
        for (i, service) in services.iter().enumerate() {
            let start = Instant::now();
            let estimates = service_pass(service, scenario.name, texts);
            samples[i].push(start.elapsed().as_nanos() as f64 / estimates as f64);
        }
    }
    let mut median = |i: usize| -> f64 {
        let side: &mut Vec<f64> = &mut samples[i];
        side.sort_by(|a, b| a.total_cmp(b));
        side[PASSES / 2]
    };
    ObsOverheadResult {
        queries: texts.len(),
        on_ns: median(0),
        off_ns: median(1),
    }
}

struct OverloadResult {
    queue_capacity: usize,
    submitted: usize,
    accepted: usize,
    shed: usize,
    peak_queued: usize,
    shed_decision_ns: f64,
    drained_ok: bool,
}

/// Floods a 1-worker service (fenced, so admission is deterministic) past
/// its queue budget and measures the shed fast-fail path.
fn overload_scenario(synopsis: &XseedSynopsis, doc: &'static str, query: &str) -> OverloadResult {
    const CAPACITY: usize = 64;
    const FLOOD: usize = 50_000;
    let catalog = Arc::new(Catalog::new());
    catalog.insert(doc, synopsis.clone());
    let service = Service::new(
        catalog,
        ServiceConfig::with_workers(1).with_queue_capacity(CAPACITY),
    );
    let pause = service.pause_worker(0);
    pause.wait_until_paused();

    let mut pendings = Vec::with_capacity(CAPACITY);
    // Fill the budget first so the timed loop below measures pure sheds.
    for _ in 0..CAPACITY {
        pendings.push(service.submit(doc, query).expect("budget not full yet"));
    }
    let start = Instant::now();
    for _ in 0..FLOOD {
        match service.submit(doc, query) {
            Ok(p) => pendings.push(p),
            Err(ServiceError::Overloaded { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let shed_decision_ns = start.elapsed().as_nanos() as f64 / FLOOD as f64;

    pause.resume();
    let drained_ok = pendings.into_iter().all(|p| p.wait().is_ok());
    let stats = service.stats();
    OverloadResult {
        queue_capacity: CAPACITY,
        submitted: CAPACITY + FLOOD,
        accepted: stats.accepted as usize,
        shed: stats.shed as usize,
        peak_queued: stats.peak_queued,
        shed_decision_ns,
        drained_ok,
    }
}

struct WorkloadResult {
    label: &'static str,
    queries: usize,
    baseline_ns: f64,
    /// Parallel to `WORKER_COUNTS`.
    worker_ns: Vec<f64>,
}

fn concurrent_benches(c: &mut Criterion) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scenarios = scenarios();

    // OBS_SMOKE: only the observability on/off comparison, fully
    // sampled. A gross regression in the obs layer (anything beyond an
    // Instant pair + relaxed fetch_add per stage, e.g. an accidental
    // lock or syscall on the hot path) fails here; the precise ≤2%
    // acceptance number is pinned by the committed JSON from a full
    // run, because a loaded CI runner is too noisy to assert it.
    if obs_smoke() {
        for scenario in &scenarios {
            let result = obs_overhead(scenario, 2);
            println!(
                "{}/observability: on {:.0} ns | off {:.0} ns | delta {:+.2}% ({} queries)",
                scenario.name,
                result.on_ns,
                result.off_ns,
                result.delta_pct(),
                result.queries,
            );
            assert!(
                result.delta_pct() < 25.0,
                "{}: observability overhead {:.2}% — the recording path regressed",
                scenario.name,
                result.delta_pct()
            );
        }
        println!("OBS_SMOKE set: skipping BENCH_concurrent_throughput.json write");
        return;
    }

    let mut report = String::from("{\n  \"bench\": \"concurrent_throughput\",\n");
    let counts = WORKER_COUNTS
        .iter()
        .map(|w| w.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(report, "  \"cpus_available\": {cpus},\n  \"worker_counts\": [{counts}],\n  \"baseline\": \"single-threaded parse + one-shot XseedSynopsis::estimate per query (pre-service client)\",\n  \"note\": \"worker scaling is bounded by cpus_available; service wins over the baseline come from the plan cache, the per-snapshot compiled-query cache, snapshot sharing, and the per-batch frontier memo\",\n  \"datasets\": {{\n");

    // Criterion-visible spot check: one-shot service estimate latency
    // (skipped in smoke mode — the measured passes below already cover
    // the same path once).
    if !smoke() {
        let mut group = c.benchmark_group("concurrent_throughput");
        group.sample_size(10);
        for scenario in &scenarios {
            let catalog = Arc::new(Catalog::new());
            catalog.insert(scenario.name, scenario.synopsis.clone());
            let service = Service::new(catalog, ServiceConfig::with_workers(2));
            let (_, texts) = scenario.workloads.last().expect("ALL workload");
            group.bench_with_input(
                BenchmarkId::new("service_estimate", scenario.name),
                &(),
                |b, _| b.iter(|| service.estimate(scenario.name, &texts[0]).unwrap()),
            );
        }
        group.finish();
    }

    for (si, scenario) in scenarios.iter().enumerate() {
        let mut results: Vec<WorkloadResult> = Vec::new();
        for (label, texts) in &scenario.workloads {
            let baseline_ns = time_passes(|| naive_pass(&scenario.synopsis, texts));
            let mut worker_ns = Vec::new();
            for &workers in &WORKER_COUNTS {
                let catalog = Arc::new(Catalog::new());
                catalog.insert(scenario.name, scenario.synopsis.clone());
                let service = Service::new(catalog, ServiceConfig::with_workers(workers));
                let ns = time_passes(|| service_pass(&service, scenario.name, texts));
                worker_ns.push(ns);
            }
            println!(
                "{}/{}: {} queries | naive 1-thread {:.0} ns | service {:?} ns for {:?} workers",
                scenario.name,
                label,
                texts.len(),
                baseline_ns,
                worker_ns.iter().map(|n| n.round()).collect::<Vec<_>>(),
                WORKER_COUNTS,
            );
            results.push(WorkloadResult {
                label,
                queries: texts.len(),
                baseline_ns,
                worker_ns,
            });
        }

        // Compiled-plan cache on/off over the full workload: same batched
        // snapshot pass (shared frontier memo), the only difference being
        // whether each estimate recompiles its query or reuses the cached
        // compilation.
        let (cached_on_ns, cached_off_ns) = {
            let (_, texts) = scenario.workloads.last().expect("ALL workload");
            let exprs: Vec<PathExpr> = texts
                .iter()
                .map(|t| xpathkit::parse(t).expect("workload query parses"))
                .collect();
            let plans: Vec<Arc<QueryPlan>> = texts
                .iter()
                .map(|t| Arc::new(QueryPlan::parse(t).expect("workload query parses")))
                .collect();
            let snapshot = scenario.synopsis.snapshot();
            let off = time_passes(|| compiled_off_pass(&snapshot, &exprs));
            let on = time_passes(|| compiled_on_pass(&snapshot, &plans));
            println!(
                "{}/compiled_plan_cache: off {off:.0} ns | on {on:.0} ns per estimate",
                scenario.name
            );
            (on, off)
        };

        let all = results.last().expect("ALL workload result");
        let w1 = all.worker_ns[0];
        let w8 = all.worker_ns[WORKER_COUNTS.len() - 1];
        let _ = write!(
            report,
            "    \"{}\": {{\n      \"workloads\": {{\n",
            scenario.name
        );
        for (wi, w) in results.iter().enumerate() {
            let _ = write!(
                report,
                "        \"{}\": {{\n          \"queries\": {},\n          \
                 \"single_thread_baseline\": {},\n          \"service_workers\": {{",
                w.label,
                w.queries,
                json_throughput_entry(w.baseline_ns),
            );
            for (i, &workers) in WORKER_COUNTS.iter().enumerate() {
                let _ = write!(
                    report,
                    "\n            \"{}\": {}{}",
                    workers,
                    json_throughput_entry(w.worker_ns[i]),
                    if i + 1 == WORKER_COUNTS.len() {
                        ""
                    } else {
                        ","
                    }
                );
            }
            let _ = write!(
                report,
                "\n          }}\n        }}{}\n",
                if wi + 1 == results.len() { "" } else { "," }
            );
        }
        let _ = write!(
            report,
            "      }},\n      \"compiled_plan_cache\": {{\n        \
             \"comparison\": \"one batched snapshot pass over the ALL workload; off = compile per estimate, on = estimate_plan via the per-snapshot compiled cache (warm)\",\n        \
             \"off\": {},\n        \"on\": {},\n        \
             \"savings_ns_per_estimate\": {:.1},\n        \"speedup\": {:.3}\n      }},\n",
            json_throughput_entry(cached_off_ns),
            json_throughput_entry(cached_on_ns),
            cached_off_ns - cached_on_ns,
            cached_off_ns / cached_on_ns,
        );
        let _ = write!(
            report,
            "      \"aggregate_speedup_8_workers_vs_baseline\": {:.2},\n      \
             \"aggregate_scaling_8_vs_1_workers\": {:.2}\n    }}{}\n",
            all.baseline_ns / w8,
            w1 / w8,
            if si + 1 == scenarios.len() { "" } else { "," }
        );
    }
    report.push_str("  },\n");

    // Observability on/off over the same batched service pass: the only
    // difference is ServiceConfig::observability, so the delta is the
    // whole cost of the obs layer on the hot path.
    {
        let _ = write!(
            report,
            "  \"observability\": {{\n    \
             \"comparison\": \"batched ALL workload through a 2-worker service: default config (observability on, what every service row above measures) vs with_observability(false), 500 interleaved single passes each; on/off are per-mode per-pass medians, delta_pct = (on - off) / off * 100\",\n    \
             \"acceptance\": \"delta_pct within run-to-run noise, bar <= 2% (docs/OPERATIONS.md, 'Verifying the off-cost')\",\n"
        );
        for (si, scenario) in scenarios.iter().enumerate() {
            let result = obs_overhead(scenario, 2);
            println!(
                "{}/observability: on {:.0} ns | off {:.0} ns | delta {:+.2}% ({} queries)",
                scenario.name,
                result.on_ns,
                result.off_ns,
                result.delta_pct(),
                result.queries,
            );
            let _ = write!(
                report,
                "    \"{}\": {{\n      \"queries\": {},\n      \
                 \"on\": {},\n      \"observability_off\": {},\n      \
                 \"delta_pct\": {:.2}\n    }}{}\n",
                scenario.name,
                result.queries,
                json_throughput_entry(result.on_ns),
                json_throughput_entry(result.off_ns),
                result.delta_pct(),
                if si + 1 == scenarios.len() { "" } else { "," }
            );
        }
        report.push_str("  },\n");
    }

    // Overload: flood a fenced 1-worker service past its queue budget and
    // measure the shed fast-fail path (what a flooding client pays per
    // OVERLOADED reply, before protocol I/O).
    {
        let scenario = &scenarios[0];
        let (_, texts) = scenario.workloads.last().expect("ALL workload");
        let result = overload_scenario(&scenario.synopsis, "overload_doc", &texts[0]);
        assert!(result.drained_ok, "admitted estimates must drain");
        assert_eq!(result.accepted, result.queue_capacity);
        assert_eq!(result.peak_queued, result.queue_capacity);
        println!(
            "overload: {} submitted, {} accepted, {} shed, peak queue {} / {}, \
             shed decision {:.0} ns",
            result.submitted,
            result.accepted,
            result.shed,
            result.peak_queued,
            result.queue_capacity,
            result.shed_decision_ns
        );
        let _ = write!(
            report,
            "  \"overload\": {{\n    \
             \"scenario\": \"1 worker fenced, queue_capacity {} queries, then {} flooding submits\",\n    \
             \"submitted\": {},\n    \"accepted\": {},\n    \"shed\": {},\n    \
             \"peak_queued\": {},\n    \"shed_decision_ns\": {:.1},\n    \
             \"note\": \"accepted == queue_capacity and peak_queued never exceeds it: admission is exact; shed_decision_ns is the client-side cost of one structured OVERLOADED rejection\"\n  }}\n",
            result.queue_capacity,
            result.submitted - result.queue_capacity,
            result.submitted,
            result.accepted,
            result.shed,
            result.peak_queued,
            result.shed_decision_ns,
        );
    }
    report.push('}');
    report.push('\n');

    if smoke() {
        println!("CONCURRENT_SMOKE set: skipping BENCH_concurrent_throughput.json write");
        return;
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_concurrent_throughput.json"
    );
    std::fs::write(path, &report).expect("write BENCH_concurrent_throughput.json");
    println!("wrote {path}");
}

criterion_group!(benches, concurrent_benches);
criterion_main!(benches);
