//! Concurrent estimation-service throughput.
//!
//! Measures aggregate estimates/sec of the [`xseed_service::Service`]
//! pipeline (catalog snapshot → sharded plan cache → per-worker queues →
//! shared-frontier-memo batch executor) at 1/2/4/8 workers over SP/BP/CP
//! workloads, against the pre-service single-threaded client baseline
//! (parse the text, call `XseedSynopsis::estimate` — the PR 1 usage
//! pattern). Also measures the per-snapshot **compiled-query cache**
//! (batched passes with `estimate_plan` vs compiling every estimate from
//! its expression) and the **overload** fast-fail path (shed-decision
//! latency and bound enforcement with the worker fenced). The **netloop**
//! rows push mixed hot/flood traffic and a high-connection idle soak
//! through the real nonblocking TCP event loop, pricing per-client
//! rate-limiter fairness and per-idle-connection memory (the numbers
//! behind docs/OPERATIONS.md, "Sizing the network tier"). Results land
//! in `BENCH_concurrent_throughput.json` at the workspace root.
//!
//! Worker scaling is bounded by the cores the container actually grants
//! (`cpus_available` in the JSON): the snapshot sharing, queues, and
//! stealing are exercised at every worker count regardless, but wall-clock
//! speedup from threads alone cannot exceed the core count.
//!
//! Also compares **observability on vs off**: the same batched service
//! pass with the default config against one built
//! `with_observability(false)`, recorded as the `observability_off` rows
//! in the JSON. The recording path is one `Instant` pair plus one relaxed
//! `fetch_add` per stage, so the delta must sit within noise (the
//! acceptance bar is ≤2% — see docs/OPERATIONS.md, "Verifying the
//! off-cost").
//!
//! Set `CONCURRENT_SMOKE=1` to run a single pass per measurement and skip
//! the JSON write (the CI smoke mode keeping the whole service pipeline —
//! catalog, queues, stealing, compiled cache, overload shed — compiling
//! and exercised). Set `OBS_SMOKE=1` to run **only** the observability
//! on/off comparison, fully sampled, printing per-scenario deltas and
//! skipping the JSON write.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{Dataset, WorkloadGenerator, WorkloadSpec};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;
use xpathkit::{PathExpr, QueryClass, QueryPlan};
use xseed_bench::report::json_throughput_entry;
use xseed_core::{SynopsisSnapshot, XseedConfig, XseedSynopsis};
use xseed_service::{Catalog, ServerConfig, Service, ServiceConfig, ServiceError, TcpServer};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Scenario {
    name: &'static str,
    synopsis: XseedSynopsis,
    /// (workload label, query texts): per paper class plus the full mix.
    workloads: Vec<(&'static str, Vec<String>)>,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (name, dataset, scale, recursive, split_classes) in [
        ("xmark", Dataset::XMark10, 0.25, false, true),
        ("treebank", Dataset::TreebankSmall, 0.1, true, false),
    ] {
        let doc = dataset.generate_scaled(scale);
        let config = if recursive {
            XseedConfig::recursive_for_size(doc.element_count())
        } else {
            XseedConfig::default()
        };
        let synopsis = XseedSynopsis::build(&doc, config);
        let workload = WorkloadGenerator::new(&doc, 0x5EED).generate(&WorkloadSpec::small());
        let mut workloads: Vec<(&'static str, Vec<String>)> = Vec::new();
        if split_classes {
            for (label, class) in [
                ("SP", QueryClass::SimplePath),
                ("BP", QueryClass::BranchingPath),
                ("CP", QueryClass::ComplexPath),
            ] {
                let texts: Vec<String> = workload
                    .of_class(class)
                    .iter()
                    .map(|q| q.to_string())
                    .collect();
                assert!(!texts.is_empty(), "{name}: empty {label} workload");
                workloads.push((label, texts));
            }
        }
        workloads.push(("ALL", workload.all().map(|q| q.to_string()).collect()));
        out.push(Scenario {
            name,
            synopsis,
            workloads,
        });
    }
    out
}

/// `true` when the CI smoke mode is active: one pass per measurement,
/// no criterion sampling, no JSON write.
fn smoke() -> bool {
    std::env::var_os("CONCURRENT_SMOKE").is_some()
}

/// `true` when the observability-overhead mode is active: only the obs
/// on/off comparison runs — fully sampled even under `CONCURRENT_SMOKE`,
/// because the point is the delta, not the compile check — and the JSON
/// write is skipped.
fn obs_smoke() -> bool {
    std::env::var_os("OBS_SMOKE").is_some()
}

/// Times `pass` (one full run over the workload, returning the number of
/// estimates produced) until it has run for ~250 ms, returning ns per
/// estimate. One untimed warm-up pass populates caches. In smoke mode a
/// single timed pass follows the warm-up instead of the sampling loop.
fn time_passes(mut pass: impl FnMut() -> usize) -> f64 {
    let mut estimates = pass();
    assert!(estimates > 0);
    estimates = 0;
    let single_round = smoke() && !obs_smoke();
    let start = Instant::now();
    let mut rounds = 0u32;
    loop {
        estimates += pass();
        rounds += 1;
        if single_round || (start.elapsed().as_millis() >= 250 && rounds >= 2) {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / estimates as f64
}

/// The pre-service client: parse each text and run a one-shot estimate.
fn naive_pass(synopsis: &XseedSynopsis, texts: &[String]) -> usize {
    let mut sink = 0.0;
    for text in texts {
        let expr = xpathkit::parse(text).expect("workload query parses");
        sink += synopsis.estimate(&expr);
    }
    std::hint::black_box(sink);
    texts.len()
}

fn service_pass(service: &Service, doc: &str, texts: &[String]) -> usize {
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
    let estimates = service.estimate_batch(doc, &refs).expect("batch estimate");
    std::hint::black_box(estimates.len());
    texts.len()
}

/// Batched pass compiling every estimate from its expression — the
/// compiled-cache-**off** shape (what the batch executor did before the
/// per-snapshot compiled cache existed).
fn compiled_off_pass(snapshot: &SynopsisSnapshot, exprs: &[PathExpr]) -> usize {
    let mut matcher = snapshot.matcher_for_batch(exprs.len());
    let mut sink = 0.0;
    for expr in exprs {
        sink += matcher.estimate(expr);
    }
    std::hint::black_box(sink);
    exprs.len()
}

/// Batched pass through `estimate_plan` — the compiled-cache-**on** shape:
/// after the warm-up pass every estimate is a compiled-cache hit.
fn compiled_on_pass(snapshot: &SynopsisSnapshot, plans: &[Arc<QueryPlan>]) -> usize {
    let mut matcher = snapshot.matcher_for_batch(plans.len());
    let mut sink = 0.0;
    for plan in plans {
        sink += matcher.estimate_plan(plan);
    }
    std::hint::black_box(sink);
    plans.len()
}

struct ObsOverheadResult {
    queries: usize,
    /// Median per-pass ns/estimate per mode — see [`obs_overhead`].
    on_ns: f64,
    off_ns: f64,
}

impl ObsOverheadResult {
    /// Relative cost of observability: `(on − off) / off`, in percent.
    /// Negative values mean the off service happened to measure slower —
    /// i.e. the delta is inside the machine's noise floor.
    fn delta_pct(&self) -> f64 {
        (self.on_ns - self.off_ns) / self.off_ns * 100.0
    }
}

/// The batched ALL workload through the full service stack twice: once
/// with the default config (observability on — what every other service
/// row in this bench measures) and once built `with_observability(false)`.
///
/// The delta under test (~1%) is far below the drift a busy machine
/// shows between two sequential quarter-second measurements, so instead
/// of timing each mode in one block, the two services run **interleaved
/// single passes** (a few hundred µs each) and each mode reports the
/// median of its per-pass times: interleaving gives both modes the same
/// machine conditions at sub-millisecond granularity, and the median
/// sheds the passes a descheduling spike hit.
fn obs_overhead(scenario: &Scenario, workers: usize) -> ObsOverheadResult {
    const PASSES: usize = 500;
    let (_, texts) = scenario.workloads.last().expect("ALL workload");
    let services: Vec<Service> = [true, false]
        .into_iter()
        .map(|observability| {
            let catalog = Arc::new(Catalog::new());
            catalog.insert(scenario.name, scenario.synopsis.clone());
            Service::new(
                catalog,
                ServiceConfig::with_workers(workers).with_observability(observability),
            )
        })
        .collect();
    // Warm both services (plan + compiled caches) before sampling.
    for service in &services {
        service_pass(service, scenario.name, texts);
    }
    let mut samples = [Vec::with_capacity(PASSES), Vec::with_capacity(PASSES)];
    for _ in 0..PASSES {
        for (i, service) in services.iter().enumerate() {
            let start = Instant::now();
            let estimates = service_pass(service, scenario.name, texts);
            samples[i].push(start.elapsed().as_nanos() as f64 / estimates as f64);
        }
    }
    let mut median = |i: usize| -> f64 {
        let side: &mut Vec<f64> = &mut samples[i];
        side.sort_by(|a, b| a.total_cmp(b));
        side[PASSES / 2]
    };
    ObsOverheadResult {
        queries: texts.len(),
        on_ns: median(0),
        off_ns: median(1),
    }
}

struct OverloadResult {
    queue_capacity: usize,
    submitted: usize,
    accepted: usize,
    shed: usize,
    peak_queued: usize,
    shed_decision_ns: f64,
    drained_ok: bool,
}

/// Floods a 1-worker service (fenced, so admission is deterministic) past
/// its queue budget and measures the shed fast-fail path.
fn overload_scenario(synopsis: &XseedSynopsis, doc: &'static str, query: &str) -> OverloadResult {
    const CAPACITY: usize = 64;
    const FLOOD: usize = 50_000;
    let catalog = Arc::new(Catalog::new());
    catalog.insert(doc, synopsis.clone());
    let service = Service::new(
        catalog,
        ServiceConfig::with_workers(1).with_queue_capacity(CAPACITY),
    );
    let pause = service.pause_worker(0);
    pause.wait_until_paused();

    let mut pendings = Vec::with_capacity(CAPACITY);
    // Fill the budget first so the timed loop below measures pure sheds.
    for _ in 0..CAPACITY {
        pendings.push(service.submit(doc, query).expect("budget not full yet"));
    }
    let start = Instant::now();
    for _ in 0..FLOOD {
        match service.submit(doc, query) {
            Ok(p) => pendings.push(p),
            Err(ServiceError::Overloaded { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let shed_decision_ns = start.elapsed().as_nanos() as f64 / FLOOD as f64;

    pause.resume();
    let drained_ok = pendings.into_iter().all(|p| p.wait().is_ok());
    let stats = service.stats();
    OverloadResult {
        queue_capacity: CAPACITY,
        submitted: CAPACITY + FLOOD,
        accepted: stats.accepted as usize,
        shed: stats.shed as usize,
        peak_queued: stats.peak_queued,
        shed_decision_ns,
        drained_ok,
    }
}

/// A blocking line client against the TCP event loop.
struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl NetClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        NetClient {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("recv");
        reply.trim_end().to_string()
    }
}

struct NetloopResult {
    rate: f64,
    burst: f64,
    good_requests: usize,
    good_shed: usize,
    good_unloaded_rtt_ns: f64,
    good_flooded_rtt_ns: f64,
    flood_requests: usize,
    flood_admitted: usize,
    flood_shed: usize,
    stats_rate_limited: u64,
    soak_connections: usize,
    soak_rss_bytes: u64,
}

/// Resident-set size of this process in bytes, from `/proc/self/statm`.
fn resident_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1)?.parse::<u64>().ok())
        .map(|pages| pages * 4096)
        .unwrap_or(0)
}

/// Mixed hot/flood traffic through the real TCP event loop, then a
/// high-connection idle soak against the same server.
///
/// One flooding client offers far more than its token bucket admits
/// while a well-behaved client (staying inside its own bucket) keeps
/// measuring request round trips. Per-client fairness is the claim
/// under test: the flood's sheds must stay on the flood's bucket (the
/// good client's shed count is exactly zero) and the good client's
/// latency under flood must stay within sight of its unloaded latency,
/// because a shed costs the loop only a bucket check plus one buffered
/// reply line.
fn netloop_scenario(synopsis: &XseedSynopsis) -> NetloopResult {
    let (good_n, soak_n) = if smoke() { (48, 256) } else { (400, 5_000) };
    // The good client's whole session (warm-up + unloaded samples +
    // flooded samples + STATS) fits inside its initial burst, so its
    // zero-shed outcome is deterministic, not a timing accident. The
    // flood offers 20x its burst, so thousands of sheds are equally
    // guaranteed.
    let rate = 100.0;
    let burst = (good_n + 100) as f64;
    let flood_n = 20 * burst as usize;
    let catalog = Arc::new(Catalog::new());
    catalog.insert("net", synopsis.clone());
    let service = Arc::new(Service::new(catalog, ServiceConfig::with_workers(2)));
    let server = TcpServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_connections: soak_n + 64,
            client_rate: Some(rate),
            client_burst: Some(burst),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let _ = server.run(service);
    });
    let query = "EST net /site/people/person";

    let mut good = NetClient::connect(addr);
    assert!(good.roundtrip(query).starts_with("OK "), "warm-up estimate");
    let unloaded_samples = 32;
    let start = Instant::now();
    for _ in 0..unloaded_samples {
        good.roundtrip(query);
    }
    let good_unloaded_rtt_ns = start.elapsed().as_nanos() as f64 / unloaded_samples as f64;

    let flood = std::thread::spawn(move || {
        let mut client = NetClient::connect(addr);
        let mut admitted = 0usize;
        let mut shed = 0usize;
        for _ in 0..flood_n {
            let reply = client.roundtrip(query);
            if reply.starts_with("OVERLOADED rate=") {
                shed += 1;
            } else {
                assert!(reply.starts_with("OK "), "flood got: {reply}");
                admitted += 1;
            }
        }
        (admitted, shed)
    });
    // Give the flood a head start so every good-client sample below is
    // taken against a loop that is actively shedding.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let mut good_shed = 0usize;
    let start = Instant::now();
    for _ in 0..good_n {
        if good.roundtrip(query).starts_with("OVERLOADED") {
            good_shed += 1;
        }
    }
    let good_flooded_rtt_ns = start.elapsed().as_nanos() as f64 / good_n as f64;
    let (flood_admitted, flood_shed) = flood.join().expect("flood thread");
    let stats = good.roundtrip("STATS");
    let stats_rate_limited = stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("rate_limited="))
        .and_then(|v| v.parse().ok())
        .expect("STATS carries rate_limited=");
    assert_eq!(good_shed, 0, "well-behaved client was shed");
    assert!(flood_shed > 0, "flood was never shed");

    // Idle soak: park `soak_n` extra connections on the same loop and
    // price them in resident memory.
    let _ = netpoll::raise_nofile_limit(4 * soak_n as u64);
    let before = resident_bytes();
    let mut idle: Vec<TcpStream> = Vec::with_capacity(soak_n);
    for i in 0..soak_n {
        idle.push(TcpStream::connect(addr).unwrap_or_else(|e| panic!("soak connect {i}: {e}")));
    }
    // One sampled round trip proves the fully-loaded loop still serves.
    for stream in idle.iter_mut().step_by(soak_n / 4) {
        stream.write_all(b"EST net /site\n").expect("soak send");
        let mut byte = [0u8; 1];
        while byte[0] != b'\n' {
            assert!(stream.read(&mut byte).expect("soak recv") > 0);
        }
    }
    let soak_rss_bytes = resident_bytes().saturating_sub(before);
    drop(idle);

    NetloopResult {
        rate,
        burst,
        good_requests: good_n,
        good_shed,
        good_unloaded_rtt_ns,
        good_flooded_rtt_ns,
        flood_requests: flood_n,
        flood_admitted,
        flood_shed,
        stats_rate_limited,
        soak_connections: soak_n,
        soak_rss_bytes,
    }
}

struct WorkloadResult {
    label: &'static str,
    queries: usize,
    baseline_ns: f64,
    /// Parallel to `WORKER_COUNTS`.
    worker_ns: Vec<f64>,
}

fn concurrent_benches(c: &mut Criterion) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scenarios = scenarios();

    // OBS_SMOKE: only the observability on/off comparison, fully
    // sampled. A gross regression in the obs layer (anything beyond an
    // Instant pair + relaxed fetch_add per stage, e.g. an accidental
    // lock or syscall on the hot path) fails here; the precise ≤2%
    // acceptance number is pinned by the committed JSON from a full
    // run, because a loaded CI runner is too noisy to assert it.
    if obs_smoke() {
        for scenario in &scenarios {
            let result = obs_overhead(scenario, 2);
            println!(
                "{}/observability: on {:.0} ns | off {:.0} ns | delta {:+.2}% ({} queries)",
                scenario.name,
                result.on_ns,
                result.off_ns,
                result.delta_pct(),
                result.queries,
            );
            assert!(
                result.delta_pct() < 25.0,
                "{}: observability overhead {:.2}% — the recording path regressed",
                scenario.name,
                result.delta_pct()
            );
        }
        println!("OBS_SMOKE set: skipping BENCH_concurrent_throughput.json write");
        return;
    }

    let mut report = String::from("{\n  \"bench\": \"concurrent_throughput\",\n");
    let counts = WORKER_COUNTS
        .iter()
        .map(|w| w.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(report, "  \"cpus_available\": {cpus},\n  \"worker_counts\": [{counts}],\n  \"baseline\": \"single-threaded parse + one-shot XseedSynopsis::estimate per query (pre-service client)\",\n  \"note\": \"worker scaling is bounded by cpus_available; service wins over the baseline come from the plan cache, the per-snapshot compiled-query cache, snapshot sharing, and the per-batch frontier memo\",\n  \"datasets\": {{\n");

    // Criterion-visible spot check: one-shot service estimate latency
    // (skipped in smoke mode — the measured passes below already cover
    // the same path once).
    if !smoke() {
        let mut group = c.benchmark_group("concurrent_throughput");
        group.sample_size(10);
        for scenario in &scenarios {
            let catalog = Arc::new(Catalog::new());
            catalog.insert(scenario.name, scenario.synopsis.clone());
            let service = Service::new(catalog, ServiceConfig::with_workers(2));
            let (_, texts) = scenario.workloads.last().expect("ALL workload");
            group.bench_with_input(
                BenchmarkId::new("service_estimate", scenario.name),
                &(),
                |b, _| b.iter(|| service.estimate(scenario.name, &texts[0]).unwrap()),
            );
        }
        group.finish();
    }

    for (si, scenario) in scenarios.iter().enumerate() {
        let mut results: Vec<WorkloadResult> = Vec::new();
        for (label, texts) in &scenario.workloads {
            let baseline_ns = time_passes(|| naive_pass(&scenario.synopsis, texts));
            let mut worker_ns = Vec::new();
            for &workers in &WORKER_COUNTS {
                let catalog = Arc::new(Catalog::new());
                catalog.insert(scenario.name, scenario.synopsis.clone());
                let service = Service::new(catalog, ServiceConfig::with_workers(workers));
                let ns = time_passes(|| service_pass(&service, scenario.name, texts));
                worker_ns.push(ns);
            }
            println!(
                "{}/{}: {} queries | naive 1-thread {:.0} ns | service {:?} ns for {:?} workers",
                scenario.name,
                label,
                texts.len(),
                baseline_ns,
                worker_ns.iter().map(|n| n.round()).collect::<Vec<_>>(),
                WORKER_COUNTS,
            );
            results.push(WorkloadResult {
                label,
                queries: texts.len(),
                baseline_ns,
                worker_ns,
            });
        }

        // Compiled-plan cache on/off over the full workload: same batched
        // snapshot pass (shared frontier memo), the only difference being
        // whether each estimate recompiles its query or reuses the cached
        // compilation.
        let (cached_on_ns, cached_off_ns) = {
            let (_, texts) = scenario.workloads.last().expect("ALL workload");
            let exprs: Vec<PathExpr> = texts
                .iter()
                .map(|t| xpathkit::parse(t).expect("workload query parses"))
                .collect();
            let plans: Vec<Arc<QueryPlan>> = texts
                .iter()
                .map(|t| Arc::new(QueryPlan::parse(t).expect("workload query parses")))
                .collect();
            let snapshot = scenario.synopsis.snapshot();
            let off = time_passes(|| compiled_off_pass(&snapshot, &exprs));
            let on = time_passes(|| compiled_on_pass(&snapshot, &plans));
            println!(
                "{}/compiled_plan_cache: off {off:.0} ns | on {on:.0} ns per estimate",
                scenario.name
            );
            (on, off)
        };

        let all = results.last().expect("ALL workload result");
        let w1 = all.worker_ns[0];
        let w8 = all.worker_ns[WORKER_COUNTS.len() - 1];
        let _ = write!(
            report,
            "    \"{}\": {{\n      \"workloads\": {{\n",
            scenario.name
        );
        for (wi, w) in results.iter().enumerate() {
            let _ = write!(
                report,
                "        \"{}\": {{\n          \"queries\": {},\n          \
                 \"single_thread_baseline\": {},\n          \"service_workers\": {{",
                w.label,
                w.queries,
                json_throughput_entry(w.baseline_ns),
            );
            for (i, &workers) in WORKER_COUNTS.iter().enumerate() {
                let _ = write!(
                    report,
                    "\n            \"{}\": {}{}",
                    workers,
                    json_throughput_entry(w.worker_ns[i]),
                    if i + 1 == WORKER_COUNTS.len() {
                        ""
                    } else {
                        ","
                    }
                );
            }
            let _ = write!(
                report,
                "\n          }}\n        }}{}\n",
                if wi + 1 == results.len() { "" } else { "," }
            );
        }
        let _ = write!(
            report,
            "      }},\n      \"compiled_plan_cache\": {{\n        \
             \"comparison\": \"one batched snapshot pass over the ALL workload; off = compile per estimate, on = estimate_plan via the per-snapshot compiled cache (warm)\",\n        \
             \"off\": {},\n        \"on\": {},\n        \
             \"savings_ns_per_estimate\": {:.1},\n        \"speedup\": {:.3}\n      }},\n",
            json_throughput_entry(cached_off_ns),
            json_throughput_entry(cached_on_ns),
            cached_off_ns - cached_on_ns,
            cached_off_ns / cached_on_ns,
        );
        let _ = write!(
            report,
            "      \"aggregate_speedup_8_workers_vs_baseline\": {:.2},\n      \
             \"aggregate_scaling_8_vs_1_workers\": {:.2}\n    }}{}\n",
            all.baseline_ns / w8,
            w1 / w8,
            if si + 1 == scenarios.len() { "" } else { "," }
        );
    }
    report.push_str("  },\n");

    // Observability on/off over the same batched service pass: the only
    // difference is ServiceConfig::observability, so the delta is the
    // whole cost of the obs layer on the hot path.
    {
        let _ = write!(
            report,
            "  \"observability\": {{\n    \
             \"comparison\": \"batched ALL workload through a 2-worker service: default config (observability on, what every service row above measures) vs with_observability(false), 500 interleaved single passes each; on/off are per-mode per-pass medians, delta_pct = (on - off) / off * 100\",\n    \
             \"acceptance\": \"delta_pct within run-to-run noise, bar <= 2% (docs/OPERATIONS.md, 'Verifying the off-cost')\",\n"
        );
        for (si, scenario) in scenarios.iter().enumerate() {
            let result = obs_overhead(scenario, 2);
            println!(
                "{}/observability: on {:.0} ns | off {:.0} ns | delta {:+.2}% ({} queries)",
                scenario.name,
                result.on_ns,
                result.off_ns,
                result.delta_pct(),
                result.queries,
            );
            let _ = write!(
                report,
                "    \"{}\": {{\n      \"queries\": {},\n      \
                 \"on\": {},\n      \"observability_off\": {},\n      \
                 \"delta_pct\": {:.2}\n    }}{}\n",
                scenario.name,
                result.queries,
                json_throughput_entry(result.on_ns),
                json_throughput_entry(result.off_ns),
                result.delta_pct(),
                if si + 1 == scenarios.len() { "" } else { "," }
            );
        }
        report.push_str("  },\n");
    }

    // Overload: flood a fenced 1-worker service past its queue budget and
    // measure the shed fast-fail path (what a flooding client pays per
    // OVERLOADED reply, before protocol I/O).
    {
        let scenario = &scenarios[0];
        let (_, texts) = scenario.workloads.last().expect("ALL workload");
        let result = overload_scenario(&scenario.synopsis, "overload_doc", &texts[0]);
        assert!(result.drained_ok, "admitted estimates must drain");
        assert_eq!(result.accepted, result.queue_capacity);
        assert_eq!(result.peak_queued, result.queue_capacity);
        println!(
            "overload: {} submitted, {} accepted, {} shed, peak queue {} / {}, \
             shed decision {:.0} ns",
            result.submitted,
            result.accepted,
            result.shed,
            result.peak_queued,
            result.queue_capacity,
            result.shed_decision_ns
        );
        let _ = write!(
            report,
            "  \"overload\": {{\n    \
             \"scenario\": \"1 worker fenced, queue_capacity {} queries, then {} flooding submits\",\n    \
             \"submitted\": {},\n    \"accepted\": {},\n    \"shed\": {},\n    \
             \"peak_queued\": {},\n    \"shed_decision_ns\": {:.1},\n    \
             \"note\": \"accepted == queue_capacity and peak_queued never exceeds it: admission is exact; shed_decision_ns is the client-side cost of one structured OVERLOADED rejection\"\n  }},\n",
            result.queue_capacity,
            result.submitted - result.queue_capacity,
            result.submitted,
            result.accepted,
            result.shed,
            result.peak_queued,
            result.shed_decision_ns,
        );
    }
    // Netloop: mixed hot/flood traffic and a high-connection idle soak
    // through the real nonblocking TCP event loop (sockets, epoll, the
    // per-client token buckets — everything the overload section above
    // deliberately bypasses).
    {
        let result = netloop_scenario(&scenarios[0].synopsis);
        println!(
            "netloop: good {} reqs ({} shed) rtt {:.0} ns idle / {:.0} ns flooded | \
             flood {} reqs -> {} admitted, {} shed | soak {} conns, {} KiB RSS",
            result.good_requests,
            result.good_shed,
            result.good_unloaded_rtt_ns,
            result.good_flooded_rtt_ns,
            result.flood_requests,
            result.flood_admitted,
            result.flood_shed,
            result.soak_connections,
            result.soak_rss_bytes / 1024,
        );
        let _ = write!(
            report,
            "  \"netloop\": {{\n    \
             \"scenario\": \"one event loop, --client-rate {} --client-burst {}: a flooding client offers 20x its bucket while a well-behaved client (inside its own bucket) measures request round trips; then {} extra idle connections soak on the same loop\",\n    \
             \"good_client\": {{\n      \"requests\": {},\n      \"shed\": {},\n      \
             \"unloaded_rtt_ns\": {:.0},\n      \"flooded_rtt_ns\": {:.0}\n    }},\n    \
             \"flooding_client\": {{\n      \"requests\": {},\n      \"admitted\": {},\n      \
             \"shed\": {}\n    }},\n    \"stats_rate_limited\": {},\n    \
             \"idle_soak\": {{\n      \"connections\": {},\n      \"rss_bytes\": {},\n      \
             \"rss_per_connection_bytes\": {}\n    }},\n    \
             \"note\": \"fairness: every shed lands on the flooding client's bucket (good_client.shed == 0 by construction, asserted); a shed costs the loop a token-bucket check plus one buffered reply line, which is why flooded_rtt stays within sight of unloaded_rtt\"\n  }}\n",
            result.rate,
            result.burst,
            result.soak_connections,
            result.good_requests,
            result.good_shed,
            result.good_unloaded_rtt_ns,
            result.good_flooded_rtt_ns,
            result.flood_requests,
            result.flood_admitted,
            result.flood_shed,
            result.stats_rate_limited,
            result.soak_connections,
            result.soak_rss_bytes,
            result.soak_rss_bytes / result.soak_connections.max(1) as u64,
        );
    }
    report.push('}');
    report.push('\n');

    if smoke() {
        println!("CONCURRENT_SMOKE set: skipping BENCH_concurrent_throughput.json write");
        return;
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_concurrent_throughput.json"
    );
    std::fs::write(path, &report).expect("write BENCH_concurrent_throughput.json");
    println!("wrote {path}");
}

criterion_group!(benches, concurrent_benches);
criterion_main!(benches);
