//! HET-construction bench: the old EPT-materializing builder vs the
//! streaming-driven builder, on the canonical datasets.
//!
//! The "old" rows run [`ReferenceHetBuilder`] (materialized EPT, one arena
//! match per candidate, one NoK document walk per branching candidate —
//! the pre-rewrite algorithm, retained as the differential oracle); the
//! "new" rows run the production [`HetBuilder`] (frontier memo recorded
//! once, all simple-path estimates from a single replay pass, all
//! branching truths from a single batched NoK pass). Results — including
//! the old/new speedup per dataset — are written to
//! `BENCH_het_build.json` at the workspace root.
//!
//! The `partitioned_build` rows time the *full* document-to-synopsis
//! construction (kernel + path tree + NoK storage + HET) monolithically
//! vs partitioned across `available_parallelism()` workers
//! ([`XseedSynopsis::build_with_het_partitioned`]); since the partitioned
//! result is bit-identical, the speedup column is the whole story.
//!
//! Set `HET_BUILD_SMOKE=1` to run a single iteration per row and skip the
//! JSON write (the CI smoke mode keeping the builder path exercised), or
//! `PARTITION_SMOKE=1` to single-iterate only the partitioned rows plus
//! their kernel/HET differential check.

use datagen::Dataset;
use nokstore::{NokStorage, PathTree};
use std::time::Instant;
use xseed_core::het::builder::reference::ReferenceHetBuilder;
use xseed_core::{
    HetBuildStats, HetBuilder, HyperEdgeTable, KernelBuilder, XseedConfig, XseedSynopsis,
};

struct Scenario {
    name: &'static str,
    dataset: Dataset,
    scale: f64,
    recursive: bool,
    /// Override of `bsel_threshold`; the canonical rows keep the paper's
    /// preset, the `*_branching` rows raise it so the batched-NoK
    /// candidate path is measured on every dataset (under the presets,
    /// XMark and Treebank select no branching candidates at all).
    bsel_threshold: Option<f64>,
}

const SCENARIOS: [Scenario; 5] = [
    Scenario {
        name: "xmark",
        dataset: Dataset::XMark10,
        scale: 0.25,
        recursive: false,
        bsel_threshold: None,
    },
    Scenario {
        name: "xmark_branching",
        dataset: Dataset::XMark10,
        scale: 0.25,
        recursive: false,
        bsel_threshold: Some(0.5),
    },
    Scenario {
        name: "dblp",
        dataset: Dataset::Dblp,
        scale: 0.1,
        recursive: false,
        bsel_threshold: None,
    },
    Scenario {
        name: "treebank",
        dataset: Dataset::TreebankSmall,
        scale: 0.1,
        recursive: true,
        bsel_threshold: None,
    },
    Scenario {
        name: "treebank_branching",
        dataset: Dataset::TreebankSmall,
        scale: 0.1,
        recursive: true,
        bsel_threshold: Some(0.5),
    },
];

/// Median wall-clock milliseconds of `build` over `rounds` runs (the
/// first run is a discarded warm-up when rounds > 1).
fn time_build_ms<R>(rounds: usize, mut build: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..rounds.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(build());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    if samples.len() > 1 {
        samples.remove(0); // cold warm-up run
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

struct Row {
    name: &'static str,
    elements: usize,
    old_ms: f64,
    new_ms: f64,
    stats: HetBuildStats,
}

struct PartRow {
    name: &'static str,
    elements: usize,
    partitions: usize,
    monolithic_ms: f64,
    partitioned_ms: f64,
}

fn write_report(rows: &[Row], part_rows: &[PartRow], cpus: usize) {
    let mut body = format!(
        "{{\n  \"bench\": \"het_build\",\n  \"cpus_available\": {cpus},\n  \"datasets\": {{\n"
    );
    for (i, row) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    \"{}\": {{\n      \"elements\": {},\n      \
             \"old_ept_nok_build_ms\": {:.3},\n      \
             \"new_streaming_build_ms\": {:.3},\n      \
             \"speedup\": {:.2},\n      \
             \"simple_entries\": {},\n      \
             \"correlated_entries\": {},\n      \
             \"exact_evaluations\": {},\n      \
             \"candidate_nodes\": {}\n    }}{}\n",
            row.name,
            row.elements,
            row.old_ms,
            row.new_ms,
            row.old_ms / row.new_ms,
            row.stats.simple_entries,
            row.stats.correlated_entries,
            row.stats.exact_evaluations,
            row.stats.candidate_nodes,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  },\n  \"partitioned_build\": {\n");
    for (i, row) in part_rows.iter().enumerate() {
        body.push_str(&format!(
            "    \"{}\": {{\n      \"elements\": {},\n      \
             \"partitions\": {},\n      \
             \"monolithic_full_build_ms\": {:.3},\n      \
             \"partitioned_full_build_ms\": {:.3},\n      \
             \"speedup\": {:.2}\n    }}{}\n",
            row.name,
            row.elements,
            row.partitions,
            row.monolithic_ms,
            row.partitioned_ms,
            row.monolithic_ms / row.partitioned_ms,
            if i + 1 == part_rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_het_build.json");
    std::fs::write(path, body).expect("write BENCH_het_build.json");
    println!("wrote {path}");
}

fn main() {
    let het_smoke = std::env::var_os("HET_BUILD_SMOKE").is_some();
    let partition_smoke = std::env::var_os("PARTITION_SMOKE").is_some();
    let smoke = het_smoke || partition_smoke;
    let rounds = if smoke { 1 } else { 5 };
    let mut rows = Vec::new();

    // PARTITION_SMOKE runs only the partitioned section (single
    // iteration + differential check); the builder-vs-reference rows stay
    // with HET_BUILD_SMOKE.
    for scenario in &SCENARIOS {
        if partition_smoke {
            break;
        }
        let doc = scenario.dataset.generate_scaled(scenario.scale);
        let mut config = if scenario.recursive {
            XseedConfig::recursive_for_size(doc.element_count())
        } else {
            XseedConfig::default()
        };
        if let Some(bsel) = scenario.bsel_threshold {
            config.bsel_threshold = bsel;
        }
        let kernel = KernelBuilder::from_document(&doc);
        let path_tree = PathTree::from_document(&doc);
        let storage = NokStorage::from_document(&doc);

        let old_ms = time_build_ms(rounds, || {
            ReferenceHetBuilder::new(&kernel, &path_tree, &storage, &config).build()
        });
        let new_ms = time_build_ms(rounds, || {
            HetBuilder::new(&kernel, &path_tree, &storage, &config).build()
        });

        // The timed result must be the real thing: re-build once and hold
        // the table so the timing loops cannot be optimized into no-ops,
        // and double-check the two builders still agree on size.
        let (streamed, stats): (HyperEdgeTable, HetBuildStats) =
            HetBuilder::new(&kernel, &path_tree, &storage, &config).build();
        let (oracle, _) = ReferenceHetBuilder::new(&kernel, &path_tree, &storage, &config).build();
        assert_eq!(
            streamed.len(),
            oracle.len(),
            "{}: builders diverged",
            scenario.name
        );

        println!(
            "het_build/{name}: elements={el} old={old_ms:.3} ms new={new_ms:.3} ms \
             speedup={speedup:.2}x (simple={simple}, correlated={corr}, evals={evals})",
            name = scenario.name,
            el = doc.element_count(),
            speedup = old_ms / new_ms,
            simple = stats.simple_entries,
            corr = stats.correlated_entries,
            evals = stats.exact_evaluations,
        );
        rows.push(Row {
            name: scenario.name,
            elements: doc.element_count(),
            old_ms,
            new_ms,
            stats,
        });
    }

    // Partitioned full-build rows: document-to-synopsis, monolithic vs
    // one worker per available CPU, on the three canonical datasets.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let partitions = cpus.max(1);
    let mut part_rows = Vec::new();
    for scenario in &SCENARIOS {
        if het_smoke && !partition_smoke {
            break;
        }
        if scenario.bsel_threshold.is_some() {
            continue; // the *_branching variants duplicate the documents
        }
        let doc = scenario.dataset.generate_scaled(scenario.scale);
        let config = if scenario.recursive {
            XseedConfig::recursive_for_size(doc.element_count())
        } else {
            XseedConfig::default()
        };
        let monolithic_ms = time_build_ms(rounds, || {
            XseedSynopsis::build_with_het(&doc, config.clone())
        });
        let partitioned_ms = time_build_ms(rounds, || {
            XseedSynopsis::build_with_het_partitioned(&doc, config.clone(), partitions)
        });

        // The differential guarantee the bench rides on: the partitioned
        // synopsis is the monolithic one, byte for byte.
        let (mono, _) = XseedSynopsis::build_with_het(&doc, config.clone());
        let (part, _) = XseedSynopsis::build_with_het_partitioned(&doc, config.clone(), partitions);
        assert_eq!(
            mono.kernel().serialize(),
            part.kernel().serialize(),
            "{}: partitioned kernel diverged",
            scenario.name
        );
        assert_eq!(
            mono.het().map(HyperEdgeTable::len),
            part.het().map(HyperEdgeTable::len),
            "{}: partitioned HET diverged",
            scenario.name
        );

        println!(
            "partitioned_build/{name}: elements={el} partitions={partitions} \
             monolithic={monolithic_ms:.3} ms partitioned={partitioned_ms:.3} ms \
             speedup={speedup:.2}x (cpus_available={cpus})",
            name = scenario.name,
            el = doc.element_count(),
            speedup = monolithic_ms / partitioned_ms,
        );
        part_rows.push(PartRow {
            name: scenario.name,
            elements: doc.element_count(),
            partitions,
            monolithic_ms,
            partitioned_ms,
        });
    }

    if smoke {
        println!("smoke mode: skipping BENCH_het_build.json write");
    } else {
        write_report(&rows, &part_rows, cpus);
    }
}
