//! Figure 6 bench: HET construction cost for different MBP (maximum
//! branching predicates) settings, alongside the reproduced accuracy
//! trade-off table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::Dataset;
use std::hint::black_box;
use xseed_bench::experiments::{fig6, quick_workload};
use xseed_bench::harness::PreparedDataset;
use xseed_core::{HetBuilder, KernelBuilder};

const BENCH_SCALE: f64 = 0.05;

fn fig6_benches(c: &mut Criterion) {
    let workload = quick_workload();
    let rows = fig6::run(Dataset::Dblp, BENCH_SCALE, &workload);
    println!("\n{}", fig6::render(Dataset::Dblp, &rows));

    let prepared = PreparedDataset::prepare(Dataset::Dblp, BENCH_SCALE, &workload, 13);
    let kernel = KernelBuilder::from_document(&prepared.doc);

    let mut group = c.benchmark_group("fig6_het_construction");
    group.sample_size(10);
    for mbp in [1usize, 2, 3] {
        let mut config = prepared.xseed_config();
        config.max_branching_predicates = mbp;
        // A permissive threshold exercises the branching enumeration the
        // way the DBLP experiment of Figure 6 does.
        config.bsel_threshold = 0.5;
        group.bench_with_input(BenchmarkId::new("mbp", mbp), &config, |b, config| {
            b.iter(|| {
                let builder =
                    HetBuilder::new(&kernel, &prepared.path_tree, &prepared.storage, config);
                black_box(builder.build().0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig6_benches);
criterion_main!(benches);
