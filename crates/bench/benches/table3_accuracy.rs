//! Table 3 bench: accuracy under memory budgets, plus the cost of
//! estimating the combined SP+BP+CP workload with each synopsis.
//!
//! The accuracy table itself (RMSE / NRMSE for the XSEED kernel, XSEED at
//! 25 KB and 50 KB, and TreeSketch at 25 KB and 50 KB) is printed once at
//! startup; Criterion then measures the per-workload estimation cost of
//! the 25 KB XSEED and TreeSketch synopses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::Dataset;
use std::hint::black_box;
use xseed_bench::experiments::{quick_workload, table3};
use xseed_bench::harness::{build_treesketch, build_xseed_with_het, PreparedDataset};

const BENCH_SCALE: f64 = 0.1;

fn accuracy_benches(c: &mut Criterion) {
    let workload = quick_workload();
    let rows = table3::run(BENCH_SCALE, &workload);
    println!("\n{}", table3::render(&rows));

    let mut group = c.benchmark_group("table3_workload_estimation");
    group.sample_size(10);
    for &dataset in &[Dataset::XMark10, Dataset::TreebankSmall] {
        let prepared = PreparedDataset::prepare(dataset, BENCH_SCALE, &workload, 7);
        let (xseed, _) = build_xseed_with_het(&prepared, Some(25 * 1024), 1);
        let xseed = xseed.value;
        let sketch = build_treesketch(&prepared, Some(25 * 1024)).value;
        let queries: Vec<_> = prepared
            .ground_truth
            .iter()
            .map(|(q, _, _)| q.clone())
            .collect();

        group.bench_with_input(
            BenchmarkId::new("xseed_25kb", dataset.paper_name()),
            &queries,
            |b, queries| {
                let estimator = xseed.estimator();
                b.iter(|| {
                    let mut total = 0.0;
                    for q in queries {
                        total += estimator.estimate(q);
                    }
                    black_box(total)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("treesketch_25kb", dataset.paper_name()),
            &queries,
            |b, queries| {
                b.iter(|| {
                    let mut total = 0.0;
                    for q in queries {
                        total += sketch.estimate(q);
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, accuracy_benches);
criterion_main!(benches);
