//! Figure 5 bench: estimation errors per query type (SP/BP/CP) on DBLP,
//! and the estimation cost per query class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::Dataset;
use std::hint::black_box;
use xpathkit::classify::QueryClass;
use xseed_bench::experiments::{fig5, quick_workload};
use xseed_bench::harness::{build_xseed_with_het, PreparedDataset};

const BENCH_SCALE: f64 = 0.1;

fn fig5_benches(c: &mut Criterion) {
    let workload = quick_workload();
    let rows = fig5::run(Dataset::Dblp, BENCH_SCALE, &workload);
    println!("\n{}", fig5::render(Dataset::Dblp, &rows));

    let prepared = PreparedDataset::prepare(Dataset::Dblp, BENCH_SCALE, &workload, 11);
    let (xseed, _) = build_xseed_with_het(&prepared, Some(fig5::BUDGET), 1);
    let xseed = xseed.value;
    let estimator = xseed.estimator();

    let mut group = c.benchmark_group("fig5_estimation_by_class");
    group.sample_size(20);
    for class in [
        QueryClass::SimplePath,
        QueryClass::BranchingPath,
        QueryClass::ComplexPath,
    ] {
        let queries: Vec<_> = prepared
            .ground_truth
            .iter()
            .filter(|(_, _, c)| *c == class)
            .map(|(q, _, _)| q.clone())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("xseed_het", class.to_string()),
            &queries,
            |b, queries| {
                b.iter(|| {
                    let mut total = 0.0;
                    for q in queries {
                        total += estimator.estimate(q);
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig5_benches);
criterion_main!(benches);
