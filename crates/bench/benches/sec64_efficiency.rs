//! Section 6.4 bench: cardinality-estimation time versus actual query
//! execution time.
//!
//! The headline claim of Section 6.4 is that estimation costs under 2% of
//! actual query execution. The summary table (EPT sizes and average time
//! ratios per dataset) is printed once; Criterion then measures the two
//! sides of the ratio — estimating a query on the synopsis versus
//! executing it exactly over the NoK storage — for a representative
//! dataset and query mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::Dataset;
use std::hint::black_box;
use xseed_bench::experiments::{quick_workload, sec64};
use xseed_bench::harness::{build_xseed_with_het, PreparedDataset};

const BENCH_SCALE: f64 = 0.1;

fn sec64_benches(c: &mut Criterion) {
    let workload = quick_workload();
    let rows = sec64::run(
        &[Dataset::Dblp, Dataset::XMark10, Dataset::TreebankSmall],
        BENCH_SCALE,
        &workload,
    );
    println!("\n{}", sec64::render(&rows));

    let mut group = c.benchmark_group("sec64_estimate_vs_execute");
    group.sample_size(20);
    for &dataset in &[Dataset::XMark10, Dataset::TreebankSmall] {
        let prepared = PreparedDataset::prepare(dataset, BENCH_SCALE, &workload, 17);
        let (xseed, _) = build_xseed_with_het(&prepared, Some(50 * 1024), 1);
        let xseed = xseed.value;
        let evaluator = prepared.evaluator();
        // A representative mixed bag of queries.
        let queries: Vec<_> = prepared
            .ground_truth
            .iter()
            .take(30)
            .map(|(q, _, _)| q.clone())
            .collect();

        group.bench_with_input(
            BenchmarkId::new("estimate", dataset.paper_name()),
            &queries,
            |b, queries| {
                let estimator = xseed.estimator();
                b.iter(|| {
                    let mut total = 0.0;
                    for q in queries {
                        total += estimator.estimate(q);
                    }
                    black_box(total)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("execute", dataset.paper_name()),
            &queries,
            |b, queries| {
                b.iter(|| {
                    let mut total = 0u64;
                    for q in queries {
                        total += evaluator.count(q);
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sec64_benches);
criterion_main!(benches);
