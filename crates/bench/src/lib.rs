//! # xseed-bench — the experiment harness of the XSEED reproduction
//!
//! This crate regenerates every table and figure of the paper's
//! evaluation (Section 6) from the synthetic datasets in `datagen`:
//!
//! * [`experiments::table2`] — dataset characteristics, kernel sizes,
//!   construction times (Table 2);
//! * [`experiments::table3`] — accuracy under 25 KB / 50 KB budgets vs.
//!   TreeSketch (Table 3);
//! * [`experiments::fig5`] — per-query-type errors on DBLP (Figure 5);
//! * [`experiments::fig6`] — MBP settings vs. accuracy and HET
//!   construction time (Figure 6);
//! * [`experiments::sec64`] — EPT sizes and estimation/query time ratios
//!   (Section 6.4).
//!
//! Results are printed as text tables with the same row/series structure
//! as the paper, so the *shape* of the results (who wins, by roughly what
//! factor) can be compared directly; absolute numbers differ because the
//! datasets are synthetic, smaller, and the hardware is different (see
//! EXPERIMENTS.md).
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p xseed-bench --bin experiments -- all
//! ```
//!
//! or individual experiments with `table2`, `table3`, `fig5`, `fig6`,
//! `sec64`. Criterion benches (one per table/figure) live under
//! `crates/bench/benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod report;

pub use harness::PreparedDataset;
pub use metrics::{ErrorMetrics, Observation};
