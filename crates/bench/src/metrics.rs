//! Estimation-error metrics (Section 6.3).
//!
//! * **RMSE** — root-mean-squared error over the workload,
//!   `sqrt(Σ(eᵢ − aᵢ)² / n)`.
//! * **NRMSE** — RMSE normalized by the mean actual result size,
//!   `RMSE / ā` (adopted from the paper's reference \[13\]); reported as a percentage in the
//!   paper's tables.
//! * **R²** — the coefficient of determination of estimates vs. actuals.
//! * **OPD** — order-preserving degree: the fraction of query pairs whose
//!   estimated order agrees with their actual order (ties counted as
//!   preserved). The paper computes R² and OPD as well but omits them from
//!   the tables because they are near-perfect for almost all settings.

/// A single (estimated, actual) observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Estimated cardinality.
    pub estimated: f64,
    /// Actual cardinality.
    pub actual: f64,
}

/// Aggregate error metrics over a workload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorMetrics {
    /// Root-mean-squared error.
    pub rmse: f64,
    /// Normalized RMSE (fraction, not percent).
    pub nrmse: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Order-preserving degree.
    pub opd: f64,
    /// Number of observations.
    pub count: usize,
}

impl ErrorMetrics {
    /// Computes all metrics for a set of observations. Returns the default
    /// (all zeros) for an empty input.
    pub fn compute(observations: &[Observation]) -> Self {
        let n = observations.len();
        if n == 0 {
            return ErrorMetrics::default();
        }
        let nf = n as f64;
        let sq_err: f64 = observations
            .iter()
            .map(|o| (o.estimated - o.actual).powi(2))
            .sum();
        let rmse = (sq_err / nf).sqrt();
        let mean_actual: f64 = observations.iter().map(|o| o.actual).sum::<f64>() / nf;
        let nrmse = if mean_actual > 0.0 {
            rmse / mean_actual
        } else {
            0.0
        };

        // R² = 1 - SS_res / SS_tot (against the mean of the actuals).
        let ss_tot: f64 = observations
            .iter()
            .map(|o| (o.actual - mean_actual).powi(2))
            .sum();
        let r_squared = if ss_tot > 0.0 {
            1.0 - sq_err / ss_tot
        } else {
            1.0
        };

        ErrorMetrics {
            rmse,
            nrmse,
            r_squared,
            opd: order_preserving_degree(observations),
            count: n,
        }
    }

    /// NRMSE as a percentage, the way the paper's Table 3 prints it.
    pub fn nrmse_percent(&self) -> f64 {
        self.nrmse * 100.0
    }
}

/// Fraction of observation pairs whose estimated ordering matches their
/// actual ordering (pairs tied on either side count as preserved).
pub fn order_preserving_degree(observations: &[Observation]) -> f64 {
    let n = observations.len();
    if n < 2 {
        return 1.0;
    }
    let mut preserved = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            let actual_order = observations[i].actual.partial_cmp(&observations[j].actual);
            let est_order = observations[i]
                .estimated
                .partial_cmp(&observations[j].estimated);
            if let (Some(a), Some(e)) = (actual_order, est_order) {
                if a == e || a == std::cmp::Ordering::Equal || e == std::cmp::Ordering::Equal {
                    preserved += 1;
                }
            }
        }
    }
    preserved as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(pairs: &[(f64, f64)]) -> Vec<Observation> {
        pairs
            .iter()
            .map(|&(estimated, actual)| Observation { estimated, actual })
            .collect()
    }

    #[test]
    fn perfect_estimates() {
        let m = ErrorMetrics::compute(&obs(&[(1.0, 1.0), (5.0, 5.0), (10.0, 10.0)]));
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.nrmse, 0.0);
        assert!((m.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(m.opd, 1.0);
        assert_eq!(m.count, 3);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        // Errors 3 and 4 => RMSE = sqrt((9+16)/2) = 3.5355...
        let m = ErrorMetrics::compute(&obs(&[(4.0, 1.0), (0.0, 4.0)]));
        assert!((m.rmse - (25.0f64 / 2.0).sqrt()).abs() < 1e-12);
        // Mean actual = 2.5, NRMSE = rmse / 2.5.
        assert!((m.nrmse - m.rmse / 2.5).abs() < 1e-12);
        assert!((m.nrmse_percent() - m.nrmse * 100.0).abs() < 1e-12);
    }

    #[test]
    fn opd_detects_order_inversions() {
        // Two queries whose estimated order is inverted.
        let inverted = obs(&[(10.0, 1.0), (1.0, 10.0)]);
        assert_eq!(order_preserving_degree(&inverted), 0.0);
        let preserved = obs(&[(2.0, 1.0), (20.0, 10.0)]);
        assert_eq!(order_preserving_degree(&preserved), 1.0);
        // Ties count as preserved.
        let tied = obs(&[(5.0, 1.0), (5.0, 10.0)]);
        assert_eq!(order_preserving_degree(&tied), 1.0);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(ErrorMetrics::compute(&[]), ErrorMetrics::default());
        let single = ErrorMetrics::compute(&obs(&[(2.0, 3.0)]));
        assert_eq!(single.count, 1);
        assert_eq!(single.opd, 1.0);
        assert!((single.rmse - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_decreases_with_error() {
        let good = ErrorMetrics::compute(&obs(&[(1.1, 1.0), (5.2, 5.0), (9.9, 10.0)]));
        let bad = ErrorMetrics::compute(&obs(&[(9.0, 1.0), (1.0, 5.0), (2.0, 10.0)]));
        assert!(good.r_squared > bad.r_squared);
        assert!(good.r_squared > 0.9);
    }

    #[test]
    fn zero_actuals_do_not_divide_by_zero() {
        let m = ErrorMetrics::compute(&obs(&[(1.0, 0.0), (2.0, 0.0)]));
        assert!(m.rmse > 0.0);
        assert_eq!(m.nrmse, 0.0);
    }
}
