//! Table 2: dataset characteristics, XSEED kernel size, and synopsis
//! construction times (XSEED kernel + 1BP HET vs. TreeSketch).

use crate::harness::{build_treesketch, build_xseed_with_het, PreparedDataset};
use crate::report::{format_kb, format_secs, TextTable};
use datagen::{Dataset, WorkloadSpec};

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name (paper spelling).
    pub dataset: String,
    /// Serialized size of the document in bytes.
    pub total_size_bytes: usize,
    /// Number of element nodes.
    pub nodes: usize,
    /// Average node recursion level.
    pub avg_recursion: f64,
    /// Maximum recursion level.
    pub max_recursion: usize,
    /// XSEED kernel size in bytes.
    pub kernel_bytes: usize,
    /// Kernel construction seconds.
    pub kernel_seconds: f64,
    /// 1BP HET construction seconds.
    pub het_seconds: f64,
    /// TreeSketch construction seconds (`None` when skipped).
    pub treesketch_seconds: Option<f64>,
}

/// Runs the Table 2 experiment over the paper's five datasets.
///
/// `scale` scales the synthetic dataset sizes; `treesketch_budget` is the
/// byte budget given to the baseline (the paper used 50 KB synopses for
/// its accuracy numbers; construction cost is dominated by the partition
/// either way).
pub fn run(scale: f64, treesketch_budget: usize) -> Vec<Table2Row> {
    Dataset::table2()
        .iter()
        .map(|&dataset| run_one(dataset, scale, treesketch_budget))
        .collect()
}

/// Runs a single dataset of Table 2.
pub fn run_one(dataset: Dataset, scale: f64, treesketch_budget: usize) -> Table2Row {
    // Table 2 does not need a query workload: construction only.
    let spec = WorkloadSpec {
        branching: 0,
        complex: 0,
        max_simple: 0,
        predicates_per_step: 1,
    };
    let prepared = PreparedDataset::prepare(dataset, scale, &spec, 42);
    let (kernel, het_time) = build_xseed_with_het(&prepared, None, 1);
    let treesketch = build_treesketch(&prepared, Some(treesketch_budget));
    Table2Row {
        dataset: dataset.paper_name().to_string(),
        total_size_bytes: prepared.stats.source_bytes,
        nodes: prepared.stats.element_count,
        avg_recursion: prepared.stats.avg_recursion_level,
        max_recursion: prepared.stats.max_recursion_level,
        kernel_bytes: kernel.value.kernel_size_bytes(),
        kernel_seconds: kernel.seconds,
        het_seconds: het_time.seconds,
        treesketch_seconds: Some(treesketch.seconds),
    }
}

/// Renders the rows in the layout of the paper's Table 2.
pub fn render(rows: &[Table2Row]) -> String {
    let mut table = TextTable::new([
        "Dataset",
        "total size",
        "# of nodes",
        "avg/max rec. level",
        "XSEED kernel size",
        "XSEED constr. (kernel + HET)",
        "TreeSketch constr.",
    ]);
    for row in rows {
        table.row([
            row.dataset.clone(),
            format_kb(row.total_size_bytes),
            row.nodes.to_string(),
            format!("{:.2} / {}", row.avg_recursion, row.max_recursion),
            format_kb(row.kernel_bytes),
            format!(
                "{} + {}",
                format_secs(row.kernel_seconds),
                format_secs(row.het_seconds)
            ),
            row.treesketch_seconds
                .map(format_secs)
                .unwrap_or_else(|| "DNF".to_string()),
        ]);
    }
    format!(
        "Table 2: dataset characteristics, kernel sizes, construction times\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_dataset_row_is_sensible() {
        let row = run_one(Dataset::XMark10, 0.05, 50 * 1024);
        assert_eq!(row.dataset, "XMark10");
        assert!(row.nodes > 100);
        assert!(row.kernel_bytes > 100);
        // The kernel must be far smaller than the document, as in Table 2.
        assert!(row.kernel_bytes * 10 < row.total_size_bytes);
        assert!(row.max_recursion >= 1);
        assert!(row.kernel_seconds >= 0.0 && row.het_seconds >= 0.0);
    }

    #[test]
    fn render_contains_every_dataset() {
        let rows = vec![
            run_one(Dataset::Dblp, 0.01, 50 * 1024),
            run_one(Dataset::TreebankSmall, 0.05, 50 * 1024),
        ];
        let text = render(&rows);
        assert!(text.contains("DBLP"));
        assert!(text.contains("Treebank.05"));
        assert!(text.contains("XSEED kernel size"));
    }

    #[test]
    fn dblp_is_non_recursive_treebank_is_not() {
        let dblp = run_one(Dataset::Dblp, 0.01, 50 * 1024);
        assert_eq!(dblp.max_recursion, 0);
        let treebank = run_one(Dataset::TreebankSmall, 0.05, 50 * 1024);
        assert!(treebank.max_recursion >= 3);
        // Treebank's kernel is larger than DBLP's (more recursion levels),
        // as in Table 2 (2.8KB vs 24.2KB).
        assert!(treebank.kernel_bytes > dblp.kernel_bytes);
    }
}
