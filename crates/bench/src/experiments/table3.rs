//! Table 3: RMSE and NRMSE of XSEED (kernel-only, 25 KB, 50 KB) versus
//! TreeSketch (25 KB, 50 KB) on the combined SP + BP + CP workload.

use crate::harness::{build_treesketch, build_xseed_kernel, build_xseed_with_het, PreparedDataset};
use crate::metrics::ErrorMetrics;
use crate::report::TextTable;
use datagen::{Dataset, WorkloadSpec};

/// The two memory budgets of Table 3.
pub const BUDGETS: [usize; 2] = [25 * 1024, 50 * 1024];

/// Error metrics for one estimator setting on one dataset.
#[derive(Debug, Clone, Copy)]
pub struct Table3Cell {
    /// Root-mean-squared error.
    pub rmse: f64,
    /// Normalized RMSE (fraction).
    pub nrmse: f64,
}

impl From<ErrorMetrics> for Table3Cell {
    fn from(m: ErrorMetrics) -> Self {
        Table3Cell {
            rmse: m.rmse,
            nrmse: m.nrmse,
        }
    }
}

/// One dataset's worth of Table 3 results.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// XSEED kernel only (no HET).
    pub xseed_kernel: Table3Cell,
    /// XSEED with HET under each budget (same order as [`BUDGETS`]).
    pub xseed_budgeted: Vec<Table3Cell>,
    /// TreeSketch under each budget (same order as [`BUDGETS`]).
    pub treesketch_budgeted: Vec<Table3Cell>,
}

/// Runs Table 3 over the paper's four datasets.
pub fn run(scale: f64, spec: &WorkloadSpec) -> Vec<Table3Row> {
    Dataset::table3()
        .iter()
        .map(|&dataset| run_one(dataset, scale, spec))
        .collect()
}

/// Runs Table 3 for one dataset.
pub fn run_one(dataset: Dataset, scale: f64, spec: &WorkloadSpec) -> Table3Row {
    let prepared = PreparedDataset::prepare(dataset, scale, spec, 7);

    let kernel = build_xseed_kernel(&prepared).value;
    let kernel_estimator = kernel.estimator();
    let kernel_metrics =
        ErrorMetrics::compute(&prepared.observations(|q| kernel_estimator.estimate(q), None));

    let mut xseed_budgeted = Vec::with_capacity(BUDGETS.len());
    let mut treesketch_budgeted = Vec::with_capacity(BUDGETS.len());
    for &budget in &BUDGETS {
        let (xseed, _) = build_xseed_with_het(&prepared, Some(budget), 1);
        let estimator = xseed.value.estimator();
        let metrics =
            ErrorMetrics::compute(&prepared.observations(|q| estimator.estimate(q), None));
        xseed_budgeted.push(metrics.into());

        let sketch = build_treesketch(&prepared, Some(budget)).value;
        let metrics = ErrorMetrics::compute(&prepared.observations(|q| sketch.estimate(q), None));
        treesketch_budgeted.push(metrics.into());
    }

    Table3Row {
        dataset: dataset.paper_name().to_string(),
        xseed_kernel: kernel_metrics.into(),
        xseed_budgeted,
        treesketch_budgeted,
    }
}

/// Renders the rows in the layout of the paper's Table 3.
pub fn render(rows: &[Table3Row]) -> String {
    let mut headers = vec!["Program settings".to_string()];
    for row in rows {
        headers.push(format!("{} RMSE", row.dataset));
        headers.push(format!("{} NRMSE", row.dataset));
    }
    let mut table = TextTable::new(headers);

    let mut kernel_row = vec!["XSEED kernel".to_string()];
    for row in rows {
        kernel_row.push(format!("{:.1}", row.xseed_kernel.rmse));
        kernel_row.push(format!("{:.2}%", row.xseed_kernel.nrmse * 100.0));
    }
    table.row(kernel_row);

    for (i, &budget) in BUDGETS.iter().enumerate() {
        let label = format!("{}KB mem", budget / 1024);
        let mut xseed_row = vec![format!("{label} XSEED")];
        let mut ts_row = vec![format!("{label} TreeSketch")];
        for row in rows {
            xseed_row.push(format!("{:.1}", row.xseed_budgeted[i].rmse));
            xseed_row.push(format!("{:.2}%", row.xseed_budgeted[i].nrmse * 100.0));
            ts_row.push(format!("{:.1}", row.treesketch_budgeted[i].rmse));
            ts_row.push(format!("{:.2}%", row.treesketch_budgeted[i].nrmse * 100.0));
        }
        table.row(xseed_row);
        table.row(ts_row);
    }

    format!(
        "Table 3: error metrics for XSEED and TreeSketch (combined SP+BP+CP workload)\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            branching: 25,
            complex: 25,
            max_simple: 100,
            predicates_per_step: 1,
        }
    }

    #[test]
    fn xseed_with_het_beats_bare_kernel() {
        let row = run_one(Dataset::XMark10, 0.05, &tiny_spec());
        // The HET has actual cardinalities for every simple path, so the
        // budgeted XSEED error can only be equal or lower.
        assert!(row.xseed_budgeted[1].rmse <= row.xseed_kernel.rmse + 1e-9);
        assert_eq!(row.xseed_budgeted.len(), BUDGETS.len());
        assert_eq!(row.treesketch_budgeted.len(), BUDGETS.len());
    }

    #[test]
    fn xseed_beats_treesketch_on_recursive_data() {
        // The paper's headline: on recursive data XSEED outperforms
        // TreeSketch at the same budget. The scale is chosen so the
        // count-stable partition exceeds the 25KB budget and TreeSketch is
        // forced to merge classes, as happens for the real Treebank.
        let row = run_one(Dataset::TreebankSmall, 0.5, &tiny_spec());
        assert!(
            row.xseed_budgeted[0].rmse <= row.treesketch_budgeted[0].rmse,
            "XSEED {} vs TreeSketch {}",
            row.xseed_budgeted[0].rmse,
            row.treesketch_budgeted[0].rmse
        );
    }

    #[test]
    fn render_has_five_setting_rows() {
        let rows = vec![run_one(Dataset::XMark10, 0.03, &tiny_spec())];
        let text = render(&rows);
        assert!(text.contains("XSEED kernel"));
        assert!(text.contains("25KB mem XSEED"));
        assert!(text.contains("50KB mem TreeSketch"));
        assert!(text.contains("XMark10 RMSE"));
    }
}
