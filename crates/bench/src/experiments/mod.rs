//! One module per table/figure of the paper's evaluation (Section 6).
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`table2`] | Table 2 — dataset characteristics, kernel sizes, construction times |
//! | [`table3`] | Table 3 — RMSE/NRMSE under 25KB/50KB budgets vs. TreeSketch |
//! | [`fig5`]   | Figure 5 — estimation errors per query type on DBLP |
//! | [`fig6`]   | Figure 6 — HET construction time and error per MBP setting |
//! | [`sec64`]  | Section 6.4 — EPT size and estimation-time / query-time ratios |
//!
//! Every module exposes a `run(...)` returning structured rows and a
//! `render(...)` that prints the same table shape as the paper, so results
//! can be compared side by side (shape and relative ordering, not absolute
//! numbers — see EXPERIMENTS.md).

pub mod fig5;
pub mod fig6;
pub mod sec64;
pub mod table2;
pub mod table3;

/// Default generation scale used by the experiment binary. 1.0 corresponds
/// to the crate's default synthetic dataset sizes (tens of thousands of
/// elements); unit tests use much smaller scales.
pub const DEFAULT_SCALE: f64 = 1.0;

/// Default workload sizes for the experiment binary: the paper's 1,000
/// queries per random class, capped for very path-rich documents.
pub fn default_workload() -> datagen::WorkloadSpec {
    datagen::WorkloadSpec {
        branching: 1_000,
        complex: 1_000,
        max_simple: 5_000,
        predicates_per_step: 1,
    }
}

/// Reduced workload for quick runs and benches.
pub fn quick_workload() -> datagen::WorkloadSpec {
    datagen::WorkloadSpec {
        branching: 150,
        complex: 150,
        max_simple: 600,
        predicates_per_step: 1,
    }
}
