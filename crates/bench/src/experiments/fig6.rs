//! Figure 6: the accuracy / construction-time trade-off of different MBP
//! (maximum branching predicates) settings of the HET, evaluated on a 2BP
//! workload over DBLP.

use crate::harness::{build_xseed_kernel, build_xseed_with_het, PreparedDataset};
use crate::metrics::ErrorMetrics;
use crate::report::{format_secs, TextTable};
use datagen::{Dataset, WorkloadSpec};

/// One bar group of Figure 6.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// The MBP setting (0 = kernel only, 1 = 1BP HET, 2 = 2BP HET).
    pub mbp: usize,
    /// RMSE on the 2BP workload.
    pub rmse: f64,
    /// HET construction time in seconds (0 for the kernel-only setting).
    pub het_seconds: f64,
    /// Number of HET entries produced (resident or not).
    pub het_entries: usize,
}

/// Runs Figure 6 on the given dataset (the paper uses DBLP) with MBP
/// settings 0, 1 and 2. The workload uses up to two predicates per step
/// (the paper's 2BP workload).
pub fn run(dataset: Dataset, scale: f64, spec: &WorkloadSpec) -> Vec<Fig6Row> {
    let spec = spec.clone().with_predicates_per_step(2);
    let prepared = PreparedDataset::prepare(dataset, scale, &spec, 13);

    let mut rows = Vec::with_capacity(3);

    // MBP = 0: bare kernel.
    let kernel = build_xseed_kernel(&prepared).value;
    let estimator = kernel.estimator();
    let metrics = ErrorMetrics::compute(&prepared.observations(|q| estimator.estimate(q), None));
    rows.push(Fig6Row {
        mbp: 0,
        rmse: metrics.rmse,
        het_seconds: 0.0,
        het_entries: 0,
    });

    for mbp in [1usize, 2] {
        let (xseed, het_time) = build_xseed_with_het(&prepared, None, mbp);
        let estimator = xseed.value.estimator();
        let metrics =
            ErrorMetrics::compute(&prepared.observations(|q| estimator.estimate(q), None));
        rows.push(Fig6Row {
            mbp,
            rmse: metrics.rmse,
            het_seconds: het_time.seconds,
            het_entries: xseed.value.het().map(|h| h.len()).unwrap_or(0),
        });
    }
    rows
}

/// Renders the figure data as a table.
pub fn render(dataset: Dataset, rows: &[Fig6Row]) -> String {
    let mut table = TextTable::new([
        "Setting",
        "RMSE (2BP workload)",
        "HET construction time",
        "HET entries",
    ]);
    for row in rows {
        let label = if row.mbp == 0 {
            "0BP (Kernel)".to_string()
        } else {
            format!("{}BP", row.mbp)
        };
        table.row([
            label,
            format!("{:.2}", row.rmse),
            format_secs(row.het_seconds),
            row.het_entries.to_string(),
        ]);
    }
    format!(
        "Figure 6: MBP settings vs accuracy and HET construction time on {}\n{}",
        dataset.paper_name(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            branching: 30,
            complex: 20,
            max_simple: 80,
            predicates_per_step: 1,
        }
    }

    #[test]
    fn error_decreases_with_mbp() {
        let rows = run(Dataset::Dblp, 0.01, &tiny_spec());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].mbp, 0);
        // Adding the HET must not hurt; 1BP already removes most error.
        assert!(rows[1].rmse <= rows[0].rmse + 1e-9);
        assert!(rows[2].rmse <= rows[1].rmse + 1e-6);
    }

    #[test]
    fn higher_mbp_costs_more_entries() {
        let rows = run(Dataset::Dblp, 0.01, &tiny_spec());
        assert_eq!(rows[0].het_entries, 0);
        assert!(rows[2].het_entries >= rows[1].het_entries);
    }

    #[test]
    fn render_labels_settings() {
        let rows = run(Dataset::Dblp, 0.01, &tiny_spec());
        let text = render(Dataset::Dblp, &rows);
        assert!(text.contains("0BP (Kernel)"));
        assert!(text.contains("1BP"));
        assert!(text.contains("2BP"));
    }
}
