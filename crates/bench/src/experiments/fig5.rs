//! Figure 5: estimation errors for different query types (SP, BP, CP) on
//! DBLP, comparing the XSEED kernel, XSEED with HET, and TreeSketch.

use crate::harness::{build_treesketch, build_xseed_kernel, build_xseed_with_het, PreparedDataset};
use crate::metrics::ErrorMetrics;
use crate::report::TextTable;
use datagen::{Dataset, WorkloadSpec};
use xpathkit::classify::QueryClass;

/// RMSE of the three estimators for one query class.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// The query class.
    pub class: QueryClass,
    /// XSEED kernel only.
    pub xseed_kernel_rmse: f64,
    /// XSEED with a 1BP HET at the 50 KB budget.
    pub xseed_het_rmse: f64,
    /// TreeSketch at the 50 KB budget.
    pub treesketch_rmse: f64,
}

/// The memory budget used for the HET-equipped estimators in this figure.
pub const BUDGET: usize = 50 * 1024;

/// Runs the Figure 5 experiment on the given dataset (the paper uses
/// DBLP).
pub fn run(dataset: Dataset, scale: f64, spec: &WorkloadSpec) -> Vec<Fig5Row> {
    let prepared = PreparedDataset::prepare(dataset, scale, spec, 11);

    let kernel = build_xseed_kernel(&prepared).value;
    let kernel_estimator = kernel.estimator();
    let (with_het, _) = build_xseed_with_het(&prepared, Some(BUDGET), 1);
    let het_estimator = with_het.value.estimator();
    let sketch = build_treesketch(&prepared, Some(BUDGET)).value;

    [
        QueryClass::SimplePath,
        QueryClass::BranchingPath,
        QueryClass::ComplexPath,
    ]
    .into_iter()
    .map(|class| {
        let kernel_metrics = ErrorMetrics::compute(
            &prepared.observations(|q| kernel_estimator.estimate(q), Some(class)),
        );
        let het_metrics = ErrorMetrics::compute(
            &prepared.observations(|q| het_estimator.estimate(q), Some(class)),
        );
        let ts_metrics =
            ErrorMetrics::compute(&prepared.observations(|q| sketch.estimate(q), Some(class)));
        Fig5Row {
            class,
            xseed_kernel_rmse: kernel_metrics.rmse,
            xseed_het_rmse: het_metrics.rmse,
            treesketch_rmse: ts_metrics.rmse,
        }
    })
    .collect()
}

/// Renders the figure data as a table (the paper shows a bar chart; the
/// series are the same).
pub fn render(dataset: Dataset, rows: &[Fig5Row]) -> String {
    let mut table = TextTable::new([
        "Query type",
        "XSEED kernel RMSE",
        "XSEED+HET RMSE",
        "TreeSketch RMSE",
    ]);
    for row in rows {
        table.row([
            row.class.to_string(),
            format!("{:.2}", row.xseed_kernel_rmse),
            format!("{:.2}", row.xseed_het_rmse),
            format!("{:.2}", row.treesketch_rmse),
        ]);
    }
    format!(
        "Figure 5: estimation errors per query type on {}\n{}",
        dataset.paper_name(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            branching: 25,
            complex: 25,
            max_simple: 80,
            predicates_per_step: 1,
        }
    }

    #[test]
    fn produces_one_row_per_class() {
        let rows = run(Dataset::Dblp, 0.01, &tiny_spec());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].class, QueryClass::SimplePath);
        assert_eq!(rows[1].class, QueryClass::BranchingPath);
        assert_eq!(rows[2].class, QueryClass::ComplexPath);
        for r in &rows {
            assert!(r.xseed_kernel_rmse.is_finite());
            assert!(r.xseed_het_rmse.is_finite());
            assert!(r.treesketch_rmse.is_finite());
        }
    }

    #[test]
    fn het_fixes_simple_paths_on_dblp() {
        // With the HET holding every simple path's true cardinality, the
        // SP error must drop to (essentially) zero, as in Figure 5.
        let rows = run(Dataset::Dblp, 0.01, &tiny_spec());
        assert!(rows[0].xseed_het_rmse <= rows[0].xseed_kernel_rmse + 1e-9);
        assert!(rows[0].xseed_het_rmse < 1e-6);
    }

    #[test]
    fn render_mentions_all_classes() {
        let rows = run(Dataset::Dblp, 0.01, &tiny_spec());
        let text = render(Dataset::Dblp, &rows);
        assert!(text.contains("SP"));
        assert!(text.contains("BP"));
        assert!(text.contains("CP"));
        assert!(text.contains("DBLP"));
    }
}
