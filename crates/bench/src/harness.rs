//! Shared experiment plumbing: dataset preparation, ground truth, and
//! estimator wrappers.

use crate::metrics::Observation;
use datagen::{Dataset, Workload, WorkloadGenerator, WorkloadSpec};
use nokstore::{Evaluator, NokStorage, PathTree};
use std::time::Instant;
use treesketch::TreeSketch;
use xmlkit::stats::DocumentStats;
use xmlkit::tree::Document;
use xpathkit::ast::PathExpr;
use xpathkit::classify::QueryClass;
use xseed_core::{XseedConfig, XseedSynopsis};

/// A dataset prepared for experiments: the document, its exact-evaluation
/// machinery, a generated workload, and cached ground-truth cardinalities.
pub struct PreparedDataset {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// The generated document.
    pub doc: Document,
    /// Document statistics (Table 2 columns).
    pub stats: DocumentStats,
    /// NoK storage for exact evaluation.
    pub storage: NokStorage,
    /// The path tree summary.
    pub path_tree: PathTree,
    /// The generated workload.
    pub workload: Workload,
    /// `(query, actual cardinality, class)` for every workload query.
    pub ground_truth: Vec<(PathExpr, u64, QueryClass)>,
}

impl PreparedDataset {
    /// Generates the dataset at `scale`, builds the exact-evaluation
    /// structures, generates a workload, and evaluates the ground truth.
    pub fn prepare(dataset: Dataset, scale: f64, spec: &WorkloadSpec, seed: u64) -> Self {
        let doc = dataset.generate_scaled(scale);
        let stats = DocumentStats::compute(&doc);
        let storage = NokStorage::from_document(&doc);
        let path_tree = PathTree::from_document(&doc);
        let workload = WorkloadGenerator::new(&doc, seed).generate(spec);
        let evaluator = Evaluator::new(&storage);
        let ground_truth = workload
            .all()
            .map(|q| (q.clone(), evaluator.count(q), q.classify()))
            .collect();
        PreparedDataset {
            dataset,
            doc,
            stats,
            storage,
            path_tree,
            workload,
            ground_truth,
        }
    }

    /// The estimator configuration the paper uses for this dataset:
    /// defaults everywhere; for Treebank-class data the recursive preset
    /// (BSEL_THRESHOLD 0.001) with the cardinality threshold scaled to the
    /// generated document's size (the paper's 20 corresponds to the full
    /// 121k-element Treebank.05 sample).
    pub fn xseed_config(&self) -> XseedConfig {
        if self.dataset.is_highly_recursive() {
            XseedConfig::recursive_for_size(self.stats.element_count)
        } else {
            XseedConfig::default()
        }
    }

    /// Collects `(estimate, actual)` observations for every ground-truth
    /// query (optionally restricted to one class) using `estimate`.
    pub fn observations<F>(&self, mut estimate: F, class: Option<QueryClass>) -> Vec<Observation>
    where
        F: FnMut(&PathExpr) -> f64,
    {
        self.ground_truth
            .iter()
            .filter(|(_, _, c)| class.map(|want| want == *c).unwrap_or(true))
            .map(|(q, actual, _)| Observation {
                estimated: estimate(q),
                actual: *actual as f64,
            })
            .collect()
    }

    /// An exact evaluator over the prepared storage.
    pub fn evaluator(&self) -> Evaluator<'_> {
        Evaluator::new(&self.storage)
    }
}

/// Result of a timed call.
pub struct Timed<T> {
    /// The produced value.
    pub value: T,
    /// Wall-clock seconds the call took.
    pub seconds: f64,
}

/// Times a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let value = f();
    Timed {
        value,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Builds the kernel-only XSEED synopsis, timing construction.
pub fn build_xseed_kernel(prepared: &PreparedDataset) -> Timed<XseedSynopsis> {
    let config = prepared.xseed_config();
    timed(|| XseedSynopsis::build(&prepared.doc, config))
}

/// Builds the XSEED synopsis with a pre-computed HET under `budget_bytes`,
/// timing the HET construction separately from the kernel.
pub fn build_xseed_with_het(
    prepared: &PreparedDataset,
    budget_bytes: Option<usize>,
    max_branching_predicates: usize,
) -> (Timed<XseedSynopsis>, Timed<()>) {
    let mut config = prepared.xseed_config();
    config.memory_budget = budget_bytes;
    config.max_branching_predicates = max_branching_predicates;
    let kernel_timed = timed(|| XseedSynopsis::build(&prepared.doc, config.clone()));
    let het_timed = timed(|| {
        let builder = xseed_core::HetBuilder::new(
            kernel_timed.value.kernel(),
            &prepared.path_tree,
            &prepared.storage,
            &config,
        );
        builder.build().0
    });
    let mut synopsis = kernel_timed.value;
    synopsis.set_het(het_timed.value);
    synopsis.set_memory_budget(budget_bytes);
    (
        Timed {
            value: synopsis,
            seconds: kernel_timed.seconds,
        },
        Timed {
            value: (),
            seconds: het_timed.seconds,
        },
    )
}

/// Builds a TreeSketch synopsis under `budget_bytes`, timing construction.
pub fn build_treesketch(
    prepared: &PreparedDataset,
    budget_bytes: Option<usize>,
) -> Timed<TreeSketch> {
    timed(|| TreeSketch::build(&prepared.doc, budget_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PreparedDataset {
        PreparedDataset::prepare(
            Dataset::XMark10,
            0.05,
            &WorkloadSpec {
                branching: 20,
                complex: 20,
                max_simple: 50,
                predicates_per_step: 1,
            },
            1,
        )
    }

    #[test]
    fn prepare_builds_consistent_ground_truth() {
        let p = tiny();
        assert_eq!(p.ground_truth.len(), p.workload.len());
        // Simple-path ground truth must agree with the path tree.
        for (q, actual, class) in &p.ground_truth {
            if *class == QueryClass::SimplePath {
                let labels: Vec<_> = q
                    .steps
                    .iter()
                    .map(|s| p.doc.names().lookup(s.test.name().unwrap()).unwrap())
                    .collect();
                assert_eq!(*actual, p.path_tree.simple_path_cardinality(&labels), "{q}");
            }
        }
    }

    #[test]
    fn observations_filter_by_class() {
        let p = tiny();
        let all = p.observations(|_| 1.0, None);
        let sp = p.observations(|_| 1.0, Some(QueryClass::SimplePath));
        assert_eq!(all.len(), p.ground_truth.len());
        assert_eq!(sp.len(), p.workload.simple.len());
    }

    #[test]
    fn builders_produce_working_synopses() {
        let p = tiny();
        let kernel = build_xseed_kernel(&p);
        assert!(kernel.value.kernel_size_bytes() > 0);
        assert!(kernel.seconds >= 0.0);
        let (xseed, het_time) = build_xseed_with_het(&p, Some(50 * 1024), 1);
        assert!(xseed.value.het().is_some());
        assert!(het_time.seconds >= 0.0);
        let ts = build_treesketch(&p, Some(50 * 1024));
        assert!(ts.value.size_bytes() > 0);
        // All three produce finite estimates on the workload.
        for (q, _, _) in p.ground_truth.iter().take(10) {
            assert!(kernel.value.estimate(q).is_finite());
            assert!(xseed.value.estimate(q).is_finite());
            assert!(ts.value.estimate(q).is_finite());
        }
    }

    #[test]
    fn recursive_datasets_get_recursive_config() {
        let p = PreparedDataset::prepare(
            Dataset::TreebankSmall,
            0.1,
            &WorkloadSpec {
                branching: 5,
                complex: 5,
                max_simple: 20,
                predicates_per_step: 1,
            },
            2,
        );
        // The recursive preset scales the cardinality threshold with the
        // document size and uses the paper's low BSEL_THRESHOLD.
        assert!(p.xseed_config().card_threshold >= 1.0);
        assert_eq!(p.xseed_config().bsel_threshold, 0.001);
        let q = tiny();
        assert_eq!(q.xseed_config().card_threshold, 0.0);
    }
}
