//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <table2|table3|fig5|fig6|sec64|all> [--scale S] [--quick]
//! ```
//!
//! * `--scale S` multiplies the synthetic dataset sizes (default 1.0).
//! * `--quick` uses a reduced workload (150 BP / 150 CP queries instead of
//!   1,000 each) and a 0.2 dataset scale unless `--scale` is also given.

use datagen::Dataset;
use xseed_bench::experiments::{self, fig5, fig6, sec64, table2, table3};

struct Options {
    scale: f64,
    quick: bool,
    command: String,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut scale: Option<f64> = None;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args.get(i).and_then(|s| s.parse().ok());
            }
            "--quick" => quick = true,
            other if !other.starts_with("--") => command = other.to_string(),
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }
    let scale = scale.unwrap_or(if quick {
        0.2
    } else {
        experiments::DEFAULT_SCALE
    });
    Options {
        scale,
        quick,
        command,
    }
}

fn main() {
    let options = parse_args();
    let workload = if options.quick {
        experiments::quick_workload()
    } else {
        experiments::default_workload()
    };
    println!(
        "XSEED reproduction experiments (scale {}, {} workload)\n",
        options.scale,
        if options.quick { "quick" } else { "full" }
    );

    let run_table2 = || {
        let rows = table2::run(options.scale, 50 * 1024);
        println!("{}\n", table2::render(&rows));
    };
    let run_table3 = || {
        let rows = table3::run(options.scale, &workload);
        println!("{}\n", table3::render(&rows));
    };
    let run_fig5 = || {
        let rows = fig5::run(Dataset::Dblp, options.scale, &workload);
        println!("{}\n", fig5::render(Dataset::Dblp, &rows));
    };
    let run_fig6 = || {
        let rows = fig6::run(Dataset::Dblp, options.scale, &workload);
        println!("{}\n", fig6::render(Dataset::Dblp, &rows));
    };
    let run_sec64 = || {
        let rows = sec64::run(Dataset::table2(), options.scale, &workload);
        println!("{}\n", sec64::render(&rows));
    };

    match options.command.as_str() {
        "table2" => run_table2(),
        "table3" => run_table3(),
        "fig5" => run_fig5(),
        "fig6" => run_fig6(),
        "sec64" => run_sec64(),
        "all" => {
            run_table2();
            run_table3();
            run_fig5();
            run_fig6();
            run_sec64();
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "usage: experiments <table2|table3|fig5|fig6|sec64|all> [--scale S] [--quick]"
            );
            std::process::exit(2);
        }
    }
}
