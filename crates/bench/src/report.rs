//! Minimal fixed-width table rendering for experiment reports.

/// A simple text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render as empty strings.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with two spaces between columns.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!("{cell:<width$}"));
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a byte count as kilobytes with one decimal, e.g. `2.8KB`.
pub fn format_kb(bytes: usize) -> String {
    format!("{:.1}KB", bytes as f64 / 1024.0)
}

/// Formats a duration in seconds with adaptive precision.
pub fn format_secs(seconds: f64) -> String {
    if seconds < 0.001 {
        format!("{:.0}us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.1}ms", seconds * 1e3)
    } else {
        format!("{seconds:.2}s")
    }
}

/// JSON object fragment for a throughput measurement, shared by the
/// `BENCH_*.json`-writing benches so their number formats cannot drift.
pub fn json_throughput_entry(ns_per_estimate: f64) -> String {
    format!(
        "{{\"ns_per_estimate\": {:.1}, \"estimates_per_sec\": {:.1}}}",
        ns_per_estimate,
        1e9 / ns_per_estimate
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Columns are aligned: "value" column starts at the same offset.
        let offset0 = lines[0].find("value").unwrap();
        let offset2 = lines[2].find('1').unwrap();
        assert_eq!(offset0, offset2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only-one"]);
        let rendered = t.render();
        assert!(rendered.contains("only-one"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_kb(2867), "2.8KB");
        assert_eq!(format_secs(0.000002), "2us");
        assert_eq!(format_secs(0.25), "250.0ms");
        assert_eq!(format_secs(2.5), "2.50s");
    }
}
