//! # nokstore — NoK-style storage, exact evaluation, and the path tree
//!
//! XSEED's Hyper-Edge Table is built from *actual* cardinalities, and the
//! paper's efficiency experiments (Section 6.4) compare estimation time to
//! *actual query execution* time. Both require an exact query processor
//! over the XML data. The paper uses the authors' NoK physical storage and
//! pattern-matching operator \[14\] together with the *path tree* summary
//! \[1\]; this crate provides equivalents built from scratch:
//!
//! * [`storage`] — a succinct, preorder-array physical representation of
//!   the element tree ([`storage::NokStorage`]): one label per node plus a
//!   subtree-size array, giving constant-time first-child / next-sibling /
//!   following navigation without pointers.
//! * [`eval`] — an exact evaluator for structural path expressions over
//!   that storage ([`eval::Evaluator`]): returns the precise cardinality
//!   (and optionally the matching node set) for SP/BP/CP queries.
//! * [`path_tree`] — the path tree summary ([`path_tree::PathTree`]): one
//!   node per distinct rooted label path, annotated with its cardinality
//!   and backward selectivity, used by the HET builder and as a cheap
//!   source of exact simple-path cardinalities.
//!
//! ```
//! use xmlkit::Document;
//! use nokstore::{NokStorage, Evaluator};
//!
//! let doc = Document::parse_str("<a><b><c/></b><b/></a>").unwrap();
//! let storage = NokStorage::from_document(&doc);
//! let eval = Evaluator::new(&storage);
//! assert_eq!(eval.count(&xpathkit::parse("/a/b").unwrap()), 2);
//! assert_eq!(eval.count(&xpathkit::parse("/a/b[c]").unwrap()), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod path_tree;
pub mod storage;

pub use eval::{BranchingSpec, Evaluator};
pub use path_tree::{PathTree, PathTreeNode, PathTreeNodeId};
pub use storage::NokStorage;
