//! The path tree summary (Aboulnaga et al. \[1\]).
//!
//! The path tree has one node per *distinct rooted label path* of the
//! document. Every node is annotated with
//!
//! * its **cardinality** — the number of document elements whose rooted
//!   path equals this node's path, and
//! * the number of **parents with this child** — how many elements on the
//!   parent's path have at least one child with this node's label, which
//!   gives the **backward selectivity** of the path
//!   (`bsel = parents_with_child / parent.cardinality`, Definition 5).
//!
//! The HET builder (Section 5) walks this tree to find the simple paths
//! whose kernel estimates are worst, and uses the backward selectivities to
//! decide which branching paths to evaluate exactly.

use crate::storage::NokStorage;
use xmlkit::names::LabelId;
use xmlkit::tree::Document;
use xpathkit::ast::PathExpr;

/// Index of a node in the [`PathTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathTreeNodeId(pub u32);

impl PathTreeNodeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of the path tree: a distinct rooted label path.
#[derive(Debug, Clone)]
pub struct PathTreeNode {
    /// Label of the last step of the path.
    pub label: LabelId,
    /// Parent path, `None` for the root path.
    pub parent: Option<PathTreeNodeId>,
    /// Children, one per distinct child label occurring under this path.
    pub children: Vec<PathTreeNodeId>,
    /// Number of document elements with exactly this rooted path.
    pub cardinality: u64,
    /// Number of elements on the *parent* path that have at least one child
    /// with this node's label.
    pub parents_with_child: u64,
}

/// The path tree of a document.
#[derive(Debug, Clone)]
pub struct PathTree {
    nodes: Vec<PathTreeNode>,
    root: PathTreeNodeId,
}

impl PathTree {
    /// Builds the path tree of `doc`.
    pub fn from_document(doc: &Document) -> Self {
        Self::build(
            doc.label(doc.root()),
            |node| {
                doc.children(xmlkit::tree::NodeId(node as u32))
                    .map(|c| (doc.label(c), c.index()))
                    .collect()
            },
            doc.root().index(),
        )
    }

    /// Builds the path tree of one construction partition: the document
    /// root plus the contiguous `range` of its children (by child index).
    /// Partition trees over the same [`Document`] share its label space,
    /// so [`PathTree::merge_root_split`] can recombine them node-for-node
    /// identically to [`PathTree::from_document`].
    pub fn from_document_root_range(doc: &Document, range: std::ops::Range<usize>) -> Self {
        let root = doc.root();
        let all: Vec<(LabelId, usize)> = doc
            .children(root)
            .map(|c| (doc.label(c), c.index()))
            .collect();
        let keep = all[range].to_vec();
        let root_idx = root.index();
        Self::build(
            doc.label(root),
            move |node| {
                if node == root_idx {
                    keep.clone()
                } else {
                    doc.children(xmlkit::tree::NodeId(node as u32))
                        .map(|c| (doc.label(c), c.index()))
                        .collect()
                }
            },
            root_idx,
        )
    }

    /// Merges per-partition path trees (in **document partition order**,
    /// as built by [`PathTree::from_document_root_range`] over contiguous
    /// root-child ranges) into one tree with node ids, children order,
    /// cardinalities, and `parents_with_child` counts identical to the
    /// monolithic [`PathTree::from_document`] build.
    ///
    /// The replay order mirrors the builder's traversal: the builder
    /// creates all depth-1 nodes *forward* while processing the root, then
    /// explores the root's subtrees in *reverse* document order (stack
    /// pops), so deeper nodes appear in reverse partition order. Hence
    /// phase A replays each partition's depth-1 nodes forward
    /// (`parents_with_child` pinned to 1 — the shared root is a single
    /// element), and phase B replays each partition's deeper nodes in
    /// reverse partition order, summing cardinalities and
    /// `parents_with_child` (every non-root parent element lives wholly
    /// inside one partition).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice (a plan always yields at least one
    /// partition).
    pub fn merge_root_split(parts: &[Self]) -> Self {
        let first = parts
            .first()
            .expect("merge_root_split requires >= 1 partition");
        let mut nodes = vec![PathTreeNode {
            label: first.node(first.root).label,
            parent: None,
            children: Vec::new(),
            cardinality: 1,
            parents_with_child: 1,
        }];
        let root = PathTreeNodeId(0);
        // Per-partition local-id -> merged-id maps, filled as we replay.
        let mut maps: Vec<Vec<PathTreeNodeId>> =
            parts.iter().map(|p| vec![root; p.len()]).collect();

        let get_or_create = |nodes: &mut Vec<PathTreeNode>,
                             parent: PathTreeNodeId,
                             label: LabelId,
                             parents_with_child: u64| {
            match nodes[parent.index()]
                .children
                .iter()
                .copied()
                .find(|&c| nodes[c.index()].label == label)
            {
                Some(existing) => existing,
                None => {
                    let id = PathTreeNodeId(nodes.len() as u32);
                    nodes.push(PathTreeNode {
                        label,
                        parent: Some(parent),
                        children: Vec::new(),
                        cardinality: 0,
                        parents_with_child,
                    });
                    nodes[parent.index()].children.push(id);
                    id
                }
            }
        };

        // Phase A: depth-1 nodes, forward partition order.
        for (p, tree) in parts.iter().enumerate() {
            debug_assert_eq!(
                tree.node(tree.root).label,
                nodes[0].label,
                "partitions must share one document root"
            );
            for id in tree.ids() {
                let node = tree.node(id);
                if node.parent != Some(tree.root) {
                    continue;
                }
                let merged = get_or_create(&mut nodes, root, node.label, 1);
                nodes[merged.index()].cardinality += node.cardinality;
                maps[p][id.index()] = merged;
            }
        }

        // Phase B: deeper nodes, reverse partition order. A node's local
        // parent id is always smaller than its own, so the parent is
        // mapped by the time its children replay.
        for (p, tree) in parts.iter().enumerate().rev() {
            for id in tree.ids() {
                let Some(parent) = tree.node(id).parent else {
                    continue;
                };
                if parent == tree.root {
                    continue;
                }
                let node = tree.node(id);
                let merged = get_or_create(&mut nodes, maps[p][parent.index()], node.label, 0);
                nodes[merged.index()].cardinality += node.cardinality;
                nodes[merged.index()].parents_with_child += node.parents_with_child;
                maps[p][id.index()] = merged;
            }
        }

        PathTree { nodes, root }
    }

    /// Builds the path tree directly from a [`NokStorage`].
    pub fn from_storage(storage: &NokStorage) -> Self {
        Self::build(
            storage.label(storage.root()),
            |node| {
                storage
                    .children(node)
                    .map(|c| (storage.label(c), c))
                    .collect()
            },
            storage.root(),
        )
    }

    /// Generic builder over any tree exposed as a `children(node)` closure
    /// returning `(label, node)` pairs in document order.
    fn build<F>(root_label: LabelId, children_of: F, root_node: usize) -> Self
    where
        F: Fn(usize) -> Vec<(LabelId, usize)>,
    {
        let mut nodes = vec![PathTreeNode {
            label: root_label,
            parent: None,
            children: Vec::new(),
            cardinality: 1,
            parents_with_child: 1,
        }];
        let root = PathTreeNodeId(0);

        // Stack of (document node, corresponding path tree node).
        let mut stack: Vec<(usize, PathTreeNodeId)> = vec![(root_node, root)];
        while let Some((doc_node, pt_node)) = stack.pop() {
            let kids = children_of(doc_node);
            // Distinct labels among this element's children: each counts
            // once towards parents_with_child of the corresponding path
            // tree child.
            let mut seen_labels: Vec<LabelId> = Vec::new();
            for (label, child_doc_node) in kids {
                let child_pt = match nodes[pt_node.index()]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| nodes[c.index()].label == label)
                {
                    Some(existing) => existing,
                    None => {
                        let id = PathTreeNodeId(nodes.len() as u32);
                        nodes.push(PathTreeNode {
                            label,
                            parent: Some(pt_node),
                            children: Vec::new(),
                            cardinality: 0,
                            parents_with_child: 0,
                        });
                        nodes[pt_node.index()].children.push(id);
                        id
                    }
                };
                nodes[child_pt.index()].cardinality += 1;
                if !seen_labels.contains(&label) {
                    seen_labels.push(label);
                    nodes[child_pt.index()].parents_with_child += 1;
                }
                stack.push((child_doc_node, child_pt));
            }
        }

        PathTree { nodes, root }
    }

    /// The root node (the path consisting of just the document root).
    pub fn root(&self) -> PathTreeNodeId {
        self.root
    }

    /// Number of distinct rooted label paths.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree is empty (never the case once built).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: PathTreeNodeId) -> &PathTreeNode {
        &self.nodes[id.index()]
    }

    /// The cardinality annotation of `id`.
    pub fn cardinality(&self, id: PathTreeNodeId) -> u64 {
        self.node(id).cardinality
    }

    /// Backward selectivity of `id`: the proportion of elements on the
    /// parent path that have at least one child with this node's label.
    /// The root has backward selectivity 1.
    pub fn bsel(&self, id: PathTreeNodeId) -> f64 {
        match self.node(id).parent {
            None => 1.0,
            Some(parent) => {
                let parent_card = self.node(parent).cardinality;
                if parent_card == 0 {
                    0.0
                } else {
                    self.node(id).parents_with_child as f64 / parent_card as f64
                }
            }
        }
    }

    /// The rooted label path of `id`, root first.
    pub fn label_path(&self, id: PathTreeNodeId) -> Vec<LabelId> {
        let mut rev = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            rev.push(self.node(n).label);
            cur = self.node(n).parent;
        }
        rev.reverse();
        rev
    }

    /// Looks up the node for an exact rooted label path, if it exists.
    pub fn lookup(&self, path: &[LabelId]) -> Option<PathTreeNodeId> {
        let (&first, rest) = path.split_first()?;
        if self.node(self.root).label != first {
            return None;
        }
        let mut cur = self.root;
        for &label in rest {
            cur = self
                .node(cur)
                .children
                .iter()
                .copied()
                .find(|&c| self.node(c).label == label)?;
        }
        Some(cur)
    }

    /// The exact cardinality of a rooted simple path given as label ids, or
    /// 0 if the path does not occur in the document.
    pub fn simple_path_cardinality(&self, path: &[LabelId]) -> u64 {
        self.lookup(path)
            .map(|id| self.cardinality(id))
            .unwrap_or(0)
    }

    /// Iterates over all node ids in creation order (root first).
    pub fn ids(&self) -> impl Iterator<Item = PathTreeNodeId> {
        (0..self.nodes.len() as u32).map(PathTreeNodeId)
    }

    /// Enumerates every rooted simple path as a [`PathExpr`] (using element
    /// names from `names`), paired with its exact cardinality. This is the
    /// "all possible SP queries" workload of Section 6.1.
    pub fn all_simple_paths(&self, names: &xmlkit::names::NameTable) -> Vec<(PathExpr, u64)> {
        self.ids()
            .map(|id| {
                let path: Vec<String> = self
                    .label_path(id)
                    .into_iter()
                    .map(|l| names.name_or_panic(l).to_string())
                    .collect();
                (PathExpr::simple(path), self.cardinality(id))
            })
            .collect()
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<PathTreeNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.len() * std::mem::size_of::<PathTreeNodeId>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::storage::NokStorage;
    use xmlkit::samples::figure2_document;
    use xmlkit::Document;

    #[test]
    fn simple_document_paths() {
        let doc = Document::parse_str("<a><b/><b><c/></b><d/></a>").unwrap();
        let pt = PathTree::from_document(&doc);
        // Paths: /a, /a/b, /a/b/c, /a/d
        assert_eq!(pt.len(), 4);
        let names = doc.names();
        let a = names.lookup("a").unwrap();
        let b = names.lookup("b").unwrap();
        let c = names.lookup("c").unwrap();
        let d = names.lookup("d").unwrap();
        assert_eq!(pt.simple_path_cardinality(&[a]), 1);
        assert_eq!(pt.simple_path_cardinality(&[a, b]), 2);
        assert_eq!(pt.simple_path_cardinality(&[a, b, c]), 1);
        assert_eq!(pt.simple_path_cardinality(&[a, d]), 1);
        assert_eq!(pt.simple_path_cardinality(&[a, c]), 0);
    }

    #[test]
    fn bsel_matches_definition() {
        // 3 x elements under r; 2 of them have a k child.
        let doc = Document::parse_str("<r><x><k/><k/></x><x><k/></x><x/></r>").unwrap();
        let pt = PathTree::from_document(&doc);
        let names = doc.names();
        let r = names.lookup("r").unwrap();
        let x = names.lookup("x").unwrap();
        let k = names.lookup("k").unwrap();
        let k_node = pt.lookup(&[r, x, k]).unwrap();
        assert_eq!(pt.cardinality(k_node), 3);
        // bsel(/r/x/k) = |/r/x[k]| / |/r/x| = 2/3.
        assert!((pt.bsel(k_node) - 2.0 / 3.0).abs() < 1e-9);
        let x_node = pt.lookup(&[r, x]).unwrap();
        assert!((pt.bsel(x_node) - 1.0).abs() < 1e-9);
        assert!((pt.bsel(pt.root()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure2_path_tree() {
        let doc = figure2_document();
        let pt = PathTree::from_document(&doc);
        let names = doc.names();
        let l = |n: &str| names.lookup(n).unwrap();
        assert_eq!(pt.simple_path_cardinality(&[l("a"), l("c"), l("s")]), 5);
        assert_eq!(
            pt.simple_path_cardinality(&[l("a"), l("c"), l("s"), l("s")]),
            2
        );
        assert_eq!(
            pt.simple_path_cardinality(&[l("a"), l("c"), l("s"), l("s"), l("t")]),
            1
        );
    }

    #[test]
    fn path_tree_cardinalities_agree_with_exact_evaluator() {
        let doc = figure2_document();
        let pt = PathTree::from_document(&doc);
        let storage = NokStorage::from_document(&doc);
        let eval = Evaluator::new(&storage);
        for (expr, card) in pt.all_simple_paths(doc.names()) {
            assert_eq!(eval.count(&expr), card, "mismatch for {expr}");
        }
    }

    #[test]
    fn from_storage_equals_from_document() {
        let doc = figure2_document();
        let pt1 = PathTree::from_document(&doc);
        let pt2 = PathTree::from_storage(&NokStorage::from_document(&doc));
        assert_eq!(pt1.len(), pt2.len());
        for id in pt1.ids() {
            let path = pt1.label_path(id);
            let other = pt2.lookup(&path).expect("path must exist in both");
            assert_eq!(pt1.cardinality(id), pt2.cardinality(other));
            assert!((pt1.bsel(id) - pt2.bsel(other)).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_of_cardinalities_is_element_count() {
        let doc = figure2_document();
        let pt = PathTree::from_document(&doc);
        let total: u64 = pt.ids().map(|id| pt.cardinality(id)).sum();
        assert_eq!(total, doc.element_count() as u64);
    }

    #[test]
    fn lookup_rejects_wrong_root() {
        let doc = Document::parse_str("<a><b/></a>").unwrap();
        let pt = PathTree::from_document(&doc);
        let b = doc.names().lookup("b").unwrap();
        assert!(pt.lookup(&[b]).is_none());
        assert!(pt.lookup(&[]).is_none());
    }

    #[test]
    fn recursive_paths_are_distinct() {
        let doc = Document::parse_str("<a><s><s><s/></s></s></a>").unwrap();
        let pt = PathTree::from_document(&doc);
        // /a, /a/s, /a/s/s, /a/s/s/s are four distinct paths.
        assert_eq!(pt.len(), 4);
        assert!(pt.heap_bytes() > 0);
    }

    /// Node-for-node identity, including ids, children order, and both
    /// annotations — the bit-compatibility contract of the partition
    /// merge.
    fn assert_trees_identical(got: &PathTree, want: &PathTree) {
        assert_eq!(got.len(), want.len());
        assert_eq!(got.root(), want.root());
        for id in want.ids() {
            let g = got.node(id);
            let w = want.node(id);
            assert_eq!(g.label, w.label, "label of {id:?}");
            assert_eq!(g.parent, w.parent, "parent of {id:?}");
            assert_eq!(g.children, w.children, "children of {id:?}");
            assert_eq!(g.cardinality, w.cardinality, "cardinality of {id:?}");
            assert_eq!(
                g.parents_with_child, w.parents_with_child,
                "parents_with_child of {id:?}"
            );
        }
    }

    fn assert_merge_matches_monolithic(doc: &Document, partitions: usize) {
        let monolithic = PathTree::from_document(doc);
        let child_count = doc.child_count(doc.root());
        // Split the children into `partitions` contiguous ranges (possibly
        // empty at the tail).
        let per = child_count.div_ceil(partitions.max(1)).max(1);
        let parts: Vec<PathTree> = (0..partitions.max(1))
            .map(|i| {
                let start = (i * per).min(child_count);
                let end = ((i + 1) * per).min(child_count);
                PathTree::from_document_root_range(doc, start..end)
            })
            .collect();
        let merged = PathTree::merge_root_split(&parts);
        assert_trees_identical(&merged, &monolithic);
    }

    #[test]
    fn full_range_build_equals_from_document() {
        let doc = figure2_document();
        let child_count = doc.child_count(doc.root());
        let pt = PathTree::from_document_root_range(&doc, 0..child_count);
        assert_trees_identical(&pt, &PathTree::from_document(&doc));
    }

    #[test]
    fn empty_range_build_is_root_only() {
        let doc = figure2_document();
        let pt = PathTree::from_document_root_range(&doc, 0..0);
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.cardinality(pt.root()), 1);
    }

    #[test]
    fn merge_root_split_is_bit_identical_to_monolithic() {
        let docs = [
            figure2_document(),
            // Shared deep paths across partitions plus recursion: the
            // merge must reproduce the monolithic creation order (deep
            // nodes in reverse partition order).
            Document::parse_str("<a><s><s><t/></s></s><s><p/></s><s><s><p/><p/></s><t/></s></a>")
                .unwrap(),
            Document::parse_str("<r><x><k/><k/></x><x><k/></x><x/><y><x><k/></x></y></r>").unwrap(),
        ];
        for doc in &docs {
            for partitions in [1, 2, 3, 4, 7] {
                assert_merge_matches_monolithic(doc, partitions);
            }
        }
    }

    #[test]
    fn merged_bsel_matches_monolithic() {
        let doc = Document::parse_str("<r><x><k/><k/></x><x><k/></x><x/></r>").unwrap();
        let monolithic = PathTree::from_document(&doc);
        let parts = vec![
            PathTree::from_document_root_range(&doc, 0..1),
            PathTree::from_document_root_range(&doc, 1..3),
        ];
        let merged = PathTree::merge_root_split(&parts);
        for id in monolithic.ids() {
            assert_eq!(
                merged.bsel(id).to_bits(),
                monolithic.bsel(id).to_bits(),
                "bsel of {id:?}"
            );
        }
    }
}
