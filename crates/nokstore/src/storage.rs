//! Succinct preorder storage of the element tree.
//!
//! The NoK storage scheme of the paper stores the document as a compact
//! preorder byte sequence that supports streaming navigation. We keep the
//! same spirit with two parallel arrays indexed by preorder position:
//!
//! * `labels[i]`   — the interned element name of node `i`,
//! * `subtree[i]`  — the number of nodes in the subtree rooted at `i`
//!   (including `i` itself).
//!
//! These two arrays are sufficient for all structural navigation:
//!
//! * the first child of `i` (if any) is `i + 1`,
//! * the next sibling of `i` (if any) is `i + subtree[i]`,
//! * the subtree of `i` occupies the contiguous range
//!   `i .. i + subtree[i]`, which makes descendant iteration a simple
//!   range scan — exactly the property the NoK pattern-matching operator
//!   exploits by scanning the storage once.
//!
//! A parent array is kept as well; it is not required for forward
//! navigation but makes ancestor checks and rooted-path reconstruction
//! O(depth).

use xmlkit::names::{LabelId, NameTable};
use xmlkit::tree::{Document, NodeId};

/// Preorder position of a node in the storage.
pub type Pos = usize;

/// Succinct preorder representation of an XML element tree.
#[derive(Debug, Clone)]
pub struct NokStorage {
    labels: Vec<LabelId>,
    subtree: Vec<u32>,
    parent: Vec<u32>,
    depth: Vec<u16>,
    names: NameTable,
}

/// Sentinel parent value for the root node.
const NO_PARENT: u32 = u32::MAX;

impl NokStorage {
    /// Builds the storage from an in-memory document tree.
    pub fn from_document(doc: &Document) -> Self {
        let n = doc.element_count();
        let mut labels = Vec::with_capacity(n);
        let mut subtree = vec![0u32; n];
        let mut parent = vec![NO_PARENT; n];
        let mut depth = vec![0u16; n];

        // Map document NodeId -> preorder position while walking.
        let mut pos_of = vec![u32::MAX; n];
        enum Step {
            Enter(NodeId, u32, u16),
            Leave(Pos),
        }
        let mut stack = vec![Step::Enter(doc.root(), NO_PARENT, 1)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(node, par, d) => {
                    let pos = labels.len();
                    pos_of[node.index()] = pos as u32;
                    labels.push(doc.label(node));
                    parent[pos] = par;
                    depth[pos] = d;
                    stack.push(Step::Leave(pos));
                    let children: Vec<NodeId> = doc.children(node).collect();
                    for c in children.into_iter().rev() {
                        stack.push(Step::Enter(c, pos as u32, d + 1));
                    }
                }
                Step::Leave(pos) => {
                    subtree[pos] = (labels.len() - pos) as u32;
                }
            }
        }

        NokStorage {
            labels,
            subtree,
            parent,
            depth,
            names: doc.names().clone(),
        }
    }

    /// Number of element nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the storage holds no nodes (never the case for
    /// storages built from a document).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The root node's position (always 0).
    pub fn root(&self) -> Pos {
        0
    }

    /// The label of the node at `pos`.
    #[inline]
    pub fn label(&self, pos: Pos) -> LabelId {
        self.labels[pos]
    }

    /// The element name of the node at `pos`.
    pub fn name(&self, pos: Pos) -> &str {
        self.names.name_or_panic(self.labels[pos])
    }

    /// The name table shared with the source document.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Size of the subtree rooted at `pos` (including `pos`).
    #[inline]
    pub fn subtree_size(&self, pos: Pos) -> usize {
        self.subtree[pos] as usize
    }

    /// Parent position, or `None` for the root.
    #[inline]
    pub fn parent(&self, pos: Pos) -> Option<Pos> {
        let p = self.parent[pos];
        (p != NO_PARENT).then_some(p as Pos)
    }

    /// Depth of the node (root = 1).
    #[inline]
    pub fn depth(&self, pos: Pos) -> usize {
        self.depth[pos] as usize
    }

    /// First child, if any.
    #[inline]
    pub fn first_child(&self, pos: Pos) -> Option<Pos> {
        (self.subtree[pos] > 1).then_some(pos + 1)
    }

    /// Next sibling, if any.
    #[inline]
    pub fn next_sibling(&self, pos: Pos) -> Option<Pos> {
        let next = pos + self.subtree[pos] as usize;
        match self.parent(pos) {
            Some(par) => {
                let end = par + self.subtree[par] as usize;
                (next < end).then_some(next)
            }
            None => None,
        }
    }

    /// Iterates over the children of `pos` in document order.
    pub fn children(&self, pos: Pos) -> ChildIter<'_> {
        ChildIter {
            storage: self,
            next: self.first_child(pos),
        }
    }

    /// Iterates over all descendants of `pos` (excluding `pos`) in
    /// document order. Thanks to the preorder layout this is a contiguous
    /// range scan.
    pub fn descendants(&self, pos: Pos) -> std::ops::Range<Pos> {
        (pos + 1)..(pos + self.subtree[pos] as usize)
    }

    /// Returns `true` if `anc` is a proper ancestor of `desc`.
    pub fn is_ancestor(&self, anc: Pos, desc: Pos) -> bool {
        anc < desc && desc < anc + self.subtree[anc] as usize
    }

    /// The rooted label path ending at `pos`, root first.
    pub fn rooted_path(&self, pos: Pos) -> Vec<LabelId> {
        let mut path = Vec::with_capacity(self.depth(pos));
        let mut cur = Some(pos);
        while let Some(p) = cur {
            path.push(self.labels[p]);
            cur = self.parent(p);
        }
        path.reverse();
        path
    }

    /// Approximate heap bytes of the storage (the "data storage" footprint
    /// the paper's Figure 1 refers to).
    pub fn heap_bytes(&self) -> usize {
        self.labels.len() * std::mem::size_of::<LabelId>()
            + self.subtree.len() * 4
            + self.parent.len() * 4
            + self.depth.len() * 2
            + self.names.heap_bytes()
    }
}

/// Iterator over the children of a node.
pub struct ChildIter<'a> {
    storage: &'a NokStorage,
    next: Option<Pos>,
}

impl<'a> Iterator for ChildIter<'a> {
    type Item = Pos;

    fn next(&mut self) -> Option<Pos> {
        let cur = self.next?;
        self.next = self.storage.next_sibling(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::Document;

    fn storage(xml: &str) -> NokStorage {
        NokStorage::from_document(&Document::parse_str(xml).unwrap())
    }

    #[test]
    fn preorder_layout() {
        let s = storage("<a><b><c/></b><d/></a>");
        assert_eq!(s.len(), 4);
        assert_eq!(s.name(0), "a");
        assert_eq!(s.name(1), "b");
        assert_eq!(s.name(2), "c");
        assert_eq!(s.name(3), "d");
        assert_eq!(s.subtree_size(0), 4);
        assert_eq!(s.subtree_size(1), 2);
        assert_eq!(s.subtree_size(2), 1);
    }

    #[test]
    fn navigation() {
        let s = storage("<a><b><c/></b><d/></a>");
        assert_eq!(s.first_child(0), Some(1));
        assert_eq!(s.first_child(2), None);
        assert_eq!(s.next_sibling(1), Some(3));
        assert_eq!(s.next_sibling(3), None);
        assert_eq!(s.parent(0), None);
        assert_eq!(s.parent(3), Some(0));
        assert_eq!(s.depth(0), 1);
        assert_eq!(s.depth(2), 3);
    }

    #[test]
    fn children_iter() {
        let s = storage("<r><a/><b><x/></b><c/></r>");
        let kids: Vec<&str> = s.children(0).map(|p| s.name(p)).collect();
        assert_eq!(kids, vec!["a", "b", "c"]);
        assert!(s.children(1).next().is_none());
    }

    #[test]
    fn descendants_range() {
        let s = storage("<a><b><c/></b><d/></a>");
        assert_eq!(s.descendants(0), 1..4);
        assert_eq!(s.descendants(1), 2..3);
        assert_eq!(s.descendants(2), 3..3);
    }

    #[test]
    fn ancestor_checks() {
        let s = storage("<a><b><c/></b><d/></a>");
        assert!(s.is_ancestor(0, 2));
        assert!(s.is_ancestor(1, 2));
        assert!(!s.is_ancestor(1, 3));
        assert!(!s.is_ancestor(2, 1));
        assert!(!s.is_ancestor(2, 2));
    }

    #[test]
    fn rooted_path() {
        let s = storage("<a><b><c/></b></a>");
        let path: Vec<&str> = s
            .rooted_path(2)
            .into_iter()
            .map(|l| s.names().name(l).unwrap())
            .collect();
        assert_eq!(path, vec!["a", "b", "c"]);
    }

    #[test]
    fn single_node_document() {
        let s = storage("<only/>");
        assert_eq!(s.len(), 1);
        assert_eq!(s.first_child(0), None);
        assert_eq!(s.next_sibling(0), None);
        assert!(s.descendants(0).is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    fn heap_bytes_reasonable() {
        let s = storage("<a><b/><c/></a>");
        // 3 nodes * (4 + 4 + 4 + 2) bytes plus the name table.
        assert!(s.heap_bytes() >= 3 * 14);
    }
}
