//! Exact evaluation of structural path expressions over [`NokStorage`].
//!
//! This plays the role of the NoK pattern-matching operator in the paper:
//! it produces *actual* cardinalities, which are needed to
//!
//! * populate the Hyper-Edge Table with true cardinalities and correlated
//!   backward selectivities,
//! * compute the estimation-error metrics of Section 6.3, and
//! * provide the "actual query execution time" denominator of Section 6.4.
//!
//! The evaluator is a straightforward structural-join-free tree walk: each
//! location step maps the current candidate set to children or descendants
//! matching the step's node test, and branching predicates are checked
//! existentially per candidate. Candidate sets are kept sorted and
//! deduplicated, so the result of [`Evaluator::matches`] is the set of
//! distinct elements returned by the query, in document order.

use crate::path_tree::{PathTree, PathTreeNodeId};
use crate::storage::{NokStorage, Pos};
use xmlkit::names::LabelId;
use xpathkit::ast::{Axis, NodeTest, PathExpr, Step};

/// One branching-path candidate `p[q1]...[qm]/r` in the shape the HET
/// builder enumerates: the anchor `p` is a rooted simple path (identified
/// by its [`PathTree`] node), every predicate `qi` is a single child-label
/// existence test, and the result `r` is a child label of the anchor.
///
/// [`Evaluator::count_branching_batch`] evaluates any number of these in
/// **one streaming pass** over the storage, where the step-by-step
/// [`Evaluator::count`] would walk the document once per candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchingSpec {
    /// Path-tree node of the anchor path `p`.
    pub parent: PathTreeNodeId,
    /// Predicate child labels `q1..qm` (all must occur as children).
    pub predicates: Vec<LabelId>,
    /// Result child label `r`.
    pub result: LabelId,
}

/// Exact evaluator over a [`NokStorage`].
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    storage: &'a NokStorage,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over `storage`.
    pub fn new(storage: &'a NokStorage) -> Self {
        Evaluator { storage }
    }

    /// The underlying storage.
    pub fn storage(&self) -> &'a NokStorage {
        self.storage
    }

    /// Returns the distinct elements matching `expr`, in document order.
    pub fn matches(&self, expr: &PathExpr) -> Vec<Pos> {
        let mut candidates = self.initial_candidates(&expr.steps[0]);
        candidates.retain(|&p| self.satisfies_predicates(p, &expr.steps[0]));
        for step in &expr.steps[1..] {
            candidates = self.advance(&candidates, step);
        }
        candidates
    }

    /// Returns the cardinality of `expr` (the number of distinct elements
    /// it returns).
    pub fn count(&self, expr: &PathExpr) -> u64 {
        self.matches(expr).len() as u64
    }

    /// Evaluates the candidates for the first location step, which is
    /// anchored at the (virtual) document node.
    fn initial_candidates(&self, step: &Step) -> Vec<Pos> {
        match step.axis {
            Axis::Child => {
                let root = self.storage.root();
                if self.test_matches(&step.test, root) {
                    vec![root]
                } else {
                    Vec::new()
                }
            }
            Axis::Descendant => {
                // Descendants of the document node: every element.
                (0..self.storage.len())
                    .filter(|&p| self.test_matches(&step.test, p))
                    .collect()
            }
        }
    }

    /// Maps `candidates` through one location step (axis + test +
    /// predicates), returning a sorted, deduplicated candidate set.
    fn advance(&self, candidates: &[Pos], step: &Step) -> Vec<Pos> {
        let mut next = Vec::new();
        match step.axis {
            Axis::Child => {
                for &c in candidates {
                    for child in self.storage.children(c) {
                        if self.test_matches(&step.test, child)
                            && self.satisfies_predicates(child, step)
                        {
                            next.push(child);
                        }
                    }
                }
            }
            Axis::Descendant => {
                for &c in candidates {
                    for d in self.storage.descendants(c) {
                        if self.test_matches(&step.test, d) && self.satisfies_predicates(d, step) {
                            next.push(d);
                        }
                    }
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        next
    }

    /// Checks all branching predicates of `step` against the element at
    /// `pos`.
    fn satisfies_predicates(&self, pos: Pos, step: &Step) -> bool {
        step.predicates.iter().all(|p| self.exists_relative(pos, p))
    }

    /// Existential check of a relative path expression anchored at `pos`.
    fn exists_relative(&self, pos: Pos, rel: &PathExpr) -> bool {
        self.exists_steps(pos, &rel.steps)
    }

    fn exists_steps(&self, pos: Pos, steps: &[Step]) -> bool {
        let Some((step, rest)) = steps.split_first() else {
            return true;
        };
        match step.axis {
            Axis::Child => {
                for child in self.storage.children(pos) {
                    if self.test_matches(&step.test, child)
                        && self.satisfies_predicates(child, step)
                        && self.exists_steps(child, rest)
                    {
                        return true;
                    }
                }
                false
            }
            Axis::Descendant => {
                for d in self.storage.descendants(pos) {
                    if self.test_matches(&step.test, d)
                        && self.satisfies_predicates(d, step)
                        && self.exists_steps(d, rest)
                    {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Exact cardinalities of many branching-path candidates in **one**
    /// streaming pass over the storage (the NoK operator's single-scan
    /// trick applied to HET construction).
    ///
    /// For each [`BranchingSpec`] this returns exactly
    /// `count(/p[q1]...[qm]/r)`: the walk keeps the document position and
    /// its path-tree node in lockstep, and at every element whose path has
    /// candidates it tallies the children by label once — a candidate's
    /// count grows by the number of `r` children whenever every predicate
    /// label is present. Counts are exact because an element matches the
    /// anchor path `p` iff its path-tree node is `spec.parent`, each
    /// predicate is an existential child-label test, and distinct result
    /// elements have distinct parents (no dedup needed).
    ///
    /// `path_tree` must be the path tree of the *same document* as the
    /// storage. Cost: one document traversal plus
    /// O(candidates-at-node × predicates) per visited element, independent
    /// of the number of candidates sharing a traversal.
    pub fn count_branching_batch(&self, path_tree: &PathTree, specs: &[BranchingSpec]) -> Vec<u64> {
        let mut counts = vec![0u64; specs.len()];
        if specs.is_empty() || self.storage.is_empty() {
            return counts;
        }
        let by_parent = group_by_parent(path_tree, specs);
        let stack = vec![(self.storage.root(), path_tree.root())];
        self.count_branching_from(path_tree, specs, &by_parent, stack, &mut counts);
        counts
    }

    /// [`Evaluator::count_branching_batch`] parallelized over construction
    /// partitions: `ranges` are contiguous index ranges of the *root's
    /// children* (the partition plan), and each partition walks only its
    /// own subtrees on a scoped thread. The per-partition `u64` tallies
    /// sum exactly, so the result is **bit-identical** to the monolithic
    /// batch for every plan.
    ///
    /// Candidates anchored *at the root* need cross-partition sibling
    /// knowledge, so they are answered analytically instead: the root is
    /// a single element, hence `count(/root[q…]/r)` is the cardinality of
    /// the depth-1 path `/root/r` when every predicate label occurs as a
    /// depth-1 path, and 0 otherwise — exactly what the walk would tally.
    pub fn count_branching_batch_partitioned(
        &self,
        path_tree: &PathTree,
        specs: &[BranchingSpec],
        ranges: &[std::ops::Range<usize>],
    ) -> Vec<u64> {
        let mut counts = vec![0u64; specs.len()];
        if specs.is_empty() || self.storage.is_empty() {
            return counts;
        }
        let root_pt = path_tree.root();
        let depth1_card = |label: LabelId| {
            path_tree
                .node(root_pt)
                .children
                .iter()
                .copied()
                .find(|&c| path_tree.node(c).label == label)
                .map(|c| path_tree.cardinality(c))
                .unwrap_or(0)
        };
        for (i, spec) in specs.iter().enumerate() {
            if spec.parent == root_pt && spec.predicates.iter().all(|&p| depth1_card(p) > 0) {
                counts[i] = depth1_card(spec.result);
            }
        }

        let by_parent = group_by_parent(path_tree, specs);
        let root_children: Vec<(Pos, PathTreeNodeId)> = self
            .storage
            .children(self.storage.root())
            .map(|child| {
                let label = self.storage.label(child);
                let pt = path_tree
                    .node(root_pt)
                    .children
                    .iter()
                    .copied()
                    .find(|&c| path_tree.node(c).label == label)
                    .expect("path tree covers every rooted path of its document");
                (child, pt)
            })
            .collect();
        let run = |range: std::ops::Range<usize>| {
            let mut part = vec![0u64; specs.len()];
            // Seed reversed so subtrees pop in document order.
            let stack: Vec<_> = root_children[range].iter().rev().copied().collect();
            self.count_branching_from(path_tree, specs, &by_parent, stack, &mut part);
            part
        };
        let partials: Vec<Vec<u64>> = if ranges.len() <= 1 {
            ranges.iter().map(|r| run(r.clone())).collect()
        } else {
            std::thread::scope(|s| {
                let run = &run;
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|r| {
                        let range = r.clone();
                        s.spawn(move || run(range))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("partition count panicked"))
                    .collect()
            })
        };
        for part in partials {
            for (c, p) in counts.iter_mut().zip(part) {
                *c += p;
            }
        }
        counts
    }

    /// The shared walk of the batch counters: pops `(element, path-tree
    /// node)` pairs off `stack` and tallies every candidate anchored at a
    /// visited element into `counts`. Elements *on* the initial stack are
    /// tallied too; the root-anchored case of the partitioned counter is
    /// handled by its caller precisely because the root is never pushed
    /// there.
    fn count_branching_from(
        &self,
        path_tree: &PathTree,
        specs: &[BranchingSpec],
        by_parent: &[Vec<u32>],
        mut stack: Vec<(Pos, PathTreeNodeId)>,
        counts: &mut [u64],
    ) {
        // Reusable per-element child-label tally (stamped via `touched`).
        let mut child_counts: Vec<u64> = vec![0; self.storage.names().len()];
        let mut touched: Vec<LabelId> = Vec::new();

        while let Some((pos, pt)) = stack.pop() {
            let candidates = &by_parent[pt.index()];
            for child in self.storage.children(pos) {
                let label = self.storage.label(child);
                let child_pt = path_tree
                    .node(pt)
                    .children
                    .iter()
                    .copied()
                    .find(|&c| path_tree.node(c).label == label)
                    .expect("path tree covers every rooted path of its document");
                if !candidates.is_empty() {
                    if child_counts[label.index()] == 0 {
                        touched.push(label);
                    }
                    child_counts[label.index()] += 1;
                }
                stack.push((child, child_pt));
            }
            if !candidates.is_empty() {
                for &si in candidates {
                    let spec = &specs[si as usize];
                    if spec.predicates.iter().all(|p| child_counts[p.index()] > 0) {
                        counts[si as usize] += child_counts[spec.result.index()];
                    }
                }
                for &l in &touched {
                    child_counts[l.index()] = 0;
                }
                touched.clear();
            }
        }
    }

    #[inline]
    fn test_matches(&self, test: &NodeTest, pos: Pos) -> bool {
        match test {
            NodeTest::Wildcard => true,
            NodeTest::Name(n) => match self.storage.names().lookup(n) {
                Some(id) => self.storage.label(pos) == id,
                // A name that never occurs in the document matches nothing.
                None => false,
            },
        }
    }
}

/// Candidates grouped by their anchor path-tree node.
fn group_by_parent(path_tree: &PathTree, specs: &[BranchingSpec]) -> Vec<Vec<u32>> {
    let mut by_parent: Vec<Vec<u32>> = vec![Vec::new(); path_tree.len()];
    for (i, spec) in specs.iter().enumerate() {
        by_parent[spec.parent.index()].push(i as u32);
    }
    by_parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::NokStorage;
    use xmlkit::Document;
    use xpathkit::parse;

    /// The XML tree of Figure 2(a) in the paper.
    fn figure2_storage() -> NokStorage {
        NokStorage::from_document(&xmlkit::samples::figure2_document())
    }

    fn count(s: &NokStorage, q: &str) -> u64 {
        Evaluator::new(s).count(&parse(q).unwrap())
    }

    #[test]
    fn simple_paths() {
        let s = figure2_storage();
        assert_eq!(count(&s, "/a"), 1);
        assert_eq!(count(&s, "/a/c"), 2);
        assert_eq!(count(&s, "/a/c/s"), 5);
        assert_eq!(count(&s, "/a/c/s/s"), 2);
        assert_eq!(count(&s, "/a/t"), 1);
        assert_eq!(count(&s, "/a/u"), 1);
        assert_eq!(count(&s, "/nonexistent"), 0);
        assert_eq!(count(&s, "/a/missing"), 0);
    }

    #[test]
    fn descendant_queries() {
        let s = figure2_storage();
        // Observation 3 of the paper: //s//s//p returns 5 elements on the
        // Figure 2(a) tree.
        assert_eq!(count(&s, "//s//s//p"), 5);
        assert_eq!(count(&s, "//c"), 2);
        assert_eq!(count(&s, "//s"), 9);
    }

    #[test]
    fn wildcard_queries() {
        let s = figure2_storage();
        let total = s.len() as u64;
        assert_eq!(count(&s, "//*"), total);
        assert_eq!(count(&s, "/a/*"), 4);
        assert_eq!(count(&s, "/*"), 1);
    }

    #[test]
    fn branching_queries() {
        let s = NokStorage::from_document(
            &Document::parse_str("<r><x><k/><v/></x><x><k/></x><x><v/></x></r>").unwrap(),
        );
        assert_eq!(count(&s, "/r/x"), 3);
        assert_eq!(count(&s, "/r/x[k]"), 2);
        assert_eq!(count(&s, "/r/x[k][v]"), 1);
        assert_eq!(count(&s, "/r/x[k]/v"), 1);
        assert_eq!(count(&s, "/r[x]"), 1);
        assert_eq!(count(&s, "/r[missing]"), 0);
    }

    #[test]
    fn nested_predicates() {
        let s = NokStorage::from_document(
            &Document::parse_str("<r><a><b><c/></b></a><a><b/></a></r>").unwrap(),
        );
        assert_eq!(count(&s, "/r/a[b[c]]"), 1);
        assert_eq!(count(&s, "/r/a[b]"), 2);
        assert_eq!(count(&s, "/r/a[//c]"), 1);
    }

    #[test]
    fn descendant_predicate_and_duplicates() {
        // //s//p from nested s nodes: the same p is reachable from several
        // s ancestors but must be counted once.
        let s =
            NokStorage::from_document(&Document::parse_str("<a><s><s><p/></s></s></a>").unwrap());
        assert_eq!(count(&s, "//s//p"), 1);
        // Both s elements have a descendant p, so //s[//p] returns 2.
        assert_eq!(count(&s, "//s[//p]"), 2);
        assert_eq!(count(&s, "//s[p]"), 1);
    }

    #[test]
    fn matches_are_document_order_unique() {
        let s = figure2_storage();
        let eval = Evaluator::new(&s);
        let m = eval.matches(&parse("//s//p").unwrap());
        let mut sorted = m.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(m, sorted);
    }

    #[test]
    fn recursive_query_on_recursive_document() {
        let s = figure2_storage();
        // //s//s: s elements that have an s ancestor.
        assert_eq!(count(&s, "//s//s"), 4);
        // //s//s//s: recursion level 2.
        assert_eq!(count(&s, "//s//s//s"), 2);
    }

    #[test]
    fn unknown_names_match_nothing() {
        let s = figure2_storage();
        assert_eq!(count(&s, "//zzz"), 0);
        assert_eq!(count(&s, "/a/c[zzz]"), 0);
    }

    use crate::path_tree::PathTree;
    use crate::BranchingSpec;
    use xpathkit::ast::{PathExpr, Step};

    /// Enumerates every `parent[preds ⊆ siblings]/result` candidate of a
    /// document (up to `mbp` predicates) and checks the one-pass batch
    /// counter against the per-candidate step evaluator.
    fn assert_batch_matches_per_candidate(doc: &xmlkit::Document, mbp: usize) {
        let storage = NokStorage::from_document(doc);
        let path_tree = PathTree::from_document(doc);
        let eval = Evaluator::new(&storage);
        let names = storage.names();
        let mut specs = Vec::new();
        let mut exprs = Vec::new();
        for parent in path_tree.ids() {
            let kids = &path_tree.node(parent).children;
            for &result in kids {
                for &p1 in kids {
                    for &p2 in kids {
                        let mut preds = vec![path_tree.node(p1).label];
                        if mbp >= 2 && p2 != p1 {
                            preds.push(path_tree.node(p2).label);
                        }
                        let parent_names: Vec<String> = path_tree
                            .label_path(parent)
                            .iter()
                            .map(|&l| names.name_or_panic(l).to_string())
                            .collect();
                        let mut steps: Vec<Step> = parent_names.iter().map(Step::child).collect();
                        for p in &preds {
                            steps
                                .last_mut()
                                .unwrap()
                                .predicates
                                .push(PathExpr::simple([names.name_or_panic(*p)]));
                        }
                        steps.push(Step::child(
                            names.name_or_panic(path_tree.node(result).label),
                        ));
                        exprs.push(PathExpr::new(steps));
                        specs.push(BranchingSpec {
                            parent,
                            predicates: preds,
                            result: path_tree.node(result).label,
                        });
                    }
                }
            }
        }
        let batch = eval.count_branching_batch(&path_tree, &specs);
        for ((spec, expr), got) in specs.iter().zip(&exprs).zip(&batch) {
            let expected = eval.count(expr);
            assert_eq!(
                *got, expected,
                "batch count for {expr} ({spec:?}) disagrees with the evaluator"
            );
        }
    }

    #[test]
    fn branching_batch_matches_evaluator_on_figure2() {
        assert_batch_matches_per_candidate(&xmlkit::samples::figure2_document(), 2);
    }

    #[test]
    fn branching_batch_matches_evaluator_on_nested_doc() {
        let doc = Document::parse_str(
            "<r><x><k/><v/><k/></x><x><k/></x><x><v/><w><k/><v/></w></x><y><x><k/><v/></x></y></r>",
        )
        .unwrap();
        assert_batch_matches_per_candidate(&doc, 2);
    }

    #[test]
    fn branching_batch_empty_specs() {
        let s = figure2_storage();
        let doc = xmlkit::samples::figure2_document();
        let pt = PathTree::from_document(&doc);
        assert!(Evaluator::new(&s)
            .count_branching_batch(&pt, &[])
            .is_empty());
    }

    /// Every `parent[p1][p2?]/result` candidate over sibling labels —
    /// including root-anchored ones, which the partitioned counter
    /// answers analytically.
    fn enumerate_specs(path_tree: &PathTree) -> Vec<BranchingSpec> {
        let mut specs = Vec::new();
        for parent in path_tree.ids() {
            let kids = &path_tree.node(parent).children;
            for &result in kids {
                for &p1 in kids {
                    for &p2 in kids {
                        let mut preds = vec![path_tree.node(p1).label];
                        if p2 != p1 {
                            preds.push(path_tree.node(p2).label);
                        }
                        specs.push(BranchingSpec {
                            parent,
                            predicates: preds,
                            result: path_tree.node(result).label,
                        });
                    }
                }
            }
        }
        specs
    }

    #[test]
    fn partitioned_batch_is_bit_identical_to_monolithic_batch() {
        let docs = [
            xmlkit::samples::figure2_document(),
            Document::parse_str(
                "<r><x><k/><v/><k/></x><x><k/></x><x><v/><w><k/><v/></w></x><y><x><k/><v/></x></y></r>",
            )
            .unwrap(),
        ];
        for doc in &docs {
            let storage = NokStorage::from_document(doc);
            let pt = PathTree::from_document(doc);
            let eval = Evaluator::new(&storage);
            let specs = enumerate_specs(&pt);
            let reference = eval.count_branching_batch(&pt, &specs);
            let cc = doc.child_count(doc.root());
            for n in [1usize, 2, 3, 4, 7] {
                let per = cc.div_ceil(n).max(1);
                let ranges: Vec<std::ops::Range<usize>> = (0..n)
                    .map(|i| (i * per).min(cc)..((i + 1) * per).min(cc))
                    .collect();
                assert_eq!(
                    eval.count_branching_batch_partitioned(&pt, &specs, &ranges),
                    reference,
                    "{n} partitions on {doc:?}"
                );
            }
        }
    }
}
