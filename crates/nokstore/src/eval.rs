//! Exact evaluation of structural path expressions over [`NokStorage`].
//!
//! This plays the role of the NoK pattern-matching operator in the paper:
//! it produces *actual* cardinalities, which are needed to
//!
//! * populate the Hyper-Edge Table with true cardinalities and correlated
//!   backward selectivities,
//! * compute the estimation-error metrics of Section 6.3, and
//! * provide the "actual query execution time" denominator of Section 6.4.
//!
//! The evaluator is a straightforward structural-join-free tree walk: each
//! location step maps the current candidate set to children or descendants
//! matching the step's node test, and branching predicates are checked
//! existentially per candidate. Candidate sets are kept sorted and
//! deduplicated, so the result of [`Evaluator::matches`] is the set of
//! distinct elements returned by the query, in document order.

use crate::storage::{NokStorage, Pos};
use xpathkit::ast::{Axis, NodeTest, PathExpr, Step};

/// Exact evaluator over a [`NokStorage`].
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    storage: &'a NokStorage,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over `storage`.
    pub fn new(storage: &'a NokStorage) -> Self {
        Evaluator { storage }
    }

    /// The underlying storage.
    pub fn storage(&self) -> &'a NokStorage {
        self.storage
    }

    /// Returns the distinct elements matching `expr`, in document order.
    pub fn matches(&self, expr: &PathExpr) -> Vec<Pos> {
        let mut candidates = self.initial_candidates(&expr.steps[0]);
        candidates.retain(|&p| self.satisfies_predicates(p, &expr.steps[0]));
        for step in &expr.steps[1..] {
            candidates = self.advance(&candidates, step);
        }
        candidates
    }

    /// Returns the cardinality of `expr` (the number of distinct elements
    /// it returns).
    pub fn count(&self, expr: &PathExpr) -> u64 {
        self.matches(expr).len() as u64
    }

    /// Evaluates the candidates for the first location step, which is
    /// anchored at the (virtual) document node.
    fn initial_candidates(&self, step: &Step) -> Vec<Pos> {
        match step.axis {
            Axis::Child => {
                let root = self.storage.root();
                if self.test_matches(&step.test, root) {
                    vec![root]
                } else {
                    Vec::new()
                }
            }
            Axis::Descendant => {
                // Descendants of the document node: every element.
                (0..self.storage.len())
                    .filter(|&p| self.test_matches(&step.test, p))
                    .collect()
            }
        }
    }

    /// Maps `candidates` through one location step (axis + test +
    /// predicates), returning a sorted, deduplicated candidate set.
    fn advance(&self, candidates: &[Pos], step: &Step) -> Vec<Pos> {
        let mut next = Vec::new();
        match step.axis {
            Axis::Child => {
                for &c in candidates {
                    for child in self.storage.children(c) {
                        if self.test_matches(&step.test, child)
                            && self.satisfies_predicates(child, step)
                        {
                            next.push(child);
                        }
                    }
                }
            }
            Axis::Descendant => {
                for &c in candidates {
                    for d in self.storage.descendants(c) {
                        if self.test_matches(&step.test, d) && self.satisfies_predicates(d, step) {
                            next.push(d);
                        }
                    }
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        next
    }

    /// Checks all branching predicates of `step` against the element at
    /// `pos`.
    fn satisfies_predicates(&self, pos: Pos, step: &Step) -> bool {
        step.predicates.iter().all(|p| self.exists_relative(pos, p))
    }

    /// Existential check of a relative path expression anchored at `pos`.
    fn exists_relative(&self, pos: Pos, rel: &PathExpr) -> bool {
        self.exists_steps(pos, &rel.steps)
    }

    fn exists_steps(&self, pos: Pos, steps: &[Step]) -> bool {
        let Some((step, rest)) = steps.split_first() else {
            return true;
        };
        match step.axis {
            Axis::Child => {
                for child in self.storage.children(pos) {
                    if self.test_matches(&step.test, child)
                        && self.satisfies_predicates(child, step)
                        && self.exists_steps(child, rest)
                    {
                        return true;
                    }
                }
                false
            }
            Axis::Descendant => {
                for d in self.storage.descendants(pos) {
                    if self.test_matches(&step.test, d)
                        && self.satisfies_predicates(d, step)
                        && self.exists_steps(d, rest)
                    {
                        return true;
                    }
                }
                false
            }
        }
    }

    #[inline]
    fn test_matches(&self, test: &NodeTest, pos: Pos) -> bool {
        match test {
            NodeTest::Wildcard => true,
            NodeTest::Name(n) => match self.storage.names().lookup(n) {
                Some(id) => self.storage.label(pos) == id,
                // A name that never occurs in the document matches nothing.
                None => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::NokStorage;
    use xmlkit::Document;
    use xpathkit::parse;

    /// The XML tree of Figure 2(a) in the paper.
    fn figure2_storage() -> NokStorage {
        NokStorage::from_document(&xmlkit::samples::figure2_document())
    }

    fn count(s: &NokStorage, q: &str) -> u64 {
        Evaluator::new(s).count(&parse(q).unwrap())
    }

    #[test]
    fn simple_paths() {
        let s = figure2_storage();
        assert_eq!(count(&s, "/a"), 1);
        assert_eq!(count(&s, "/a/c"), 2);
        assert_eq!(count(&s, "/a/c/s"), 5);
        assert_eq!(count(&s, "/a/c/s/s"), 2);
        assert_eq!(count(&s, "/a/t"), 1);
        assert_eq!(count(&s, "/a/u"), 1);
        assert_eq!(count(&s, "/nonexistent"), 0);
        assert_eq!(count(&s, "/a/missing"), 0);
    }

    #[test]
    fn descendant_queries() {
        let s = figure2_storage();
        // Observation 3 of the paper: //s//s//p returns 5 elements on the
        // Figure 2(a) tree.
        assert_eq!(count(&s, "//s//s//p"), 5);
        assert_eq!(count(&s, "//c"), 2);
        assert_eq!(count(&s, "//s"), 9);
    }

    #[test]
    fn wildcard_queries() {
        let s = figure2_storage();
        let total = s.len() as u64;
        assert_eq!(count(&s, "//*"), total);
        assert_eq!(count(&s, "/a/*"), 4);
        assert_eq!(count(&s, "/*"), 1);
    }

    #[test]
    fn branching_queries() {
        let s = NokStorage::from_document(
            &Document::parse_str("<r><x><k/><v/></x><x><k/></x><x><v/></x></r>").unwrap(),
        );
        assert_eq!(count(&s, "/r/x"), 3);
        assert_eq!(count(&s, "/r/x[k]"), 2);
        assert_eq!(count(&s, "/r/x[k][v]"), 1);
        assert_eq!(count(&s, "/r/x[k]/v"), 1);
        assert_eq!(count(&s, "/r[x]"), 1);
        assert_eq!(count(&s, "/r[missing]"), 0);
    }

    #[test]
    fn nested_predicates() {
        let s = NokStorage::from_document(
            &Document::parse_str("<r><a><b><c/></b></a><a><b/></a></r>").unwrap(),
        );
        assert_eq!(count(&s, "/r/a[b[c]]"), 1);
        assert_eq!(count(&s, "/r/a[b]"), 2);
        assert_eq!(count(&s, "/r/a[//c]"), 1);
    }

    #[test]
    fn descendant_predicate_and_duplicates() {
        // //s//p from nested s nodes: the same p is reachable from several
        // s ancestors but must be counted once.
        let s =
            NokStorage::from_document(&Document::parse_str("<a><s><s><p/></s></s></a>").unwrap());
        assert_eq!(count(&s, "//s//p"), 1);
        // Both s elements have a descendant p, so //s[//p] returns 2.
        assert_eq!(count(&s, "//s[//p]"), 2);
        assert_eq!(count(&s, "//s[p]"), 1);
    }

    #[test]
    fn matches_are_document_order_unique() {
        let s = figure2_storage();
        let eval = Evaluator::new(&s);
        let m = eval.matches(&parse("//s//p").unwrap());
        let mut sorted = m.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(m, sorted);
    }

    #[test]
    fn recursive_query_on_recursive_document() {
        let s = figure2_storage();
        // //s//s: s elements that have an s ancestor.
        assert_eq!(count(&s, "//s//s"), 4);
        // //s//s//s: recursion level 2.
        assert_eq!(count(&s, "//s//s//s"), 2);
    }

    #[test]
    fn unknown_names_match_nothing() {
        let s = figure2_storage();
        assert_eq!(count(&s, "//zzz"), 0);
        assert_eq!(count(&s, "/a/c[zzz]"), 0);
    }
}
