//! The TreeSketch summary graph.
//!
//! One node per partition class, annotated with the class's element count;
//! one directed edge per observed (parent class, child class) pair,
//! annotated with
//!
//! * the **average child count** — how many children in the target class
//!   an element of the source class has on average, and
//! * the **presence fraction** — the fraction of source-class elements
//!   with at least one child in the target class (1.0 on an unmerged
//!   count-stable partition, possibly lower after merging).
//!
//! Unlike the XSEED kernel, none of these statistics are indexed by
//! recursion level.

use crate::partition::CountStablePartition;
use std::collections::HashMap;
use xmlkit::names::{LabelId, NameTable};
use xmlkit::tree::Document;

/// A class (node) of the summary graph.
#[derive(Debug, Clone)]
pub struct SummaryClass {
    /// The element label shared by all members of the class.
    pub label: LabelId,
    /// Number of document elements in the class.
    pub count: u64,
}

/// An edge of the summary graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryEdge {
    /// Target class.
    pub to: u32,
    /// Average number of children in the target class per source element.
    pub avg_count: f64,
    /// Fraction of source elements with at least one child in the target
    /// class.
    pub presence: f64,
}

/// The TreeSketch summary graph.
#[derive(Debug, Clone)]
pub struct SummaryGraph {
    classes: Vec<SummaryClass>,
    /// Out-edges per class.
    out_edges: Vec<Vec<SummaryEdge>>,
    root_class: u32,
    names: NameTable,
}

impl SummaryGraph {
    /// Builds the summary graph of `doc` over `partition`.
    pub fn from_partition(doc: &Document, partition: &CountStablePartition) -> Self {
        let class_count = partition.class_count();
        let mut counts = vec![0u64; class_count];
        let mut labels = vec![LabelId(0); class_count];
        // child_totals[(u, v)] = total children in v over elements of u;
        // parents_with[(u, v)] = number of u elements with >= 1 child in v.
        let mut child_totals: HashMap<(u32, u32), u64> = HashMap::new();
        let mut parents_with: HashMap<(u32, u32), u64> = HashMap::new();

        for node in doc.preorder() {
            let u = partition.class_of(node);
            counts[u as usize] += 1;
            labels[u as usize] = doc.label(node);
            let mut local: HashMap<u32, u64> = HashMap::new();
            for child in doc.children(node) {
                let v = partition.class_of(child);
                *local.entry(v).or_insert(0) += 1;
            }
            for (v, cnt) in local {
                *child_totals.entry((u, v)).or_insert(0) += cnt;
                *parents_with.entry((u, v)).or_insert(0) += 1;
            }
        }

        let classes: Vec<SummaryClass> = counts
            .iter()
            .zip(labels.iter())
            .map(|(&count, &label)| SummaryClass { label, count })
            .collect();
        let mut out_edges: Vec<Vec<SummaryEdge>> = vec![Vec::new(); class_count];
        for ((u, v), total) in &child_totals {
            let source_count = counts[*u as usize] as f64;
            let with = parents_with[&(*u, *v)] as f64;
            out_edges[*u as usize].push(SummaryEdge {
                to: *v,
                avg_count: *total as f64 / source_count,
                presence: with / source_count,
            });
        }
        for edges in &mut out_edges {
            edges.sort_by_key(|e| e.to);
        }

        SummaryGraph {
            classes,
            out_edges,
            root_class: partition.class_of(doc.root()),
            names: doc.names().clone(),
        }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// The class containing the document root.
    pub fn root_class(&self) -> u32 {
        self.root_class
    }

    /// Access a class.
    pub fn class(&self, id: u32) -> &SummaryClass {
        &self.classes[id as usize]
    }

    /// Out-edges of a class.
    pub fn out_edges(&self, id: u32) -> &[SummaryEdge] {
        &self.out_edges[id as usize]
    }

    /// All class ids.
    pub fn classes(&self) -> impl Iterator<Item = u32> {
        0..self.classes.len() as u32
    }

    /// The shared name table.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Label id for an element name, if it occurs in the document.
    pub fn label_of(&self, name: &str) -> Option<LabelId> {
        self.names.lookup(name)
    }

    /// Memory footprint: 8 bytes per class (label + element count) and 12
    /// bytes per edge (target id + two packed statistics), plus the name
    /// strings — the same accounting style used for the XSEED kernel.
    pub fn size_bytes(&self) -> usize {
        let name_bytes: usize = self.names.iter().map(|(_, n)| n.len()).sum();
        8 * self.class_count() + 12 * self.edge_count() + name_bytes
    }

    // -------------------------------------------------------------
    // Mutation used by the merging pass
    // -------------------------------------------------------------

    /// Replaces the classes and edges wholesale (used by merging).
    pub(crate) fn replace(
        &mut self,
        classes: Vec<SummaryClass>,
        out_edges: Vec<Vec<SummaryEdge>>,
        root_class: u32,
    ) {
        debug_assert_eq!(classes.len(), out_edges.len());
        self.classes = classes;
        self.out_edges = out_edges;
        self.root_class = root_class;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::samples::figure2_document;
    use xmlkit::Document;

    fn summary(xml: &str) -> (Document, SummaryGraph) {
        let doc = Document::parse_str(xml).unwrap();
        let p = CountStablePartition::compute(&doc);
        let s = SummaryGraph::from_partition(&doc, &p);
        (doc, s)
    }

    #[test]
    fn counts_sum_to_document_size() {
        let (doc, s) = summary("<r><x><k/><k/></x><x><k/></x><x/></r>");
        let total: u64 = s.classes().map(|c| s.class(c).count).sum();
        assert_eq!(total, doc.element_count() as u64);
    }

    #[test]
    fn unmerged_edges_have_full_presence() {
        let (_, s) = summary("<r><x><k/><k/></x><x><k/></x><x/></r>");
        for c in s.classes() {
            for e in s.out_edges(c) {
                assert!((e.presence - 1.0).abs() < 1e-9);
                assert!(e.avg_count >= 1.0);
            }
        }
    }

    #[test]
    fn root_class_is_singleton() {
        let doc = figure2_document();
        let p = CountStablePartition::compute(&doc);
        let s = SummaryGraph::from_partition(&doc, &p);
        assert_eq!(s.class(s.root_class()).count, 1);
        assert_eq!(s.names().name(s.class(s.root_class()).label), Some("a"));
    }

    #[test]
    fn size_grows_with_classes() {
        let (_, small) = summary("<r><x/></r>");
        let doc = figure2_document();
        let p = CountStablePartition::compute(&doc);
        let big = SummaryGraph::from_partition(&doc, &p);
        assert!(big.size_bytes() > small.size_bytes());
        assert!(small.size_bytes() > 0);
    }

    #[test]
    fn edge_statistics_are_averages() {
        // Two x elements: one with 2 k children, one with 1; plus an empty x.
        let (_, s) = summary("<r><x><k/><k/></x><x><k/></x><x/></r>");
        // In the count-stable partition the three x elements are in three
        // different classes, each with exact counts.
        let k_label = s.label_of("k").unwrap();
        let mut avgs: Vec<f64> = Vec::new();
        for c in s.classes() {
            for e in s.out_edges(c) {
                if s.class(e.to).label == k_label {
                    avgs.push(e.avg_count);
                }
            }
        }
        avgs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(avgs, vec![1.0, 2.0]);
    }
}
