//! Count-stable partition of the document elements.
//!
//! A partition of the element set is *count stable* when, for any two
//! classes `U` and `V`, every element of `U` has the same number of
//! children in `V`. TreeSketch starts from the coarsest count-stable
//! refinement of the label partition (computed here by iterated signature
//! refinement) because a summary built on it answers twig queries exactly;
//! the budgeted synopsis is obtained afterwards by merging classes.

use std::collections::HashMap;
use xmlkit::tree::{Document, NodeId};

/// A partition of the document's elements into classes, each class holding
/// elements with the same label and (recursively) count-identical child
/// distributions.
#[derive(Debug, Clone)]
pub struct CountStablePartition {
    /// Class id of every element, indexed by `NodeId` index.
    class_of: Vec<u32>,
    /// Number of classes.
    class_count: usize,
}

impl CountStablePartition {
    /// Computes the coarsest count-stable refinement of the label
    /// partition by fixpoint signature refinement.
    pub fn compute(doc: &Document) -> Self {
        let n = doc.element_count();
        // Initial partition: by label.
        let mut class_of: Vec<u32> = (0..n).map(|i| doc.label(NodeId(i as u32)).0).collect();
        let mut class_count = doc.names().len();

        loop {
            // Signature of an element: (its class, sorted (child class, count) pairs).
            let mut signatures: HashMap<(u32, Vec<(u32, u32)>), u32> = HashMap::new();
            let mut next_class_of = vec![0u32; n];
            let mut next_count = 0u32;
            for i in 0..n {
                let node = NodeId(i as u32);
                let mut child_counts: HashMap<u32, u32> = HashMap::new();
                for c in doc.children(node) {
                    *child_counts.entry(class_of[c.index()]).or_insert(0) += 1;
                }
                let mut child_vec: Vec<(u32, u32)> = child_counts.into_iter().collect();
                child_vec.sort_unstable();
                let key = (class_of[i], child_vec);
                let id = *signatures.entry(key).or_insert_with(|| {
                    let id = next_count;
                    next_count += 1;
                    id
                });
                next_class_of[i] = id;
            }
            let stabilized = next_count as usize == class_count;
            class_of = next_class_of;
            class_count = next_count as usize;
            if stabilized {
                break;
            }
        }

        CountStablePartition {
            class_of,
            class_count,
        }
    }

    /// Class of an element.
    pub fn class_of(&self, node: NodeId) -> u32 {
        self.class_of[node.index()]
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.class_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::samples::figure2_document;
    use xmlkit::Document;

    #[test]
    fn identical_subtrees_share_a_class() {
        let doc = Document::parse_str("<r><x><k/></x><x><k/></x></r>").unwrap();
        let p = CountStablePartition::compute(&doc);
        let xs: Vec<NodeId> = doc.preorder().filter(|&n| doc.name(n) == "x").collect();
        assert_eq!(p.class_of(xs[0]), p.class_of(xs[1]));
    }

    #[test]
    fn different_child_counts_split_classes() {
        let doc = Document::parse_str("<r><x><k/><k/></x><x><k/></x><x/></r>").unwrap();
        let p = CountStablePartition::compute(&doc);
        let xs: Vec<NodeId> = doc.preorder().filter(|&n| doc.name(n) == "x").collect();
        assert_ne!(p.class_of(xs[0]), p.class_of(xs[1]));
        assert_ne!(p.class_of(xs[1]), p.class_of(xs[2]));
        assert_ne!(p.class_of(xs[0]), p.class_of(xs[2]));
    }

    #[test]
    fn classes_never_mix_labels() {
        let doc = figure2_document();
        let p = CountStablePartition::compute(&doc);
        let mut label_of_class: HashMap<u32, &str> = HashMap::new();
        for n in doc.preorder() {
            let class = p.class_of(n);
            let name = doc.name(n);
            if let Some(prev) = label_of_class.insert(class, name) {
                assert_eq!(prev, name, "class {class} mixes labels");
            }
        }
    }

    #[test]
    fn count_stability_holds() {
        // Every element of a class has the same per-class child counts.
        let doc = figure2_document();
        let p = CountStablePartition::compute(&doc);
        let mut reference: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for n in doc.preorder() {
            let mut counts: HashMap<u32, u32> = HashMap::new();
            for c in doc.children(n) {
                *counts.entry(p.class_of(c)).or_insert(0) += 1;
            }
            let mut vec: Vec<(u32, u32)> = counts.into_iter().collect();
            vec.sort_unstable();
            match reference.get(&p.class_of(n)) {
                Some(prev) => assert_eq!(prev, &vec),
                None => {
                    reference.insert(p.class_of(n), vec);
                }
            }
        }
    }

    #[test]
    fn partition_size_bounds() {
        let doc = figure2_document();
        let p = CountStablePartition::compute(&doc);
        assert!(p.class_count() >= doc.names().len());
        assert!(p.class_count() <= doc.element_count());
        assert_eq!(p.element_count(), doc.element_count());
    }
}
