//! Count-stable partition of the document elements.
//!
//! A partition of the element set is *count stable* when, for any two
//! classes `U` and `V`, every element of `U` has the same number of
//! children in `V`. TreeSketch starts from the coarsest count-stable
//! refinement of the label partition (computed here by iterated signature
//! refinement) because a summary built on it answers twig queries exactly;
//! the budgeted synopsis is obtained afterwards by merging classes.

use std::collections::HashMap;
use xmlkit::tree::{Document, NodeId};

/// A partition of the document's elements into classes, each class holding
/// elements with the same label and (recursively) count-identical child
/// distributions.
#[derive(Debug, Clone)]
pub struct CountStablePartition {
    /// Class id of every element, indexed by `NodeId` index.
    class_of: Vec<u32>,
    /// Number of classes.
    class_count: usize,
}

impl CountStablePartition {
    /// Computes the coarsest count-stable refinement of the label
    /// partition by fixpoint signature refinement.
    pub fn compute(doc: &Document) -> Self {
        let n = doc.element_count();
        // Initial partition: by label.
        let mut partition = CountStablePartition {
            class_of: (0..n).map(|i| doc.label(NodeId(i as u32)).0).collect(),
            class_count: doc.names().len(),
        };
        loop {
            let before = partition.class_count;
            partition = partition.refine_step(doc);
            if partition.class_count == before {
                break;
            }
        }
        partition
    }

    /// One signature-refinement pass: splits classes by the per-class
    /// child-count distribution of their members, renumbering the result
    /// classes by first occurrence in document order. At the count-stable
    /// fixpoint this is the identity (same `class_of` vector, not merely
    /// the same class count), because each element's signature then
    /// determines — and is determined by — its current class, and
    /// first-occurrence renumbering of an already first-occurrence-ordered
    /// partition changes nothing.
    pub fn refine_step(&self, doc: &Document) -> Self {
        let n = self.class_of.len();
        // Signature of an element: (its class, sorted (child class, count) pairs).
        let mut signatures: HashMap<(u32, Vec<(u32, u32)>), u32> = HashMap::new();
        let mut next_class_of = Vec::with_capacity(n);
        let mut next_count = 0u32;
        for (i, &class) in self.class_of.iter().enumerate() {
            let node = NodeId(i as u32);
            let mut child_counts: HashMap<u32, u32> = HashMap::new();
            for c in doc.children(node) {
                *child_counts.entry(self.class_of[c.index()]).or_insert(0) += 1;
            }
            let mut child_vec: Vec<(u32, u32)> = child_counts.into_iter().collect();
            child_vec.sort_unstable();
            let key = (class, child_vec);
            let id = *signatures.entry(key).or_insert_with(|| {
                let id = next_count;
                next_count += 1;
                id
            });
            next_class_of.push(id);
        }
        CountStablePartition {
            class_of: next_class_of,
            class_count: next_count as usize,
        }
    }

    /// Raw class-id vector, indexed by `NodeId` index. Exposed so callers
    /// (tests, diffing tools) can compare partitions element-for-element.
    pub fn classes(&self) -> &[u32] {
        &self.class_of
    }

    /// Class of an element.
    pub fn class_of(&self, node: NodeId) -> u32 {
        self.class_of[node.index()]
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.class_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::samples::figure2_document;
    use xmlkit::Document;

    #[test]
    fn identical_subtrees_share_a_class() {
        let doc = Document::parse_str("<r><x><k/></x><x><k/></x></r>").unwrap();
        let p = CountStablePartition::compute(&doc);
        let xs: Vec<NodeId> = doc.preorder().filter(|&n| doc.name(n) == "x").collect();
        assert_eq!(p.class_of(xs[0]), p.class_of(xs[1]));
    }

    #[test]
    fn different_child_counts_split_classes() {
        let doc = Document::parse_str("<r><x><k/><k/></x><x><k/></x><x/></r>").unwrap();
        let p = CountStablePartition::compute(&doc);
        let xs: Vec<NodeId> = doc.preorder().filter(|&n| doc.name(n) == "x").collect();
        assert_ne!(p.class_of(xs[0]), p.class_of(xs[1]));
        assert_ne!(p.class_of(xs[1]), p.class_of(xs[2]));
        assert_ne!(p.class_of(xs[0]), p.class_of(xs[2]));
    }

    #[test]
    fn classes_never_mix_labels() {
        let doc = figure2_document();
        let p = CountStablePartition::compute(&doc);
        let mut label_of_class: HashMap<u32, &str> = HashMap::new();
        for n in doc.preorder() {
            let class = p.class_of(n);
            let name = doc.name(n);
            if let Some(prev) = label_of_class.insert(class, name) {
                assert_eq!(prev, name, "class {class} mixes labels");
            }
        }
    }

    #[test]
    fn count_stability_holds() {
        // Every element of a class has the same per-class child counts.
        let doc = figure2_document();
        let p = CountStablePartition::compute(&doc);
        let mut reference: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for n in doc.preorder() {
            let mut counts: HashMap<u32, u32> = HashMap::new();
            for c in doc.children(n) {
                *counts.entry(p.class_of(c)).or_insert(0) += 1;
            }
            let mut vec: Vec<(u32, u32)> = counts.into_iter().collect();
            vec.sort_unstable();
            match reference.get(&p.class_of(n)) {
                Some(prev) => assert_eq!(prev, &vec),
                None => {
                    reference.insert(p.class_of(n), vec);
                }
            }
        }
    }

    #[test]
    fn refine_step_is_identity_at_the_fixpoint() {
        for xml in [
            "<r><x><k/></x><x><k/></x></r>",
            "<r><x><k/><k/></x><x><k/></x><x/></r>",
        ] {
            let doc = Document::parse_str(xml).unwrap();
            let p = CountStablePartition::compute(&doc);
            let again = p.refine_step(&doc);
            assert_eq!(p.classes(), again.classes());
            assert_eq!(p.class_count(), again.class_count());
        }
        let doc = figure2_document();
        let p = CountStablePartition::compute(&doc);
        let again = p.refine_step(&doc);
        assert_eq!(p.classes(), again.classes());
    }

    #[test]
    fn partition_size_bounds() {
        let doc = figure2_document();
        let p = CountStablePartition::compute(&doc);
        assert!(p.class_count() >= doc.names().len());
        assert!(p.class_count() <= doc.element_count());
        assert_eq!(p.element_count(), doc.element_count());
    }
}
