//! Greedy merging of summary classes to fit a memory budget.
//!
//! The original TreeSketch formulates budgeted summarization as an
//! optimization problem (NP-hard) and applies heuristic clustering; the
//! paper notes the resulting construction times are prohibitive on large
//! or complex data (Table 2 reports hours, or DNF for Treebank). This
//! implementation uses a simpler greedy scheme that preserves the
//! essential behaviour — same-label classes with similar child statistics
//! are merged first, and statistics become averages — while keeping
//! construction fast enough to run the experiments:
//!
//! 1. group classes by label;
//! 2. within a group, sort by total average child count (a cheap scalar
//!    signature of the class's structure);
//! 3. merge adjacent pairs, weights proportional to class sizes;
//! 4. repeat passes until the summary fits the byte budget or no further
//!    merge is possible (one class per label).

use crate::summary::{SummaryClass, SummaryEdge, SummaryGraph};
use std::collections::HashMap;

/// Merges classes of `summary` until its serialized size fits
/// `budget_bytes` (or until every label has a single class). Returns the
/// number of merge operations performed.
pub fn merge_to_budget(summary: &mut SummaryGraph, budget_bytes: usize) -> usize {
    let mut merges = 0;
    // Each pass halves (roughly) the number of classes per label, so the
    // loop is logarithmic in the largest per-label class count; it runs
    // to fixpoint — budget met, or a pass with nothing left to merge.
    loop {
        if summary.size_bytes() <= budget_bytes {
            break;
        }
        let performed = merge_pass(summary);
        merges += performed;
        if performed == 0 {
            break;
        }
    }
    merges
}

/// One merging pass: merge adjacent same-label classes. Returns the number
/// of merges performed.
fn merge_pass(summary: &mut SummaryGraph) -> usize {
    let class_count = summary.class_count();
    if class_count <= 1 {
        return 0;
    }

    // Order classes within each label group by total average child count.
    let mut by_label: HashMap<u32, Vec<u32>> = HashMap::new();
    for c in summary.classes() {
        by_label
            .entry(summary.class(c).label.0)
            .or_default()
            .push(c);
    }
    for group in by_label.values_mut() {
        group.sort_by(|&a, &b| {
            let ta: f64 = summary.out_edges(a).iter().map(|e| e.avg_count).sum();
            let tb: f64 = summary.out_edges(b).iter().map(|e| e.avg_count).sum();
            ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    // Union-find-lite: target[c] = representative class after this pass.
    let mut target: Vec<u32> = (0..class_count as u32).collect();
    let mut merges = 0;
    for group in by_label.values() {
        let mut i = 0;
        while i + 1 < group.len() {
            target[group[i + 1] as usize] = group[i];
            merges += 1;
            i += 2;
        }
    }
    if merges == 0 {
        return 0;
    }

    // Compact representatives into new dense ids.
    let mut new_id: Vec<Option<u32>> = vec![None; class_count];
    let mut next = 0u32;
    for c in 0..class_count as u32 {
        let rep = target[c as usize];
        if new_id[rep as usize].is_none() {
            new_id[rep as usize] = Some(next);
            next += 1;
        }
    }
    let resolve = |c: u32| new_id[target[c as usize] as usize].expect("representative assigned");

    // Rebuild classes.
    let mut new_classes: Vec<SummaryClass> = Vec::with_capacity(next as usize);
    for _ in 0..next {
        new_classes.push(SummaryClass {
            label: xmlkit::names::LabelId(0),
            count: 0,
        });
    }
    for c in summary.classes() {
        let id = resolve(c) as usize;
        new_classes[id].label = summary.class(c).label;
        new_classes[id].count += summary.class(c).count;
    }

    // Rebuild edges with size-weighted averaging of source statistics and
    // summation over merged targets.
    let mut totals: HashMap<(u32, u32), f64> = HashMap::new();
    let mut with_child: HashMap<(u32, u32), f64> = HashMap::new();
    for c in summary.classes() {
        let src = resolve(c);
        let src_count = summary.class(c).count as f64;
        for e in summary.out_edges(c) {
            let dst = resolve(e.to);
            *totals.entry((src, dst)).or_insert(0.0) += e.avg_count * src_count;
            *with_child.entry((src, dst)).or_insert(0.0) += e.presence * src_count;
        }
    }
    let mut new_edges: Vec<Vec<SummaryEdge>> = vec![Vec::new(); next as usize];
    for ((src, dst), total) in &totals {
        let src_count = new_classes[*src as usize].count as f64;
        new_edges[*src as usize].push(SummaryEdge {
            to: *dst,
            avg_count: total / src_count,
            presence: (with_child[&(*src, *dst)] / src_count).min(1.0),
        });
    }
    for edges in &mut new_edges {
        edges.sort_by_key(|e| e.to);
    }

    let new_root = resolve(summary.root_class());
    summary.replace(new_classes, new_edges, new_root);
    merges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::CountStablePartition;
    use xmlkit::samples::figure2_document;
    use xmlkit::Document;

    fn build(doc: &Document) -> SummaryGraph {
        let p = CountStablePartition::compute(doc);
        SummaryGraph::from_partition(doc, &p)
    }

    #[test]
    fn merging_reaches_minimum_when_budget_is_tiny() {
        let doc = figure2_document();
        let mut summary = build(&doc);
        merge_to_budget(&mut summary, 1);
        // At most one class per label remains.
        assert!(summary.class_count() <= doc.names().len());
        // Element counts are preserved.
        let total: u64 = summary.classes().map(|c| summary.class(c).count).sum();
        assert_eq!(total, doc.element_count() as u64);
    }

    #[test]
    fn merging_preserves_child_totals() {
        // Total expected children (count * avg) is invariant under merging.
        let doc = figure2_document();
        let unmerged = build(&doc);
        let expected: f64 = unmerged
            .classes()
            .map(|c| {
                let n = unmerged.class(c).count as f64;
                unmerged
                    .out_edges(c)
                    .iter()
                    .map(|e| e.avg_count * n)
                    .sum::<f64>()
            })
            .sum();
        let mut merged = build(&doc);
        merge_to_budget(&mut merged, 1);
        let got: f64 = merged
            .classes()
            .map(|c| {
                let n = merged.class(c).count as f64;
                merged
                    .out_edges(c)
                    .iter()
                    .map(|e| e.avg_count * n)
                    .sum::<f64>()
            })
            .sum();
        assert!((expected - got).abs() < 1e-6);
    }

    #[test]
    fn no_merge_needed_when_budget_is_large() {
        let doc = figure2_document();
        let mut summary = build(&doc);
        let before = summary.class_count();
        let merges = merge_to_budget(&mut summary, usize::MAX);
        assert_eq!(merges, 0);
        assert_eq!(summary.class_count(), before);
    }

    #[test]
    fn presence_stays_within_unit_interval() {
        let doc = figure2_document();
        let mut summary = build(&doc);
        merge_to_budget(&mut summary, 1);
        for c in summary.classes() {
            for e in summary.out_edges(c) {
                assert!(e.presence > 0.0 && e.presence <= 1.0);
            }
        }
    }

    #[test]
    fn many_classes_per_label_merge_to_fixpoint() {
        // A document whose <x> elements all have distinct child counts:
        // count-stable refinement keeps every one in its own class, so a
        // single label owns hundreds of classes. The budget loop must run
        // however many passes that takes (it used to stop after a fixed
        // pass cap) and land on a true fixpoint: budget met or nothing
        // left to merge — in either case one more pass performs nothing.
        let mut xml = String::from("<r>");
        for i in 0..300 {
            xml.push_str("<x>");
            for _ in 0..i {
                xml.push_str("<y/>");
            }
            xml.push_str("</x>");
        }
        xml.push_str("</r>");
        let doc = Document::parse_str(&xml).unwrap();
        let mut summary = build(&doc);
        assert!(summary.class_count() > 300, "one class per distinct shape");

        merge_to_budget(&mut summary, 1);
        // Fixpoint: at most one class per label remains, and another pass
        // is the identity.
        assert!(summary.class_count() <= doc.names().len());
        assert_eq!(merge_pass(&mut summary), 0);
        // Element counts survive the whole cascade.
        let total: u64 = summary.classes().map(|c| summary.class(c).count).sum();
        assert_eq!(total, doc.element_count() as u64);
    }

    #[test]
    fn root_class_survives_merging() {
        let doc = figure2_document();
        let mut summary = build(&doc);
        merge_to_budget(&mut summary, 1);
        let root = summary.root_class();
        assert_eq!(summary.names().name(summary.class(root).label), Some("a"));
    }
}
