//! Cardinality estimation over the TreeSketch summary graph.
//!
//! The estimator walks the summary graph step by step, maintaining an
//! estimated element count per class:
//!
//! * a child-axis step multiplies each class's count by the average child
//!   count of the matching out-edges;
//! * a descendant-axis step expands transitively through the graph. The
//!   summary has no recursion-level information, so on recursive data the
//!   expansion is bounded by a fixed depth and a contribution threshold —
//!   exactly the place where TreeSketch loses accuracy relative to XSEED;
//! * branching predicates multiply by the probability that an element of
//!   the class has the required child (the edge presence fraction,
//!   combined multiplicatively along predicate paths).

use crate::summary::SummaryGraph;
use std::collections::HashMap;
use xmlkit::names::LabelId;
use xpathkit::ast::{Axis, NodeTest, PathExpr, Step};

/// Maximum depth of a descendant-axis expansion. The summary graph may be
/// cyclic after merging (and is cyclic for recursive documents), so the
/// expansion must be cut off; 32 levels is deeper than any of the
/// evaluated documents.
const MAX_DESCENDANT_DEPTH: usize = 32;

/// Contributions below this value are dropped during descendant expansion.
const MIN_CONTRIBUTION: f64 = 1e-6;

/// Estimates the cardinality of `expr` over `summary`.
pub fn estimate(summary: &SummaryGraph, expr: &PathExpr) -> f64 {
    let mut memo: PredicateMemo = HashMap::new();
    let mut current: HashMap<u32, f64> = HashMap::new();
    // First step: anchored at the document node.
    let first = &expr.steps[0];
    match first.axis {
        Axis::Child => {
            let root = summary.root_class();
            if test_matches(summary, &first.test, summary.class(root).label) {
                current.insert(root, 1.0);
            }
        }
        Axis::Descendant => {
            for c in summary.classes() {
                if test_matches(summary, &first.test, summary.class(c).label) {
                    current.insert(c, summary.class(c).count as f64);
                }
            }
        }
    }
    apply_predicates(summary, &mut current, first, &mut memo);

    for step in &expr.steps[1..] {
        let mut next: HashMap<u32, f64> = HashMap::new();
        match step.axis {
            Axis::Child => {
                for (&class, &count) in &current {
                    for edge in summary.out_edges(class) {
                        if test_matches(summary, &step.test, summary.class(edge.to).label) {
                            *next.entry(edge.to).or_insert(0.0) += count * edge.avg_count;
                        }
                    }
                }
            }
            Axis::Descendant => {
                descend(summary, &current, &step.test, &mut next);
            }
        }
        apply_predicates(summary, &mut next, step, &mut memo);
        current = next;
        if current.is_empty() {
            return 0.0;
        }
    }
    current.values().sum()
}

/// Transitive expansion for a descendant-axis step: level-by-level
/// propagation of expected counts through the summary graph (dynamic
/// programming over classes rather than path enumeration, so cyclic
/// summaries cost `O(depth × edges)`).
fn descend(
    summary: &SummaryGraph,
    start: &HashMap<u32, f64>,
    test: &NodeTest,
    out: &mut HashMap<u32, f64>,
) {
    let mut frontier: HashMap<u32, f64> = start.clone();
    for _ in 0..MAX_DESCENDANT_DEPTH {
        let mut next: HashMap<u32, f64> = HashMap::new();
        for (&class, &count) in &frontier {
            if count < MIN_CONTRIBUTION {
                continue;
            }
            for edge in summary.out_edges(class) {
                let reached = count * edge.avg_count;
                if reached < MIN_CONTRIBUTION {
                    continue;
                }
                if test_matches(summary, test, summary.class(edge.to).label) {
                    *out.entry(edge.to).or_insert(0.0) += reached;
                }
                *next.entry(edge.to).or_insert(0.0) += reached;
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
}

/// Memo for predicate probabilities, keyed by (class, suffix pointer,
/// suffix length, remaining depth budget bucket).
type PredicateMemo = HashMap<(u32, usize, usize, usize), f64>;

/// Multiplies the counts by the selectivity of each branching predicate.
fn apply_predicates(
    summary: &SummaryGraph,
    counts: &mut HashMap<u32, f64>,
    step: &Step,
    memo: &mut PredicateMemo,
) {
    if step.predicates.is_empty() {
        return;
    }
    counts.retain(|&class, count| {
        let mut factor = 1.0;
        for pred in &step.predicates {
            let p = predicate_probability(summary, class, &pred.steps, 0, memo);
            if p <= 0.0 {
                return false;
            }
            factor *= p.min(1.0);
        }
        *count *= factor;
        *count > 0.0
    });
}

/// Probability that an element of `class` satisfies the predicate path
/// starting at `steps[0]`. Memoized on (class, suffix, depth) so merged
/// (cyclic) summaries stay polynomial.
fn predicate_probability(
    summary: &SummaryGraph,
    class: u32,
    steps: &[Step],
    depth: usize,
    memo: &mut PredicateMemo,
) -> f64 {
    let Some(step) = steps.first() else {
        return 1.0;
    };
    if depth >= MAX_DESCENDANT_DEPTH {
        return 0.0;
    }
    let key = (class, steps.as_ptr() as usize, steps.len(), depth);
    if let Some(&cached) = memo.get(&key) {
        return cached;
    }
    // Seed with 0 to cut cycles that revisit the same state before the
    // depth budget increases.
    memo.insert(key, 0.0);
    let mut best = 0.0f64;
    for edge in summary.out_edges(class) {
        if test_matches(summary, &step.test, summary.class(edge.to).label) {
            let mut p = edge.presence;
            for pred in &step.predicates {
                p *= predicate_probability(summary, edge.to, &pred.steps, depth + 1, memo).min(1.0);
            }
            p *= predicate_probability(summary, edge.to, &steps[1..], depth + 1, memo).min(1.0);
            best = best.max(p);
        }
        if step.axis == Axis::Descendant {
            // Skip a level: the descendant match may be deeper.
            let deeper =
                edge.presence * predicate_probability(summary, edge.to, steps, depth + 1, memo);
            best = best.max(deeper);
        }
    }
    memo.insert(key, best);
    best
}

fn test_matches(summary: &SummaryGraph, test: &NodeTest, label: LabelId) -> bool {
    match test {
        NodeTest::Wildcard => true,
        NodeTest::Name(n) => summary.label_of(n) == Some(label),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::CountStablePartition;
    use crate::summary::SummaryGraph;
    use xmlkit::samples::figure2_document;
    use xmlkit::Document;
    use xpathkit::parse;

    fn summary_of(doc: &Document) -> SummaryGraph {
        let p = CountStablePartition::compute(doc);
        SummaryGraph::from_partition(doc, &p)
    }

    fn est(summary: &SummaryGraph, q: &str) -> f64 {
        estimate(summary, &parse(q).unwrap())
    }

    #[test]
    fn unmerged_summary_is_exact_on_non_recursive_paths() {
        let doc = Document::parse_str(
            "<dblp><article><title/><pages/></article><article><title/></article></dblp>",
        )
        .unwrap();
        let s = summary_of(&doc);
        assert!((est(&s, "/dblp/article") - 2.0).abs() < 1e-9);
        assert!((est(&s, "/dblp/article/title") - 2.0).abs() < 1e-9);
        assert!((est(&s, "/dblp/article/pages") - 1.0).abs() < 1e-9);
        assert!((est(&s, "/dblp/article[pages]/title") - 1.0).abs() < 1e-9);
        assert!((est(&s, "//title") - 2.0).abs() < 1e-9);
    }

    #[test]
    fn descendant_first_step_uses_class_counts() {
        let doc = figure2_document();
        let s = summary_of(&doc);
        assert!((est(&s, "//s") - 9.0).abs() < 1e-9);
        assert!((est(&s, "//p") - 17.0).abs() < 1e-9);
    }

    #[test]
    fn recursive_descendant_queries_overestimate_without_recursion_awareness() {
        // On the recursive Figure 2 document, //s//s//p actually returns 5.
        // TreeSketch's summary does not track recursion levels, so its
        // estimate differs from the truth (it relies on transitive
        // expansion through the s classes).
        let doc = figure2_document();
        let s = summary_of(&doc);
        let estimate = est(&s, "//s//s//p");
        assert!(estimate.is_finite());
        assert!(estimate > 0.0);
        // It should NOT be exact — that is the gap XSEED closes.
        assert!((estimate - 5.0).abs() > 0.5, "estimate was {estimate}");
    }

    #[test]
    fn unknown_names_estimate_zero() {
        let doc = figure2_document();
        let s = summary_of(&doc);
        assert_eq!(est(&s, "/zzz"), 0.0);
        assert_eq!(est(&s, "/a/zzz"), 0.0);
        assert_eq!(est(&s, "/a/c[zzz]"), 0.0);
    }

    #[test]
    fn wildcards_count_all_children() {
        let doc = figure2_document();
        let s = summary_of(&doc);
        assert!((est(&s, "/a/*") - 4.0).abs() < 1e-9);
        assert!((est(&s, "//*") - 36.0).abs() < 1e-6);
    }

    #[test]
    fn predicates_never_increase_counts() {
        let doc = figure2_document();
        let s = summary_of(&doc);
        let base = est(&s, "/a/c/s/p");
        let with_pred = est(&s, "/a/c/s[t]/p");
        assert!(with_pred <= base + 1e-9);
        assert!(with_pred > 0.0);
    }
}
