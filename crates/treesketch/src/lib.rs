//! # treesketch — the TreeSketch baseline synopsis
//!
//! The XSEED paper compares against **TreeSketch** (Polyzotis, Garofalakis,
//! Ioannidis — SIGMOD 2004), the state-of-the-art synopsis for branching
//! path queries at the time, which subsumes XSketch for structural
//! summarization. The authors obtained the original C++ code from its
//! developers; since that code is not available, this crate is a from-
//! scratch Rust implementation of the TreeSketch idea, used as the
//! comparison baseline in the reproduced experiments:
//!
//! 1. partition the document elements into a **count-stable partition**
//!    ([`partition`]) — the coarsest refinement of the label partition in
//!    which every element of a class has the same number of children in
//!    every other class (a count-bisimulation);
//! 2. build the **summary graph** ([`summary`]) with one node per class
//!    and edges labeled with average child counts;
//! 3. **merge** classes greedily ([`merge`]) until the synopsis fits a
//!    byte budget, accepting estimation error in exchange for space;
//! 4. **estimate** cardinalities ([`estimate`]) by traversing the summary
//!    with average-count multiplication, the way TreeSketch answers twig
//!    queries from its count-stable graph.
//!
//! The crucial difference from XSEED — and the property the paper's
//! experiments exploit — is that TreeSketch is **not recursion aware**:
//! its per-edge statistics are not indexed by recursion level, so on
//! recursive documents (and after aggressive merging) descendant-axis
//! estimates degrade badly, while XSEED's kernel keeps them tight.
//!
//! ```
//! use xmlkit::Document;
//! use treesketch::TreeSketch;
//!
//! let doc = Document::parse_str("<r><x><k/></x><x><k/></x><x/></r>").unwrap();
//! let sketch = TreeSketch::build(&doc, None);
//! let q = xpathkit::parse("/r/x/k").unwrap();
//! assert!((sketch.estimate(&q) - 2.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
pub mod merge;
pub mod partition;
pub mod summary;

pub use partition::CountStablePartition;
pub use summary::SummaryGraph;

use xmlkit::tree::Document;
use xpathkit::ast::PathExpr;

/// The TreeSketch synopsis: a (possibly merged) count-stable summary graph.
#[derive(Debug, Clone)]
pub struct TreeSketch {
    summary: SummaryGraph,
    /// Number of merge operations performed to reach the budget.
    merges: usize,
}

impl TreeSketch {
    /// Builds a TreeSketch for `doc`. When `budget_bytes` is given, classes
    /// are merged greedily until the serialized summary fits.
    pub fn build(doc: &Document, budget_bytes: Option<usize>) -> Self {
        let partition = CountStablePartition::compute(doc);
        let mut summary = SummaryGraph::from_partition(doc, &partition);
        let merges = match budget_bytes {
            Some(budget) => merge::merge_to_budget(&mut summary, budget),
            None => 0,
        };
        TreeSketch { summary, merges }
    }

    /// Estimates the cardinality of a structural path query.
    pub fn estimate(&self, expr: &PathExpr) -> f64 {
        estimate::estimate(&self.summary, expr)
    }

    /// The underlying summary graph.
    pub fn summary(&self) -> &SummaryGraph {
        &self.summary
    }

    /// Memory footprint of the synopsis (compact serialized form).
    pub fn size_bytes(&self) -> usize {
        self.summary.size_bytes()
    }

    /// Number of classes in the summary.
    pub fn class_count(&self) -> usize {
        self.summary.class_count()
    }

    /// Number of merge operations performed during construction.
    pub fn merges(&self) -> usize {
        self.merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::samples::figure2_document;
    use xpathkit::parse;

    #[test]
    fn unmerged_sketch_is_exact_on_simple_paths() {
        let doc = figure2_document();
        let sketch = TreeSketch::build(&doc, None);
        for (q, expected) in [("/a", 1.0), ("/a/c", 2.0), ("/a/c/s", 5.0), ("/a/t", 1.0)] {
            let est = sketch.estimate(&parse(q).unwrap());
            assert!((est - expected).abs() < 1e-6, "{q}: {est} != {expected}");
        }
    }

    #[test]
    fn budget_reduces_size() {
        let doc = figure2_document();
        let unbounded = TreeSketch::build(&doc, None);
        let budget = unbounded.size_bytes() / 2;
        let bounded = TreeSketch::build(&doc, Some(budget));
        assert!(bounded.size_bytes() <= unbounded.size_bytes());
        assert!(bounded.class_count() <= unbounded.class_count());
        assert!(bounded.merges() > 0);
    }

    #[test]
    fn estimates_remain_finite_after_merging() {
        let doc = figure2_document();
        let bounded = TreeSketch::build(&doc, Some(64));
        for q in ["/a/c/s", "//s//p", "/a/c/s[t]/p", "//*"] {
            let est = bounded.estimate(&parse(q).unwrap());
            assert!(est.is_finite());
            assert!(est >= 0.0);
        }
    }
}
