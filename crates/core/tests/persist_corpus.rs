//! Fuzz-style corpus for the snapshot decoder: truncated, bit-flipped,
//! hostile-length, and plain random inputs must make [`decode_snapshot`]
//! return `Err` — never panic, never over-allocate (length fields are
//! bounds-checked against the remaining input before any allocation, so a
//! hostile length cannot reserve more memory than the input itself could
//! encode).
//!
//! The same hostility is pointed at [`Kernel::deserialize`] directly,
//! since the KERN section embeds it.

use proptest::prelude::*;
use xmlkit::samples::figure2_document;
use xseed_core::persist::{decode_snapshot, encode_snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use xseed_core::{HyperEdgeTable, Kernel, KernelBuilder, XseedConfig};

/// A representative full snapshot: kernel + budgeted HET + config +
/// retained document XML.
fn valid_snapshot() -> Vec<u8> {
    let kernel = KernelBuilder::from_document(&figure2_document());
    let mut het = HyperEdgeTable::new();
    for i in 0..8u64 {
        het.insert_simple(i, i * 10, 0.5, i as f64);
        het.insert_correlated(i, i * 3, 0.25, (i as f64) / 2.0);
    }
    het.set_budget(Some(10 * xseed_core::het::ENTRY_BYTES));
    let config = XseedConfig::default().with_memory_budget(64 * 1024);
    encode_snapshot(&kernel, Some(&het), &config, 7, Some("<a><b/><b/></a>"))
}

#[test]
fn every_truncation_of_a_valid_snapshot_errors() {
    let bytes = valid_snapshot();
    for len in 0..bytes.len() {
        assert!(
            decode_snapshot(&bytes[..len]).is_err(),
            "truncation to {len} bytes decoded successfully"
        );
    }
}

#[test]
fn every_truncation_of_a_valid_kernel_errors() {
    let bytes = KernelBuilder::from_document(&figure2_document()).serialize();
    for len in 0..bytes.len() {
        assert!(
            Kernel::deserialize(&bytes[..len]).is_err(),
            "kernel truncation to {len} bytes decoded successfully"
        );
    }
}

#[test]
fn hostile_lengths_rejected_everywhere() {
    // A huge varint planted as each section's length in turn; the decoder
    // must reject it via the bounds check, not attempt the allocation.
    let huge = [0xffu8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
    for tag in [*b"CONF", *b"KERN", *b"HETB", *b"DOCX", *b"ZZZZ"] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&tag);
        bytes.extend_from_slice(&huge);
        bytes.extend_from_slice(&[0u8; 4]);
        assert!(decode_snapshot(&bytes).is_err());
    }
}

fn check_bit_flip(seed: &[u8], byte_pick: usize, bit: usize) -> Result<(), TestCaseError> {
    let mut bytes = seed.to_vec();
    let idx = byte_pick % bytes.len();
    bytes[idx] ^= 1 << bit;
    // Every byte of the format is load-bearing: header fields are gated
    // directly, payload bytes by their section CRC. A single-bit flip
    // must surface as an error (and must not panic).
    prop_assert!(
        decode_snapshot(&bytes).is_err(),
        "bit {bit} of byte {idx} flipped and the snapshot still decoded"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn single_bit_flips_never_decode(byte_pick in 0usize..1_000_000, bit in 0usize..8) {
        check_bit_flip(&valid_snapshot(), byte_pick, bit)?;
    }

    #[test]
    fn random_tails_never_panic(tail in prop::collection::vec(0usize..256, 0..200)) {
        // Valid magic + version followed by arbitrary garbage: the decoder
        // must return (either way) without panicking.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend(tail.iter().map(|&b| b as u8));
        let _ = decode_snapshot(&bytes);
    }

    #[test]
    fn random_bytes_never_panic(raw in prop::collection::vec(0usize..256, 0..200)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = decode_snapshot(&bytes);
        let _ = Kernel::deserialize(&bytes);
    }

    #[test]
    fn kernel_bytes_with_garbage_prefix_replaced_never_panic(
        raw in prop::collection::vec(0usize..256, 0..64),
        splice in 0usize..1_000_000,
    ) {
        // Splice random bytes into the middle of a valid kernel stream:
        // the decoder may reject or (for benign splices) accept, but must
        // never panic or over-allocate.
        let mut bytes = KernelBuilder::from_document(&figure2_document()).serialize();
        let at = splice % bytes.len();
        let garbage: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        bytes.splice(at..at, garbage);
        let _ = Kernel::deserialize(&bytes);
    }
}
