//! Versioned, checksummed binary snapshot format for a whole synopsis.
//!
//! A snapshot bundles everything needed to serve a document again after a
//! restart: the kernel bytes ([`Kernel::serialize`]), the hyper-edge table
//! with its budget, the [`XseedConfig`], the epoch the synopsis was saved
//! at, and optionally the retained document as XML text (so maintenance
//! retention can spill to disk instead of holding the tree in RAM).
//!
//! ## Format
//!
//! ```text
//! magic   "XSEEDSNP"                     (8 bytes)
//! version u32 LE                          (currently 1)
//! section_count varint
//! per section:
//!   tag      4 bytes                      ("CONF" | "KERN" | "HETB" | "DOCX")
//!   length   varint                       (bounds-checked before any read)
//!   crc32    u32 LE                       (IEEE CRC-32 of the payload)
//!   payload  `length` bytes
//! ```
//!
//! Sections appear in the fixed order above; `CONF` and `KERN` are
//! required, `HETB` and `DOCX` optional. Integers inside payloads are
//! LEB128 varints, floats are IEEE-754 bit patterns as u64 LE.
//!
//! ## Decoder posture
//!
//! Snapshot bytes on disk are the system's first untrusted-input surface,
//! so [`decode_snapshot`] is paranoid: magic/version gates, per-section
//! CRCs, every length field bounds-checked against the remaining input
//! *before* any allocation, unknown/duplicate/out-of-order sections
//! rejected, payloads that underrun or overrun their declared length
//! rejected, non-finite floats rejected, and no trailing bytes tolerated.
//! On any malformed input it returns `Err` — it never panics and never
//! allocates more than the input could actually encode (the fuzz corpus
//! in `tests/persist_corpus.rs` pins this).
//!
//! ## Determinism
//!
//! Estimates from a decoded snapshot are bit-identical to the original:
//! the kernel round-trips its live edges in creation order, and the HET
//! round-trips entries in insertion order, which (together with the saved
//! budget and the stable residency sort) reproduces the exact resident
//! set.

use crate::config::XseedConfig;
use crate::het::{HetEntry, HetEntryKind, HyperEdgeTable};
use crate::kernel::serialize::{write_varint, Cursor, DecodeError};
use crate::kernel::Kernel;

/// Magic header identifying a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"XSEEDSNP";
/// Current format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Section tags in their mandatory file order.
const TAGS: [&[u8; 4]; 4] = [b"CONF", b"KERN", b"HETB", b"DOCX"];
const TAG_CONF: usize = 0;
const TAG_KERN: usize = 1;
const TAG_HETB: usize = 2;
const TAG_DOCX: usize = 3;

/// Minimum encoded size of one HET entry: 8-byte key + 1-byte kind +
/// at-least-1-byte cardinality varint + two 8-byte floats. Used to
/// fail-fast on hostile entry counts before any allocation.
const MIN_HET_ENTRY_BYTES: usize = 26;

/// Errors returned by [`decode_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The magic header was missing or wrong.
    BadMagic,
    /// The format version is newer than this decoder understands.
    UnsupportedVersion(u32),
    /// The byte stream ended before a declared field or section.
    Truncated,
    /// A section's CRC-32 did not match its payload; names the section.
    Checksum(&'static str),
    /// The bytes are structurally invalid; the message says how.
    Malformed(&'static str),
    /// The kernel section failed to decode.
    Kernel(DecodeError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "bad snapshot magic header"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            PersistError::Truncated => write!(f, "snapshot is truncated"),
            PersistError::Checksum(section) => {
                write!(f, "checksum mismatch in {section} section")
            }
            PersistError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            PersistError::Kernel(e) => write!(f, "kernel section invalid: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<DecodeError> for PersistError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Truncated => PersistError::Truncated,
            other => PersistError::Kernel(other),
        }
    }
}

/// Everything [`decode_snapshot`] recovers from a snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotParts {
    /// The decoded kernel.
    pub kernel: Kernel,
    /// The hyper-edge table, if one was saved; residency is already
    /// rebuilt under the saved budget.
    pub het: Option<HyperEdgeTable>,
    /// The estimator configuration.
    pub config: XseedConfig,
    /// The epoch the synopsis was saved at.
    pub epoch: u64,
    /// The retained document as XML text, if it was spilled into the
    /// snapshot.
    pub document_xml: Option<String>,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table generated at compile time — no external crates.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_section(out: &mut Vec<u8>, tag: usize, payload: &[u8]) {
    out.extend_from_slice(TAGS[tag]);
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn encode_conf(config: &XseedConfig, epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    out.extend_from_slice(&config.card_threshold.to_bits().to_le_bytes());
    out.extend_from_slice(&config.bsel_threshold.to_bits().to_le_bytes());
    write_varint(&mut out, config.max_branching_predicates as u64);
    match config.memory_budget {
        Some(bytes) => {
            out.push(1);
            write_varint(&mut out, bytes as u64);
        }
        None => out.push(0),
    }
    write_varint(&mut out, config.max_ept_nodes as u64);
    write_varint(&mut out, config.compiled_cache_capacity as u64);
    write_varint(&mut out, epoch);
    out
}

fn encode_het(het: &HyperEdgeTable) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + het.len() * 32);
    match het.budget() {
        Some(bytes) => {
            out.push(1);
            write_varint(&mut out, bytes as u64);
        }
        None => out.push(0),
    }
    write_varint(&mut out, het.len() as u64);
    // Insertion order: residency ties on equal error are broken by it,
    // so preserving it makes the reloaded resident set exact.
    for entry in het.entries() {
        out.extend_from_slice(&entry.key.to_le_bytes());
        out.push(match entry.kind {
            HetEntryKind::SimplePath => 0,
            HetEntryKind::Correlated => 1,
        });
        write_varint(&mut out, entry.cardinality);
        out.extend_from_slice(&entry.bsel.to_bits().to_le_bytes());
        out.extend_from_slice(&entry.error.to_bits().to_le_bytes());
    }
    out
}

/// Encodes a snapshot of the given parts. `epoch` is the synopsis epoch
/// to restore on load; `document_xml` optionally spills the retained
/// document into the snapshot.
pub fn encode_snapshot(
    kernel: &Kernel,
    het: Option<&HyperEdgeTable>,
    config: &XseedConfig,
    epoch: u64,
    document_xml: Option<&str>,
) -> Vec<u8> {
    let kernel_bytes = kernel.serialize();
    let mut out = Vec::with_capacity(64 + kernel_bytes.len());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    let sections = 2 + usize::from(het.is_some()) + usize::from(document_xml.is_some());
    write_varint(&mut out, sections as u64);
    push_section(&mut out, TAG_CONF, &encode_conf(config, epoch));
    push_section(&mut out, TAG_KERN, &kernel_bytes);
    if let Some(het) = het {
        push_section(&mut out, TAG_HETB, &encode_het(het));
    }
    if let Some(xml) = document_xml {
        push_section(&mut out, TAG_DOCX, xml.as_bytes());
    }
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn read_finite_f64(cursor: &mut Cursor<'_>) -> Result<f64, PersistError> {
    let value = f64::from_bits(cursor.read_u64_le()?);
    if !value.is_finite() {
        return Err(PersistError::Malformed("non-finite float"));
    }
    Ok(value)
}

fn decode_conf(payload: &[u8]) -> Result<(XseedConfig, u64), PersistError> {
    let mut cursor = Cursor::new(payload);
    let card_threshold = read_finite_f64(&mut cursor)?;
    let bsel_threshold = read_finite_f64(&mut cursor)?;
    let max_branching_predicates = cursor.read_varint()? as usize;
    let memory_budget = match cursor.read_u8()? {
        0 => None,
        1 => Some(cursor.read_varint()? as usize),
        _ => return Err(PersistError::Malformed("bad memory-budget flag")),
    };
    let max_ept_nodes = cursor.read_varint()? as usize;
    let compiled_cache_capacity = cursor.read_varint()? as usize;
    let epoch = cursor.read_varint()?;
    if !cursor.is_exhausted() {
        return Err(PersistError::Malformed("trailing bytes in CONF section"));
    }
    Ok((
        XseedConfig {
            card_threshold,
            bsel_threshold,
            max_branching_predicates,
            memory_budget,
            max_ept_nodes,
            compiled_cache_capacity,
        },
        epoch,
    ))
}

fn decode_het(payload: &[u8]) -> Result<HyperEdgeTable, PersistError> {
    let mut cursor = Cursor::new(payload);
    let budget = match cursor.read_u8()? {
        0 => None,
        1 => Some(cursor.read_varint()? as usize),
        _ => return Err(PersistError::Malformed("bad HET budget flag")),
    };
    let count = cursor.read_varint()? as usize;
    // Each entry consumes at least MIN_HET_ENTRY_BYTES, so a count the
    // remaining payload cannot possibly hold is rejected before any
    // entry is read or stored.
    if count > cursor.remaining() / MIN_HET_ENTRY_BYTES {
        return Err(PersistError::Truncated);
    }
    let mut het = HyperEdgeTable::new();
    for _ in 0..count {
        let key = cursor.read_u64_le()?;
        let kind = match cursor.read_u8()? {
            0 => HetEntryKind::SimplePath,
            1 => HetEntryKind::Correlated,
            _ => return Err(PersistError::Malformed("bad HET entry kind")),
        };
        let cardinality = cursor.read_varint()?;
        let bsel = read_finite_f64(&mut cursor)?;
        let error = read_finite_f64(&mut cursor)?;
        het.insert(HetEntry {
            key,
            kind,
            cardinality,
            bsel,
            error,
        });
    }
    if !cursor.is_exhausted() {
        return Err(PersistError::Malformed("trailing bytes in HETB section"));
    }
    het.set_budget(budget);
    Ok(het)
}

/// Decodes snapshot bytes produced by [`encode_snapshot`].
///
/// Returns `Err` on any malformed input; never panics.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotParts, PersistError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut cursor = Cursor::new(&bytes[SNAPSHOT_MAGIC.len()..]);
    let version = cursor.read_u32_le()?;
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let section_count = cursor.read_varint()? as usize;
    if section_count > TAGS.len() {
        return Err(PersistError::Malformed("too many sections"));
    }

    let mut conf: Option<(XseedConfig, u64)> = None;
    let mut kernel: Option<Kernel> = None;
    let mut het: Option<HyperEdgeTable> = None;
    let mut document_xml: Option<String> = None;
    // Sections must appear in TAGS order, each at most once.
    let mut next_tag = 0usize;
    for _ in 0..section_count {
        let raw_tag = cursor.read_bytes(4)?;
        let tag = TAGS[next_tag..]
            .iter()
            .position(|t| t.as_slice() == raw_tag)
            .map(|offset| next_tag + offset)
            .ok_or(PersistError::Malformed(
                "unknown, duplicate, or out-of-order section tag",
            ))?;
        next_tag = tag + 1;
        let len = cursor.read_varint()? as usize;
        let expected_crc = cursor.read_u32_le()?;
        // read_bytes bounds-checks `len` against the remaining input, so
        // a hostile length fails here before any allocation.
        let payload = cursor.read_bytes(len)?;
        if crc32(payload) != expected_crc {
            return Err(PersistError::Checksum(match tag {
                TAG_CONF => "CONF",
                TAG_KERN => "KERN",
                TAG_HETB => "HETB",
                _ => "DOCX",
            }));
        }
        match tag {
            TAG_CONF => conf = Some(decode_conf(payload)?),
            TAG_KERN => kernel = Some(Kernel::deserialize(payload)?),
            TAG_HETB => het = Some(decode_het(payload)?),
            _ => {
                let xml = std::str::from_utf8(payload)
                    .map_err(|_| PersistError::Malformed("DOCX section is not valid UTF-8"))?;
                document_xml = Some(xml.to_string());
            }
        }
    }
    if !cursor.is_exhausted() {
        return Err(PersistError::Malformed("trailing bytes after sections"));
    }
    let (config, epoch) = conf.ok_or(PersistError::Malformed("missing CONF section"))?;
    let kernel = kernel.ok_or(PersistError::Malformed("missing KERN section"))?;
    Ok(SnapshotParts {
        kernel,
        het,
        config,
        epoch,
        document_xml,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use xmlkit::samples::figure2_document;

    fn sample_kernel() -> Kernel {
        KernelBuilder::from_document(&figure2_document())
    }

    fn sample_het() -> HyperEdgeTable {
        let mut het = HyperEdgeTable::new();
        het.insert_simple(11, 100, 0.5, 3.0);
        het.insert_correlated(22, 40, 0.25, 7.0);
        het.insert_simple(33, 9, 0.75, 7.0);
        het.set_budget(Some(2 * crate::het::ENTRY_BYTES));
        het
    }

    fn sample_bytes() -> Vec<u8> {
        let config = XseedConfig::default()
            .with_memory_budget(25 * 1024)
            .with_card_threshold(5.0);
        encode_snapshot(
            &sample_kernel(),
            Some(&sample_het()),
            &config,
            42,
            Some("<a><b/></a>"),
        )
    }

    #[test]
    fn full_roundtrip() {
        let parts = decode_snapshot(&sample_bytes()).unwrap();
        assert_eq!(parts.epoch, 42);
        assert_eq!(parts.config.card_threshold, 5.0);
        assert_eq!(parts.config.memory_budget, Some(25 * 1024));
        assert_eq!(parts.document_xml.as_deref(), Some("<a><b/></a>"));
        assert_eq!(parts.kernel.to_string(), sample_kernel().to_string());
        let het = parts.het.unwrap();
        assert_eq!(het.len(), 3);
        assert_eq!(het.budget(), Some(2 * crate::het::ENTRY_BYTES));
        // Budget admits two entries; the tie at error 7.0 is broken by
        // insertion order, same as in the original.
        assert_eq!(het.resident_len(), 2);
        assert_eq!(het.lookup_correlated(22), Some(0.25));
        assert_eq!(het.lookup_simple(33), Some((9, 0.75)));
        assert_eq!(het.lookup_simple(11), None);
    }

    #[test]
    fn minimal_roundtrip_without_optional_sections() {
        let bytes = encode_snapshot(&sample_kernel(), None, &XseedConfig::default(), 0, None);
        let parts = decode_snapshot(&bytes).unwrap();
        assert!(parts.het.is_none());
        assert!(parts.document_xml.is_none());
        assert_eq!(parts.epoch, 0);
        assert_eq!(parts.config, XseedConfig::default());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decode_snapshot(b"nope").unwrap_err(),
            PersistError::BadMagic
        );
        let mut bytes = sample_bytes();
        bytes[0] ^= 0xff;
        assert_eq!(decode_snapshot(&bytes).unwrap_err(), PersistError::BadMagic);
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample_bytes();
        bytes[8] = 9;
        assert_eq!(
            decode_snapshot(&bytes).unwrap_err(),
            PersistError::UnsupportedVersion(9)
        );
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = sample_bytes();
        for len in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn payload_corruption_is_caught_by_crc() {
        let good = sample_bytes();
        // Flip one bit somewhere in the middle of the kernel payload.
        let mut bytes = good.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(decode_snapshot(&bytes).is_err());
    }

    #[test]
    fn hostile_section_length_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.push(1); // one section
        bytes.extend_from_slice(b"CONF");
        // Hostile length: ~u64::MAX as a varint.
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        bytes.extend_from_slice(&[0, 0, 0, 0]); // crc
        assert_eq!(
            decode_snapshot(&bytes).unwrap_err(),
            PersistError::Truncated
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_bytes();
        bytes.push(0);
        assert_eq!(
            decode_snapshot(&bytes).unwrap_err(),
            PersistError::Malformed("trailing bytes after sections")
        );
    }

    #[test]
    fn duplicate_section_rejected() {
        let kernel = sample_kernel();
        let conf = {
            let mut out = Vec::new();
            out.extend_from_slice(SNAPSHOT_MAGIC);
            out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
            out.push(3);
            let conf_payload = super::encode_conf(&XseedConfig::default(), 0);
            super::push_section(&mut out, TAG_CONF, &conf_payload);
            super::push_section(&mut out, TAG_CONF, &conf_payload);
            super::push_section(&mut out, TAG_KERN, &kernel.serialize());
            out
        };
        assert!(matches!(
            decode_snapshot(&conf).unwrap_err(),
            PersistError::Malformed(_)
        ));
    }

    #[test]
    fn missing_required_sections_rejected() {
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.push(1);
        super::push_section(
            &mut out,
            TAG_CONF,
            &super::encode_conf(&XseedConfig::default(), 0),
        );
        assert_eq!(
            decode_snapshot(&out).unwrap_err(),
            PersistError::Malformed("missing KERN section")
        );
    }

    #[test]
    fn non_finite_float_rejected() {
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.push(2);
        let mut conf = super::encode_conf(&XseedConfig::default(), 0);
        conf[..8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        super::push_section(&mut out, TAG_CONF, &conf);
        super::push_section(&mut out, TAG_KERN, &sample_kernel().serialize());
        assert_eq!(
            decode_snapshot(&out).unwrap_err(),
            PersistError::Malformed("non-finite float")
        );
    }

    #[test]
    fn hostile_het_entry_count_rejected() {
        let mut het_payload = Vec::new();
        het_payload.push(0); // no budget
        write_varint(&mut het_payload, u64::MAX); // hostile count
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.push(3);
        super::push_section(
            &mut out,
            TAG_CONF,
            &super::encode_conf(&XseedConfig::default(), 0),
        );
        super::push_section(&mut out, TAG_KERN, &sample_kernel().serialize());
        super::push_section(&mut out, TAG_HETB, &het_payload);
        assert_eq!(decode_snapshot(&out).unwrap_err(), PersistError::Truncated);
    }

    #[test]
    fn error_display() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::UnsupportedVersion(7)
            .to_string()
            .contains('7'));
        assert!(PersistError::Truncated.to_string().contains("truncated"));
        assert!(PersistError::Checksum("KERN").to_string().contains("KERN"));
        assert!(PersistError::Malformed("x").to_string().contains('x'));
        assert!(PersistError::Kernel(DecodeError::BadIndex)
            .to_string()
            .contains("kernel"));
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
