//! Partitioned, mergeable synopsis construction.
//!
//! This is the shared partitioning layer: a document is split into
//! contiguous ranges of the root's children ([`PartitionPlan`]), each
//! partition builds its own [`PartialKernel`] (and path tree) in
//! parallel, and [`merge_partials`] recombines them into a kernel that is
//! **bit-identical** to the monolithic [`KernelBuilder::from_document`]
//! build — same vertex and edge ids, same name-table interning order,
//! same per-level edge labels (zero-padded levels included), same
//! serialized bytes. The idea follows the dormant
//! `treesketch::partition`/`treesketch::merge` machinery (class
//! partitions merged under a budget), promoted here to the construction
//! path of the primary synopsis.
//!
//! Why bit-compatibility is achievable, in one paragraph: the monolithic
//! builder walks the document left-to-right, so every kernel id is
//! assigned at its *first occurrence* in document order. A partition is a
//! contiguous root-child range, so the monolithic walk visits partition
//! 0's subtrees entirely before partition 1's. Replaying each partition's
//! local vertices/edges *in local id order, forward across partitions*
//! therefore reproduces the exact monolithic first-occurrence order, and
//! summing per-level label counts reproduces the exact monolithic labels
//! (every non-root element lives wholly inside one partition; the root is
//! handled by the deferred [`PartialKernel`] state). Recursion levels are
//! partition-invariant because every partition keeps the full rooted
//! path.

use crate::kernel::builder::PartialKernel;
use crate::kernel::{Kernel, KernelBuilder};
use nokstore::{NokStorage, PathTree};
use std::ops::Range;
use xmlkit::tree::{Document, NodeId};

/// A split of a document into contiguous ranges of the root's children,
/// balanced by subtree size (element count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    ranges: Vec<Range<usize>>,
}

impl PartitionPlan {
    /// Plans `partitions` contiguous root-child ranges over `doc`,
    /// balancing by subtree element counts. Always returns exactly
    /// `max(partitions, 1)` ranges; trailing ranges may be empty when the
    /// root has fewer children than partitions (an empty range builds a
    /// root-only partial and merges as a no-op).
    pub fn for_document(doc: &Document, partitions: usize) -> Self {
        let n = partitions.max(1);
        let sizes: Vec<usize> = doc
            .children(doc.root())
            .map(|c| subtree_size(doc, c))
            .collect();
        let total: usize = sizes.iter().sum();
        let mut ranges = Vec::with_capacity(n);
        let mut idx = 0usize;
        let mut acc = 0usize;
        for j in 0..n {
            let start = idx;
            if j + 1 == n {
                idx = sizes.len();
            } else {
                let target = total * (j + 1) / n;
                while idx < sizes.len() && acc < target {
                    acc += sizes[idx];
                    idx += 1;
                }
            }
            ranges.push(start..idx);
        }
        PartitionPlan { ranges }
    }

    /// The planned root-child ranges, in document order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of partitions (including empty ones).
    pub fn partition_count(&self) -> usize {
        self.ranges.len()
    }
}

/// Number of elements in the subtree rooted at `n`.
fn subtree_size(doc: &Document, n: NodeId) -> usize {
    let mut count = 0usize;
    let mut stack = vec![n];
    while let Some(n) = stack.pop() {
        count += 1;
        stack.extend(doc.children(n));
    }
    count
}

/// Merges per-partition partial kernels (given in **document partition
/// order**) into one partial kernel, bit-compatibly with the monolithic
/// build: the result of `merge_partials(parts).into_kernel()` is
/// byte-identical (serialized form, ids, name table, labels) to
/// [`KernelBuilder::from_document`] over the unsplit document.
///
/// The merge replays each partition forward: local vertices in local id
/// order (reproducing global vertex ids and name interning order), local
/// edges in local id order (reproducing global edge ids and adjacency
/// push order), then per-level label sums over **all** recorded levels —
/// including zero-padded ones, so recursion-level vector lengths survive
/// exactly. The root's deferred `(edge, level)` child pairs are unioned
/// in first-occurrence order; element counts sum with the root de-duped.
///
/// The operation is associative: a merged partial is itself a valid input
/// partition (its ids are already in replay order).
///
/// # Panics
///
/// Panics on an empty input (a plan always yields at least one
/// partition).
pub fn merge_partials(parts: Vec<PartialKernel>) -> PartialKernel {
    let mut iter = parts.into_iter();
    let mut acc = iter.next().expect("merge_partials requires >= 1 partition");
    for part in iter {
        replay_into(&mut acc, &part);
    }
    acc
}

/// Replays `part`'s kernel into `acc` (see [`merge_partials`]).
fn replay_into(acc: &mut PartialKernel, part: &PartialKernel) {
    let k = part.kernel();
    let vmap: Vec<_> = k
        .vertices()
        .map(|v| acc.kernel.get_or_create_vertex(k.name(v)))
        .collect();
    let emap: Vec<_> = k
        .edges()
        .map(|e| {
            let edge = k.edge(e);
            acc.kernel
                .get_or_create_edge(vmap[edge.from.index()], vmap[edge.to.index()])
        })
        .collect();
    for e in k.edges() {
        let label = acc.kernel.edge_label_mut(emap[e.index()]);
        for (level, parents, children) in k.edge(e).label.iter() {
            label.add_child(level, children);
            label.add_parent(level, parents);
        }
    }
    // Every partition counted the shared root once.
    acc.kernel.add_elements(k.element_count().saturating_sub(1));
    for &(e, level) in &part.root_child_edges {
        let pair = (emap[e.index()], level);
        if !acc.root_child_edges.contains(&pair) {
            acc.root_child_edges.push(pair);
        }
    }
}

/// Builds the per-partition partial kernels of `plan`, in parallel (one
/// scoped thread per partition when the plan has more than one).
pub fn build_partial_kernels(doc: &Document, plan: &PartitionPlan) -> Vec<PartialKernel> {
    if plan.partition_count() <= 1 {
        return plan
            .ranges()
            .iter()
            .map(|r| KernelBuilder::from_document_root_range(doc, r.clone()))
            .collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = plan
            .ranges()
            .iter()
            .map(|r| {
                let range = r.clone();
                s.spawn(move || KernelBuilder::from_document_root_range(doc, range))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition kernel build panicked"))
            .collect()
    })
}

/// Builds a kernel from `doc` by partitioned parallel construction —
/// bit-identical to [`KernelBuilder::from_document`] for every plan.
pub fn build_kernel_partitioned(doc: &Document, plan: &PartitionPlan) -> Kernel {
    merge_partials(build_partial_kernels(doc, plan)).into_kernel()
}

/// Builds everything a partitioned HET-bearing synopsis needs: the merged
/// kernel, the merged path tree, and the NoK storage. Per-partition
/// kernel + path-tree builds run on scoped worker threads while the NoK
/// storage (which is not partitioned — it backs the exact evaluator) is
/// built concurrently on the calling thread.
pub(crate) fn build_synopsis_inputs(
    doc: &Document,
    plan: &PartitionPlan,
) -> (Kernel, PathTree, NokStorage) {
    let (parts, storage) = if plan.partition_count() <= 1 {
        let parts: Vec<_> = plan
            .ranges()
            .iter()
            .map(|r| {
                (
                    KernelBuilder::from_document_root_range(doc, r.clone()),
                    PathTree::from_document_root_range(doc, r.clone()),
                )
            })
            .collect();
        (parts, NokStorage::from_document(doc))
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = plan
                .ranges()
                .iter()
                .map(|r| {
                    let range = r.clone();
                    s.spawn(move || {
                        (
                            KernelBuilder::from_document_root_range(doc, range.clone()),
                            PathTree::from_document_root_range(doc, range),
                        )
                    })
                })
                .collect();
            let storage = NokStorage::from_document(doc);
            let parts: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("partition build panicked"))
                .collect();
            (parts, storage)
        })
    };
    let (partials, trees): (Vec<_>, Vec<_>) = parts.into_iter().unzip();
    let kernel = merge_partials(partials).into_kernel();
    let path_tree = PathTree::merge_root_split(&trees);
    (kernel, path_tree, storage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::samples::{figure2_document, figure4_document};

    fn assert_bit_identical(doc: &Document, partitions: usize) {
        let monolithic = KernelBuilder::from_document(doc);
        let plan = PartitionPlan::for_document(doc, partitions);
        assert_eq!(plan.partition_count(), partitions.max(1));
        let merged = build_kernel_partitioned(doc, &plan);
        assert_eq!(monolithic.to_string(), merged.to_string(), "{partitions}p");
        assert_eq!(monolithic.serialize(), merged.serialize(), "{partitions}p");
    }

    #[test]
    fn plan_covers_all_children_in_order() {
        let doc = figure2_document();
        let child_count = doc.child_count(doc.root());
        for partitions in [1, 2, 3, 4, 7] {
            let plan = PartitionPlan::for_document(&doc, partitions);
            let mut next = 0usize;
            for r in plan.ranges() {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, child_count);
        }
    }

    #[test]
    fn plan_balances_by_subtree_size() {
        // Root with one huge child and three tiny ones: the huge subtree
        // gets a partition of its own.
        let doc =
            Document::parse_str("<r><big><x/><x/><x/><x/><x/><x/><x/><x/></big><t/><t/><t/></r>")
                .unwrap();
        let plan = PartitionPlan::for_document(&doc, 2);
        assert_eq!(plan.ranges(), &[0..1, 1..4]);
    }

    #[test]
    fn merged_kernels_are_bit_identical_to_monolithic() {
        for doc in [figure2_document(), figure4_document()] {
            for partitions in [1, 2, 4, 7] {
                assert_bit_identical(&doc, partitions);
            }
        }
    }

    #[test]
    fn recursive_document_merges_bit_identically() {
        // Recursion levels cross partition boundaries only via the shared
        // rooted path, which every partition keeps.
        let doc = Document::parse_str(
            "<a><s><s><s><t/></s></s></s><s><p/></s><s><s><p/><p/></s></s><c/></a>",
        )
        .unwrap();
        for partitions in [1, 2, 3, 4, 7] {
            assert_bit_identical(&doc, partitions);
        }
    }

    #[test]
    fn single_child_root_with_many_partitions() {
        let doc = Document::parse_str("<r><only><x/><y/></only></r>").unwrap();
        assert_bit_identical(&doc, 4);
        // All but one range are empty.
        let plan = PartitionPlan::for_document(&doc, 4);
        assert_eq!(plan.ranges().iter().filter(|r| r.is_empty()).count(), 3);
    }

    #[test]
    fn merge_is_associative() {
        let doc = figure2_document();
        let plan = PartitionPlan::for_document(&doc, 3);
        let build = || build_partial_kernels(&doc, &plan);
        let flat = merge_partials(build()).into_kernel();
        let mut parts = build();
        let c = parts.pop().unwrap();
        let left_first = merge_partials(vec![merge_partials(parts), c]).into_kernel();
        let mut parts = build();
        let a = parts.remove(0);
        let right_first = merge_partials(vec![a, merge_partials(parts)]).into_kernel();
        assert_eq!(flat.serialize(), left_first.serialize());
        assert_eq!(flat.serialize(), right_first.serialize());
    }

    #[test]
    fn synopsis_inputs_match_monolithic_parts() {
        let doc = figure4_document();
        let plan = PartitionPlan::for_document(&doc, 3);
        let (kernel, path_tree, storage) = build_synopsis_inputs(&doc, &plan);
        assert_eq!(
            kernel.serialize(),
            KernelBuilder::from_document(&doc).serialize()
        );
        let reference = PathTree::from_document(&doc);
        assert_eq!(path_tree.len(), reference.len());
        for id in reference.ids() {
            assert_eq!(path_tree.label_path(id), reference.label_path(id));
            assert_eq!(path_tree.cardinality(id), reference.cardinality(id));
        }
        assert_eq!(storage.len(), doc.element_count());
    }
}
