//! The original EPT-materializing HET construction, retained **only** as
//! the differential-testing oracle and the "old" row of the `het_build`
//! bench.
//!
//! This is the pre-streaming algorithm: materialize the full expanded path
//! tree, run the arena [`Matcher`] once per candidate path, and evaluate
//! every branching candidate with its own NoK tree walk over the document.
//! Production construction ([`super::HetBuilder`]) never materializes an
//! EPT — it must stay entry-for-entry identical to this oracle (asserted
//! by unit and property tests), which is the contract that let the
//! streaming rewrite delete the materialized path from `build_with_het`.

use crate::config::XseedConfig;
use crate::estimate::ept::ExpandedPathTree;
use crate::estimate::matcher::Matcher;
use crate::het::builder::HetBuildStats;
use crate::het::hash::{correlated_key, path_hash};
use crate::het::table::HyperEdgeTable;
use crate::kernel::Kernel;
use nokstore::{Evaluator, NokStorage, PathTree, PathTreeNodeId};
use xpathkit::ast::PathExpr;

/// The pre-streaming builder (see the module docs). Behavior matches
/// [`super::HetBuilder`] with the default [`super::BselThresholdStrategy`].
pub struct ReferenceHetBuilder<'a> {
    kernel: &'a Kernel,
    path_tree: &'a PathTree,
    storage: &'a NokStorage,
    config: &'a XseedConfig,
}

impl<'a> ReferenceHetBuilder<'a> {
    /// Creates a reference builder.
    pub fn new(
        kernel: &'a Kernel,
        path_tree: &'a PathTree,
        storage: &'a NokStorage,
        config: &'a XseedConfig,
    ) -> Self {
        ReferenceHetBuilder {
            kernel,
            path_tree,
            storage,
            config,
        }
    }

    /// Builds the table the original way: one materialized EPT shared by
    /// all candidates, one NoK evaluation per branching candidate.
    pub fn build(&self) -> (HyperEdgeTable, HetBuildStats) {
        let mut het = HyperEdgeTable::new();
        let mut stats = HetBuildStats::default();

        let ept = ExpandedPathTree::generate(self.kernel, self.config, None);
        let matcher = Matcher::new(self.kernel, &ept, None);
        let evaluator = Evaluator::new(self.storage);
        let names = self.storage.names();

        for id in self.path_tree.ids() {
            let labels = self.path_tree.label_path(id);
            let path_names: Vec<String> = labels
                .iter()
                .map(|&l| names.name_or_panic(l).to_string())
                .collect();
            let expr = PathExpr::simple(path_names.clone());
            let actual = self.path_tree.cardinality(id);
            let estimated = matcher.estimate(&expr);
            let error = (estimated - actual as f64).abs();
            let bsel = self.path_tree.bsel(id);
            het.insert_simple(path_hash(&labels), actual, bsel, error);
            stats.simple_entries += 1;

            // Branching candidates: only for poorly selective nodes.
            if bsel < self.config.bsel_threshold && self.config.max_branching_predicates > 0 {
                let Some(parent) = self.path_tree.node(id).parent else {
                    continue;
                };
                stats.candidate_nodes += 1;
                self.add_branching_candidates(
                    &mut het, &mut stats, &matcher, &evaluator, parent, id,
                );
            }
        }

        let budget = self
            .config
            .memory_budget
            .map(|total| total.saturating_sub(self.kernel.size_bytes()));
        het.set_budget(budget);
        (het, stats)
    }

    /// Enumerates branching paths `parent[pred ...]/result` where `pred_node`
    /// is one of the predicates, evaluates them exactly, and records their
    /// correlated backward selectivities.
    fn add_branching_candidates(
        &self,
        het: &mut HyperEdgeTable,
        stats: &mut HetBuildStats,
        matcher: &Matcher<'_>,
        evaluator: &Evaluator<'_>,
        parent: PathTreeNodeId,
        pred_node: PathTreeNodeId,
    ) {
        let names = self.storage.names();
        let parent_labels = self.path_tree.label_path(parent);
        let parent_names: Vec<String> = parent_labels
            .iter()
            .map(|&l| names.name_or_panic(l).to_string())
            .collect();
        let parent_hash = path_hash(&parent_labels);
        let pred_label = self.path_tree.node(pred_node).label;
        let siblings: Vec<PathTreeNodeId> = self
            .path_tree
            .node(parent)
            .children
            .iter()
            .copied()
            .filter(|&c| c != pred_node)
            .take(super::MAX_SIBLINGS_FOR_COMBOS)
            .collect();

        for &result_node in &siblings {
            let result_label = self.path_tree.node(result_node).label;
            let result_card = self.path_tree.cardinality(result_node);
            if result_card == 0 {
                continue;
            }
            // Predicate label sets of size 1..=MBP that include pred_label.
            let other_preds: Vec<PathTreeNodeId> = siblings
                .iter()
                .copied()
                .filter(|&c| c != result_node)
                .collect();
            let combos = super::predicate_combinations(
                pred_label,
                &other_preds
                    .iter()
                    .map(|&c| self.path_tree.node(c).label)
                    .collect::<Vec<_>>(),
                self.config.max_branching_predicates,
            );
            for pred_labels in combos {
                let pred_name_list: Vec<String> = pred_labels
                    .iter()
                    .map(|&l| names.name_or_panic(l).to_string())
                    .collect();
                let expr = super::branching_expr(
                    &parent_names,
                    &pred_name_list,
                    names.name_or_panic(result_label),
                );
                let actual = evaluator.count(&expr);
                stats.exact_evaluations += 1;
                let estimated = matcher.estimate(&expr);
                let error = (estimated - actual as f64).abs();
                let correlated_bsel = actual as f64 / result_card as f64;
                let key = correlated_key(parent_hash, &pred_labels, result_label);
                het.insert_correlated(key, actual, correlated_bsel, error);
                stats.correlated_entries += 1;
            }
        }
    }
}
