//! Pre-computation of the hyper-edge table (Section 5, "HET Construction").
//!
//! The builder walks the path tree and, for every rooted simple path,
//! compares the kernel's estimate against the exact cardinality recorded in
//! the path tree; the resulting error ranks the entry. For path-tree nodes
//! whose backward selectivity falls below `BSEL_THRESHOLD`, the candidate
//! *branching* paths that use the node as a (leaf-level) predicate are
//! enumerated — up to `MBP` predicates per step — and evaluated exactly
//! with the NoK evaluator to obtain their correlated backward
//! selectivities.

use crate::config::XseedConfig;
use crate::estimate::ept::ExpandedPathTree;
use crate::estimate::matcher::Matcher;
use crate::het::hash::{correlated_key, path_hash};
use crate::het::table::HyperEdgeTable;
use crate::kernel::Kernel;
use nokstore::{Evaluator, NokStorage, PathTree, PathTreeNodeId};
use xpathkit::ast::{PathExpr, Step};

/// Upper bound on the number of sibling labels considered when enumerating
/// multi-predicate (2BP/3BP) combinations for one path-tree node, keeping
/// the candidate count polynomial even for very wide elements.
const MAX_SIBLINGS_FOR_COMBOS: usize = 16;

/// Builds hyper-edge tables from a document's exact statistics.
pub struct HetBuilder<'a> {
    kernel: &'a Kernel,
    path_tree: &'a PathTree,
    storage: &'a NokStorage,
    config: &'a XseedConfig,
}

/// Statistics about a build, reported for experiments (Figure 6 plots HET
/// construction time and entry counts per MBP setting).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HetBuildStats {
    /// Number of simple-path entries inserted.
    pub simple_entries: usize,
    /// Number of correlated (branching) entries inserted.
    pub correlated_entries: usize,
    /// Number of exact branching-path evaluations performed.
    pub exact_evaluations: usize,
}

impl<'a> HetBuilder<'a> {
    /// Creates a builder.
    pub fn new(
        kernel: &'a Kernel,
        path_tree: &'a PathTree,
        storage: &'a NokStorage,
        config: &'a XseedConfig,
    ) -> Self {
        HetBuilder {
            kernel,
            path_tree,
            storage,
            config,
        }
    }

    /// Builds the table, returning it together with build statistics.
    /// The table's residency is computed against the byte budget left over
    /// after the kernel (if a budget is configured).
    pub fn build(&self) -> (HyperEdgeTable, HetBuildStats) {
        let mut het = HyperEdgeTable::new();
        let mut stats = HetBuildStats::default();

        // Kernel-only estimates: one EPT shared by all candidate paths.
        let ept = ExpandedPathTree::generate(self.kernel, self.config, None);
        let matcher = Matcher::new(self.kernel, &ept, None);
        let evaluator = Evaluator::new(self.storage);
        let names = self.storage.names();

        for id in self.path_tree.ids() {
            let labels = self.path_tree.label_path(id);
            let path_names: Vec<String> = labels
                .iter()
                .map(|&l| names.name_or_panic(l).to_string())
                .collect();
            let expr = PathExpr::simple(path_names.clone());
            let actual = self.path_tree.cardinality(id);
            let estimated = matcher.estimate(&expr);
            let error = (estimated - actual as f64).abs();
            let bsel = self.path_tree.bsel(id);
            het.insert_simple(path_hash(&labels), actual, bsel, error);
            stats.simple_entries += 1;

            // Branching candidates: only for poorly selective nodes.
            if bsel < self.config.bsel_threshold && self.config.max_branching_predicates > 0 {
                let Some(parent) = self.path_tree.node(id).parent else {
                    continue;
                };
                self.add_branching_candidates(
                    &mut het, &mut stats, &matcher, &evaluator, parent, id,
                );
            }
        }

        het.set_budget(self.remaining_budget());
        (het, stats)
    }

    /// Budget left for the HET once the kernel has been accounted for.
    fn remaining_budget(&self) -> Option<usize> {
        self.config
            .memory_budget
            .map(|total| total.saturating_sub(self.kernel.size_bytes()))
    }

    /// Enumerates branching paths `parent[pred ...]/result` where `pred_node`
    /// is one of the predicates, evaluates them exactly, and records their
    /// correlated backward selectivities.
    fn add_branching_candidates(
        &self,
        het: &mut HyperEdgeTable,
        stats: &mut HetBuildStats,
        matcher: &Matcher<'_>,
        evaluator: &Evaluator<'_>,
        parent: PathTreeNodeId,
        pred_node: PathTreeNodeId,
    ) {
        let names = self.storage.names();
        let parent_labels = self.path_tree.label_path(parent);
        let parent_names: Vec<String> = parent_labels
            .iter()
            .map(|&l| names.name_or_panic(l).to_string())
            .collect();
        let parent_hash = path_hash(&parent_labels);
        let pred_label = self.path_tree.node(pred_node).label;
        let siblings: Vec<PathTreeNodeId> = self
            .path_tree
            .node(parent)
            .children
            .iter()
            .copied()
            .filter(|&c| c != pred_node)
            .take(MAX_SIBLINGS_FOR_COMBOS)
            .collect();

        for &result_node in &siblings {
            let result_label = self.path_tree.node(result_node).label;
            let result_card = self.path_tree.cardinality(result_node);
            if result_card == 0 {
                continue;
            }
            // Predicate label sets of size 1..=MBP that include pred_label.
            let other_preds: Vec<PathTreeNodeId> = siblings
                .iter()
                .copied()
                .filter(|&c| c != result_node)
                .collect();
            let combos = predicate_combinations(
                pred_label,
                &other_preds
                    .iter()
                    .map(|&c| self.path_tree.node(c).label)
                    .collect::<Vec<_>>(),
                self.config.max_branching_predicates,
            );
            for pred_labels in combos {
                let pred_name_list: Vec<String> = pred_labels
                    .iter()
                    .map(|&l| names.name_or_panic(l).to_string())
                    .collect();
                let expr = branching_expr(
                    &parent_names,
                    &pred_name_list,
                    names.name_or_panic(result_label),
                );
                let actual = evaluator.count(&expr);
                stats.exact_evaluations += 1;
                let estimated = matcher.estimate(&expr);
                let error = (estimated - actual as f64).abs();
                let correlated_bsel = actual as f64 / result_card as f64;
                let key = correlated_key(parent_hash, &pred_labels, result_label);
                het.insert_correlated(key, actual, correlated_bsel, error);
                stats.correlated_entries += 1;
            }
        }
    }
}

/// Builds the expression `/<parent path>[pred1]...[predm]/<result>`.
fn branching_expr(parent_names: &[String], pred_names: &[String], result_name: &str) -> PathExpr {
    let mut steps: Vec<Step> = parent_names.iter().map(Step::child).collect();
    let last = steps
        .last_mut()
        .expect("parent path is rooted and non-empty");
    for p in pred_names {
        last.predicates.push(PathExpr::simple([p.as_str()]));
    }
    steps.push(Step::child(result_name));
    PathExpr::new(steps)
}

/// All predicate label combinations of size `1..=mbp` that contain
/// `required`; the remaining labels are drawn (order-insensitively) from
/// `others`.
fn predicate_combinations(
    required: xmlkit::names::LabelId,
    others: &[xmlkit::names::LabelId],
    mbp: usize,
) -> Vec<Vec<xmlkit::names::LabelId>> {
    let mut out = vec![vec![required]];
    if mbp <= 1 {
        return out;
    }
    // Size-2 combinations.
    for (i, &a) in others.iter().enumerate() {
        out.push(vec![required, a]);
        if mbp >= 3 {
            for &b in &others[i + 1..] {
                out.push(vec![required, a, b]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use xmlkit::names::LabelId;
    use xmlkit::samples::{figure2_document, figure4_document};
    use xmlkit::Document;
    use xpathkit::parse;

    fn build_for(doc: &Document, config: &XseedConfig) -> (Kernel, HyperEdgeTable, HetBuildStats) {
        let kernel = KernelBuilder::from_document(doc);
        let path_tree = PathTree::from_document(doc);
        let storage = NokStorage::from_document(doc);
        let builder = HetBuilder::new(&kernel, &path_tree, &storage, config);
        let (het, stats) = builder.build();
        (kernel, het, stats)
    }

    #[test]
    fn simple_entries_cover_every_rooted_path() {
        let doc = figure2_document();
        let (_, het, stats) = build_for(&doc, &XseedConfig::default());
        let path_tree = PathTree::from_document(&doc);
        assert_eq!(stats.simple_entries, path_tree.len());
        assert!(het.len() >= path_tree.len());
        // Every simple path is resident with its exact cardinality.
        let names = doc.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let key = path_hash(&[l("a"), l("c"), l("s"), l("s")]);
        assert_eq!(het.lookup_simple(key).map(|(c, _)| c), Some(2));
    }

    #[test]
    fn correlated_entries_created_for_low_bsel_nodes() {
        // In the Figure 4 document, e under d has bsel 5/14 and f has 11/14;
        // with a generous threshold both generate branching candidates.
        let doc = figure4_document();
        let config = XseedConfig::default().with_bsel_threshold(0.99);
        let (kernel, het, stats) = build_for(&doc, &config);
        assert!(stats.correlated_entries > 0);
        assert!(stats.exact_evaluations >= stats.correlated_entries);
        // f under /a/b/d has a low backward selectivity (only 2 of the 5 d
        // elements under b have an f child), so the branching path
        // /a/b/d[f]/e is enumerated and its true correlated selectivity
        // recorded.
        let names = kernel.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let parent = path_hash(&[l("a"), l("b"), l("d")]);
        let key = correlated_key(parent, &[l("f")], l("e"));
        let bsel = het.lookup_correlated(key);
        assert!(bsel.is_some());
        let storage = NokStorage::from_document(&doc);
        let eval = Evaluator::new(&storage);
        let actual = eval.count(&parse("/a/b/d[f]/e").unwrap()) as f64;
        let base = eval.count(&parse("/a/b/d/e").unwrap()) as f64;
        assert!((bsel.unwrap() - actual / base).abs() < 1e-9);
    }

    #[test]
    fn mbp_zero_disables_branching_entries() {
        let doc = figure4_document();
        let config = XseedConfig::default()
            .with_bsel_threshold(0.99)
            .with_max_branching_predicates(0);
        let (_, _, stats) = build_for(&doc, &config);
        assert_eq!(stats.correlated_entries, 0);
    }

    #[test]
    fn higher_mbp_generates_more_candidates() {
        let doc = figure4_document();
        let config1 = XseedConfig::default().with_bsel_threshold(0.99);
        let config2 = XseedConfig::default()
            .with_bsel_threshold(0.99)
            .with_max_branching_predicates(2);
        let (_, _, stats1) = build_for(&doc, &config1);
        let (_, _, stats2) = build_for(&doc, &config2);
        assert!(stats2.correlated_entries >= stats1.correlated_entries);
    }

    #[test]
    fn budget_is_shared_with_kernel() {
        let doc = figure2_document();
        let config = XseedConfig::default().with_memory_budget(10_000);
        let (kernel, het, _) = build_for(&doc, &config);
        assert_eq!(het.budget(), Some(10_000 - kernel.size_bytes()));
    }

    #[test]
    fn predicate_combination_counts() {
        let req = LabelId(0);
        let others = [LabelId(1), LabelId(2), LabelId(3)];
        assert_eq!(predicate_combinations(req, &others, 1).len(), 1);
        // 1 single + 3 pairs.
        assert_eq!(predicate_combinations(req, &others, 2).len(), 4);
        // 1 single + 3 pairs + C(3,2)=3 triples.
        assert_eq!(predicate_combinations(req, &others, 3).len(), 7);
    }

    #[test]
    fn branching_expr_shape() {
        let expr = branching_expr(
            &["a".to_string(), "b".to_string()],
            &["x".to_string(), "y".to_string()],
            "r",
        );
        assert_eq!(expr.to_string(), "/a/b[x][y]/r");
    }
}
