//! Streaming pre-computation of the hyper-edge table (Section 5, "HET
//! Construction").
//!
//! The original construction (kept as the differential oracle in
//! [`mod@reference`]) materialized a full expanded path tree, ran the arena
//! matcher once per candidate path, and evaluated every branching
//! candidate with a separate NoK tree walk over the whole document. This
//! builder is driven by the streaming machinery instead:
//!
//! * the traveler's expansion is recorded **once** in a
//!   [`FrontierMemo`] and replayed per candidate — the same trick the
//!   batch executor uses — so no EPT arena is ever materialized;
//! * kernel estimates for *all* rooted simple paths come from a single
//!   replay pass ([`FrontierMemo::simple_path_estimates`]), O(expansion)
//!   instead of O(paths × expansion);
//! * exact cardinalities for *all* branching candidates come from a single
//!   streaming NoK pass ([`Evaluator::count_branching_batch`]), instead of
//!   one full document walk per candidate.
//!
//! Which path-tree nodes get branching candidates is decided by a
//! pluggable [`CandidateStrategy`]; the default
//! ([`BselThresholdStrategy`]) reproduces the paper's `BSEL_THRESHOLD`
//! rule, and [`TopKErrorStrategy`] / [`PerLevelBudgetStrategy`] bound the
//! construction cost for documents where the threshold alone selects too
//! many (or too few) nodes.

use crate::config::XseedConfig;
use crate::estimate::streaming::{FrontierMemo, StreamingMatcher};
use crate::het::hash::{correlated_key, path_hash};
use crate::het::table::HyperEdgeTable;
use crate::kernel::{FrozenKernel, Kernel};
use nokstore::{BranchingSpec, Evaluator, NokStorage, PathTree, PathTreeNodeId};
use std::sync::Arc;
use xpathkit::ast::{PathExpr, Step};

pub mod reference;

/// Upper bound on the number of sibling labels considered when enumerating
/// multi-predicate (2BP/3BP) combinations for one path-tree node, keeping
/// the candidate count polynomial even for very wide elements.
const MAX_SIBLINGS_FOR_COMBOS: usize = 16;

/// Statistics about a build, reported for experiments (Figure 6 plots HET
/// construction time and entry counts per MBP setting).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HetBuildStats {
    /// Number of simple-path entries inserted.
    pub simple_entries: usize,
    /// Number of correlated (branching) entries inserted.
    pub correlated_entries: usize,
    /// Number of exact branching-path evaluations performed (streamed in
    /// one batch pass by this builder; one NoK walk each in the
    /// [`mod@reference`] oracle).
    pub exact_evaluations: usize,
    /// Number of path-tree nodes the candidate strategy selected for
    /// branching enumeration.
    pub candidate_nodes: usize,
}

/// Everything a [`CandidateStrategy`] may consult when choosing which
/// path-tree nodes get branching candidates.
pub struct CandidateContext<'a> {
    /// The document's path tree (exact per-path statistics).
    pub path_tree: &'a PathTree,
    /// The build configuration (thresholds, MBP, budget).
    pub config: &'a XseedConfig,
    /// Absolute kernel-estimate error of each simple-path entry, indexed
    /// by path-tree node (`simple_errors[id.index()]`). Computed before
    /// selection runs, so error-driven strategies are possible.
    pub simple_errors: &'a [f64],
}

/// Pluggable selection of the path-tree nodes whose branching paths are
/// enumerated (each selected node plays the role of the required
/// predicate; its siblings provide results and extra predicates).
///
/// Returned ids may be in any order, may contain duplicates, and may
/// include the root — the builder sorts, dedups, and drops parentless
/// ids so the enumeration (and therefore the table) is deterministic and
/// [`HetBuildStats::candidate_nodes`] counts real anchors only.
pub trait CandidateStrategy: std::fmt::Debug {
    /// Chooses the predicate-anchor nodes.
    fn select(&self, ctx: &CandidateContext<'_>) -> Vec<PathTreeNodeId>;
}

/// The paper's rule: every non-root node whose backward selectivity falls
/// below `XseedConfig::bsel_threshold` anchors branching candidates. This
/// is the default strategy and reproduces the original builder exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct BselThresholdStrategy;

impl CandidateStrategy for BselThresholdStrategy {
    fn select(&self, ctx: &CandidateContext<'_>) -> Vec<PathTreeNodeId> {
        ctx.path_tree
            .ids()
            .filter(|&id| {
                ctx.path_tree.node(id).parent.is_some()
                    && ctx.path_tree.bsel(id) < ctx.config.bsel_threshold
            })
            .collect()
    }
}

/// Selects the `k` non-root nodes whose simple-path entries carry the
/// largest kernel-estimate error: where the kernel is already wrong about
/// the path itself, its sibling-independence assumption is least
/// trustworthy, so those neighborhoods get the exact treatment first.
/// Bounds construction cost independently of the bsel distribution.
#[derive(Debug, Clone, Copy)]
pub struct TopKErrorStrategy {
    /// Number of anchor nodes to keep.
    pub k: usize,
}

impl CandidateStrategy for TopKErrorStrategy {
    fn select(&self, ctx: &CandidateContext<'_>) -> Vec<PathTreeNodeId> {
        let mut ids: Vec<PathTreeNodeId> = ctx
            .path_tree
            .ids()
            .filter(|&id| ctx.path_tree.node(id).parent.is_some())
            .collect();
        // Largest error first; ties resolve to the smaller id so selection
        // is deterministic.
        ids.sort_by(|&a, &b| {
            ctx.simple_errors[b.index()]
                .partial_cmp(&ctx.simple_errors[a.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ids.truncate(self.k);
        ids
    }
}

/// Selects, per path-tree depth level, at most `per_level` non-root nodes —
/// the ones with the lowest backward selectivity (the most
/// correlation-prone). Spreads the exact-evaluation budget across the
/// document's depth instead of letting one bushy level consume it all.
#[derive(Debug, Clone, Copy)]
pub struct PerLevelBudgetStrategy {
    /// Maximum anchor nodes per depth level.
    pub per_level: usize,
}

impl CandidateStrategy for PerLevelBudgetStrategy {
    fn select(&self, ctx: &CandidateContext<'_>) -> Vec<PathTreeNodeId> {
        let mut by_level: Vec<Vec<PathTreeNodeId>> = Vec::new();
        for id in ctx.path_tree.ids() {
            if ctx.path_tree.node(id).parent.is_none() {
                continue;
            }
            let depth = ctx.path_tree.label_path(id).len();
            if by_level.len() < depth {
                by_level.resize(depth, Vec::new());
            }
            by_level[depth - 1].push(id);
        }
        let mut out = Vec::new();
        for mut level in by_level {
            level.sort_by(|&a, &b| {
                ctx.path_tree
                    .bsel(a)
                    .partial_cmp(&ctx.path_tree.bsel(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            level.truncate(self.per_level);
            out.extend(level);
        }
        out
    }
}

/// Builds hyper-edge tables from a document's exact statistics, driven by
/// the streaming matcher (see the module docs).
pub struct HetBuilder<'a> {
    kernel: &'a Kernel,
    path_tree: &'a PathTree,
    storage: &'a NokStorage,
    config: &'a XseedConfig,
    strategy: Box<dyn CandidateStrategy + 'a>,
}

impl<'a> HetBuilder<'a> {
    /// Creates a builder with the default candidate strategy
    /// ([`BselThresholdStrategy`]).
    pub fn new(
        kernel: &'a Kernel,
        path_tree: &'a PathTree,
        storage: &'a NokStorage,
        config: &'a XseedConfig,
    ) -> Self {
        HetBuilder {
            kernel,
            path_tree,
            storage,
            config,
            strategy: Box::new(BselThresholdStrategy),
        }
    }

    /// Replaces the candidate-selection strategy (builder style).
    pub fn with_strategy(mut self, strategy: impl CandidateStrategy + 'a) -> Self {
        self.strategy = Box::new(strategy);
        self
    }

    /// Builds the table, returning it together with build statistics.
    /// The table's residency is computed against the byte budget left over
    /// after the kernel (if a budget is configured).
    pub fn build(&self) -> (HyperEdgeTable, HetBuildStats) {
        self.build_inner(None)
    }

    /// Builds the table exactly like [`build`](Self::build), but evaluates
    /// the exact branching counts with one worker per root-child `range`
    /// (see [`Evaluator::count_branching_batch_partitioned`]).
    ///
    /// The result is bit-identical to the monolithic build: candidate
    /// selection, enumeration order, and estimate replay are untouched, and
    /// the partitioned counter sums exact `u64` partials whose total equals
    /// the monolithic walk's tally.
    pub fn build_partitioned(
        &self,
        ranges: &[std::ops::Range<usize>],
    ) -> (HyperEdgeTable, HetBuildStats) {
        self.build_inner(Some(ranges))
    }

    fn build_inner(
        &self,
        ranges: Option<&[std::ops::Range<usize>]>,
    ) -> (HyperEdgeTable, HetBuildStats) {
        let mut het = HyperEdgeTable::new();
        let mut stats = HetBuildStats::default();

        // Kernel-only estimates: one frontier expansion, recorded once and
        // replayed for every candidate (no EPT arena).
        let frozen = FrozenKernel::freeze(self.kernel);
        let memo = Arc::new(FrontierMemo::build(&frozen, self.config, None));
        let estimates = memo.simple_path_estimates();

        // Simple-path entries: exact cardinality and bsel from the path
        // tree, error from the aggregated replay pass.
        let mut simple_errors = vec![0.0f64; self.path_tree.len()];
        for id in self.path_tree.ids() {
            let labels = self.path_tree.label_path(id);
            let hash = path_hash(&labels);
            let actual = self.path_tree.cardinality(id);
            let estimated = estimates.get(&hash).copied().unwrap_or(0.0);
            let error = (estimated - actual as f64).abs();
            simple_errors[id.index()] = error;
            het.insert_simple(hash, actual, self.path_tree.bsel(id), error);
            stats.simple_entries += 1;
        }

        if self.config.max_branching_predicates > 0 {
            self.add_branching_entries(
                &mut het,
                &mut stats,
                &frozen,
                &memo,
                &simple_errors,
                ranges,
            );
        }

        het.set_budget(self.remaining_budget());
        (het, stats)
    }

    /// Branching entries: the strategy picks anchor nodes, candidates are
    /// enumerated per anchor, truths come from one batch NoK pass, and
    /// estimates from per-candidate replays of the shared memo.
    fn add_branching_entries(
        &self,
        het: &mut HyperEdgeTable,
        stats: &mut HetBuildStats,
        frozen: &FrozenKernel,
        memo: &Arc<FrontierMemo>,
        simple_errors: &[f64],
        ranges: Option<&[std::ops::Range<usize>]>,
    ) {
        let mut selected = self.strategy.select(&CandidateContext {
            path_tree: self.path_tree,
            config: self.config,
            simple_errors,
        });
        selected.sort_unstable();
        selected.dedup();
        // The root has no parent path to anchor a branching candidate; a
        // strategy returning it gets it silently normalized away, keeping
        // `candidate_nodes` equal to the anchors actually enumerated.
        selected.retain(|&id| self.path_tree.node(id).parent.is_some());
        stats.candidate_nodes = selected.len();

        // Enumerate every candidate before touching the document: the
        // batch counter amortizes one streaming pass over all of them.
        let names = self.storage.names();
        let mut specs: Vec<BranchingSpec> = Vec::new();
        let mut candidates: Vec<Candidate> = Vec::new();
        for &pred_node in &selected {
            let Some(parent) = self.path_tree.node(pred_node).parent else {
                continue;
            };
            let parent_labels = self.path_tree.label_path(parent);
            let parent_names: Vec<String> = parent_labels
                .iter()
                .map(|&l| names.name_or_panic(l).to_string())
                .collect();
            let parent_hash = path_hash(&parent_labels);
            let pred_label = self.path_tree.node(pred_node).label;
            let siblings: Vec<PathTreeNodeId> = self
                .path_tree
                .node(parent)
                .children
                .iter()
                .copied()
                .filter(|&c| c != pred_node)
                .take(MAX_SIBLINGS_FOR_COMBOS)
                .collect();

            for &result_node in &siblings {
                let result_label = self.path_tree.node(result_node).label;
                let result_card = self.path_tree.cardinality(result_node);
                if result_card == 0 {
                    continue;
                }
                let other_labels: Vec<xmlkit::names::LabelId> = siblings
                    .iter()
                    .copied()
                    .filter(|&c| c != result_node)
                    .map(|c| self.path_tree.node(c).label)
                    .collect();
                for pred_labels in predicate_combinations(
                    pred_label,
                    &other_labels,
                    self.config.max_branching_predicates,
                ) {
                    let pred_name_list: Vec<String> = pred_labels
                        .iter()
                        .map(|&l| names.name_or_panic(l).to_string())
                        .collect();
                    let expr = branching_expr(
                        &parent_names,
                        &pred_name_list,
                        names.name_or_panic(result_label),
                    );
                    candidates.push(Candidate {
                        key: correlated_key(parent_hash, &pred_labels, result_label),
                        result_card,
                        expr,
                    });
                    specs.push(BranchingSpec {
                        parent,
                        predicates: pred_labels,
                        result: result_label,
                    });
                }
            }
        }

        let evaluator = Evaluator::new(self.storage);
        let counts = match ranges {
            Some(r) => evaluator.count_branching_batch_partitioned(self.path_tree, &specs, r),
            None => evaluator.count_branching_batch(self.path_tree, &specs),
        };
        let mut matcher = StreamingMatcher::new(frozen, self.kernel.names(), self.config, None);
        matcher.set_frontier_memo(memo.clone());
        for (candidate, actual) in candidates.iter().zip(counts) {
            stats.exact_evaluations += 1;
            let estimated = matcher.estimate(&candidate.expr);
            let error = (estimated - actual as f64).abs();
            let correlated_bsel = actual as f64 / candidate.result_card as f64;
            het.insert_correlated(candidate.key, actual, correlated_bsel, error);
            stats.correlated_entries += 1;
        }
    }

    /// Budget left for the HET once the kernel has been accounted for.
    fn remaining_budget(&self) -> Option<usize> {
        self.config
            .memory_budget
            .map(|total| total.saturating_sub(self.kernel.size_bytes()))
    }
}

/// One enumerated branching candidate, paired index-for-index with its
/// [`BranchingSpec`] in the batch-count request.
struct Candidate {
    key: u64,
    result_card: u64,
    expr: PathExpr,
}

/// Builds the expression `/<parent path>[pred1]...[predm]/<result>`.
fn branching_expr(parent_names: &[String], pred_names: &[String], result_name: &str) -> PathExpr {
    let mut steps: Vec<Step> = parent_names.iter().map(Step::child).collect();
    let last = steps
        .last_mut()
        .expect("parent path is rooted and non-empty");
    for p in pred_names {
        last.predicates.push(PathExpr::simple([p.as_str()]));
    }
    steps.push(Step::child(result_name));
    PathExpr::new(steps)
}

/// All predicate label combinations of size `1..=mbp` that contain
/// `required`; the remaining labels are drawn (order-insensitively) from
/// `others`.
fn predicate_combinations(
    required: xmlkit::names::LabelId,
    others: &[xmlkit::names::LabelId],
    mbp: usize,
) -> Vec<Vec<xmlkit::names::LabelId>> {
    let mut out = vec![vec![required]];
    if mbp <= 1 {
        return out;
    }
    // Size-2 combinations.
    for (i, &a) in others.iter().enumerate() {
        out.push(vec![required, a]);
        if mbp >= 3 {
            for &b in &others[i + 1..] {
                out.push(vec![required, a, b]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceHetBuilder;
    use super::*;
    use crate::het::table::{HetEntry, HetEntryKind};
    use crate::kernel::KernelBuilder;
    use std::collections::HashMap;
    use xmlkit::names::LabelId;
    use xmlkit::samples::{figure2_document, figure4_document};
    use xmlkit::Document;
    use xpathkit::parse;

    fn build_for(doc: &Document, config: &XseedConfig) -> (Kernel, HyperEdgeTable, HetBuildStats) {
        let kernel = KernelBuilder::from_document(doc);
        let path_tree = PathTree::from_document(doc);
        let storage = NokStorage::from_document(doc);
        let (het, stats) = HetBuilder::new(&kernel, &path_tree, &storage, config).build();
        (kernel, het, stats)
    }

    /// Asserts that two tables hold exactly the same entries: same keys,
    /// kinds, exact cardinalities and selectivities; errors may differ by
    /// float-association noise between the streaming and materialized
    /// estimate paths, nothing more.
    pub(super) fn assert_tables_identical(streamed: &HyperEdgeTable, oracle: &HyperEdgeTable) {
        assert_eq!(streamed.len(), oracle.len(), "entry counts differ");
        let index = |t: &HyperEdgeTable| -> HashMap<(u64, HetEntryKind), HetEntry> {
            t.entries_by_error()
                .into_iter()
                .map(|e| ((e.key, e.kind), e.clone()))
                .collect()
        };
        let a = index(streamed);
        let b = index(oracle);
        assert_eq!(a.len(), b.len(), "duplicate keys differ");
        for (k, ea) in &a {
            let eb = b.get(k).unwrap_or_else(|| panic!("missing entry {k:?}"));
            assert_eq!(ea.cardinality, eb.cardinality, "cardinality for {k:?}");
            assert_eq!(
                ea.bsel.to_bits(),
                eb.bsel.to_bits(),
                "bsel for {k:?}: {} vs {}",
                ea.bsel,
                eb.bsel
            );
            assert!(
                (ea.error - eb.error).abs() < 1e-9 + 1e-12 * ea.error.abs().max(eb.error.abs()),
                "error for {k:?}: streamed {} vs oracle {}",
                ea.error,
                eb.error
            );
        }
    }

    /// Builds with both the streaming builder and the EPT+NoK reference
    /// oracle and asserts the tables are entry-for-entry identical.
    fn assert_matches_reference(doc: &Document, config: &XseedConfig) {
        let kernel = KernelBuilder::from_document(doc);
        let path_tree = PathTree::from_document(doc);
        let storage = NokStorage::from_document(doc);
        let (streamed, new_stats) = HetBuilder::new(&kernel, &path_tree, &storage, config).build();
        let (oracle, old_stats) =
            ReferenceHetBuilder::new(&kernel, &path_tree, &storage, config).build();
        assert_tables_identical(&streamed, &oracle);
        assert_eq!(new_stats.simple_entries, old_stats.simple_entries);
        assert_eq!(new_stats.correlated_entries, old_stats.correlated_entries);
        assert_eq!(new_stats.exact_evaluations, old_stats.exact_evaluations);
        assert_eq!(streamed.budget(), oracle.budget());
    }

    #[test]
    fn streaming_build_matches_reference_on_sample_documents() {
        for doc in [figure2_document(), figure4_document()] {
            for config in [
                XseedConfig::default(),
                XseedConfig::default().with_bsel_threshold(0.99),
                XseedConfig::default()
                    .with_bsel_threshold(0.99)
                    .with_max_branching_predicates(2),
                XseedConfig::default()
                    .with_bsel_threshold(0.99)
                    .with_max_branching_predicates(3),
                // card_threshold truncation: the expansion stops early and
                // the two builders must still agree entry for entry.
                XseedConfig::default()
                    .with_bsel_threshold(0.99)
                    .with_card_threshold(2.0),
            ] {
                assert_matches_reference(&doc, &config);
            }
        }
    }

    #[test]
    fn partitioned_build_is_bit_identical_to_monolithic() {
        for doc in [figure2_document(), figure4_document()] {
            for config in [
                XseedConfig::default(),
                XseedConfig::default().with_bsel_threshold(0.99),
                XseedConfig::default()
                    .with_bsel_threshold(0.99)
                    .with_max_branching_predicates(3),
            ] {
                let kernel = KernelBuilder::from_document(&doc);
                let path_tree = PathTree::from_document(&doc);
                let storage = NokStorage::from_document(&doc);
                let builder = HetBuilder::new(&kernel, &path_tree, &storage, &config);
                let (mono, mono_stats) = builder.build();
                for partitions in [1usize, 2, 4, 7] {
                    let plan = crate::partition::PartitionPlan::for_document(&doc, partitions);
                    let (part, part_stats) = builder.build_partitioned(plan.ranges());
                    assert_tables_identical(&part, &mono);
                    assert_eq!(part_stats.simple_entries, mono_stats.simple_entries);
                    assert_eq!(part_stats.candidate_nodes, mono_stats.candidate_nodes);
                    assert_eq!(part_stats.exact_evaluations, mono_stats.exact_evaluations);
                    assert_eq!(part_stats.correlated_entries, mono_stats.correlated_entries);
                    assert_eq!(part.budget(), mono.budget());
                    // The exact counts feed the error terms verbatim, so even
                    // the float fields must agree to the bit.
                    let entries = |t: &HyperEdgeTable| {
                        let mut v: Vec<_> = t
                            .entries_by_error()
                            .into_iter()
                            .map(|e| {
                                let kind = matches!(e.kind, HetEntryKind::Correlated) as u8;
                                (
                                    e.key,
                                    kind,
                                    e.cardinality,
                                    e.bsel.to_bits(),
                                    e.error.to_bits(),
                                )
                            })
                            .collect();
                        v.sort();
                        v
                    };
                    assert_eq!(entries(&part), entries(&mono));
                }
            }
        }
    }

    #[test]
    fn simple_entries_cover_every_rooted_path() {
        let doc = figure2_document();
        let (_, het, stats) = build_for(&doc, &XseedConfig::default());
        let path_tree = PathTree::from_document(&doc);
        assert_eq!(stats.simple_entries, path_tree.len());
        assert!(het.len() >= path_tree.len());
        // Every simple path is resident with its exact cardinality.
        let names = doc.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let key = path_hash(&[l("a"), l("c"), l("s"), l("s")]);
        assert_eq!(het.lookup_simple(key).map(|(c, _)| c), Some(2));
    }

    #[test]
    fn correlated_entries_created_for_low_bsel_nodes() {
        // In the Figure 4 document, e under d has bsel 5/14 and f has 11/14;
        // with a generous threshold both generate branching candidates.
        let doc = figure4_document();
        let config = XseedConfig::default().with_bsel_threshold(0.99);
        let (kernel, het, stats) = build_for(&doc, &config);
        assert!(stats.correlated_entries > 0);
        assert!(stats.exact_evaluations >= stats.correlated_entries);
        assert!(stats.candidate_nodes > 0);
        // f under /a/b/d has a low backward selectivity (only 2 of the 5 d
        // elements under b have an f child), so the branching path
        // /a/b/d[f]/e is enumerated and its true correlated selectivity
        // recorded.
        let names = kernel.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let parent = path_hash(&[l("a"), l("b"), l("d")]);
        let key = correlated_key(parent, &[l("f")], l("e"));
        let bsel = het.lookup_correlated(key);
        assert!(bsel.is_some());
        let storage = NokStorage::from_document(&doc);
        let eval = Evaluator::new(&storage);
        let actual = eval.count(&parse("/a/b/d[f]/e").unwrap()) as f64;
        let base = eval.count(&parse("/a/b/d/e").unwrap()) as f64;
        assert!((bsel.unwrap() - actual / base).abs() < 1e-9);
    }

    #[test]
    fn mbp_zero_disables_branching_entries() {
        let doc = figure4_document();
        let config = XseedConfig::default()
            .with_bsel_threshold(0.99)
            .with_max_branching_predicates(0);
        let (_, _, stats) = build_for(&doc, &config);
        assert_eq!(stats.correlated_entries, 0);
        assert_eq!(stats.candidate_nodes, 0);
    }

    #[test]
    fn higher_mbp_generates_more_candidates() {
        let doc = figure4_document();
        let config1 = XseedConfig::default().with_bsel_threshold(0.99);
        let config2 = XseedConfig::default()
            .with_bsel_threshold(0.99)
            .with_max_branching_predicates(2);
        let (_, _, stats1) = build_for(&doc, &config1);
        let (_, _, stats2) = build_for(&doc, &config2);
        assert!(stats2.correlated_entries >= stats1.correlated_entries);
    }

    #[test]
    fn budget_is_shared_with_kernel() {
        let doc = figure2_document();
        let config = XseedConfig::default().with_memory_budget(10_000);
        let (kernel, het, _) = build_for(&doc, &config);
        assert_eq!(het.budget(), Some(10_000 - kernel.size_bytes()));
    }

    #[test]
    fn top_k_error_strategy_bounds_candidate_nodes() {
        let doc = figure4_document();
        let kernel = KernelBuilder::from_document(&doc);
        let path_tree = PathTree::from_document(&doc);
        let storage = NokStorage::from_document(&doc);
        let config = XseedConfig::default().with_bsel_threshold(0.99);
        let (_, unbounded) = HetBuilder::new(&kernel, &path_tree, &storage, &config).build();
        let (het, stats) = HetBuilder::new(&kernel, &path_tree, &storage, &config)
            .with_strategy(TopKErrorStrategy { k: 1 })
            .build();
        assert_eq!(stats.candidate_nodes, 1);
        assert!(stats.candidate_nodes <= unbounded.candidate_nodes.max(1));
        assert!(stats.correlated_entries <= unbounded.correlated_entries);
        // Simple entries are unaffected by the strategy.
        assert_eq!(stats.simple_entries, path_tree.len());
        assert!(het.len() >= path_tree.len());
    }

    #[test]
    fn per_level_budget_strategy_spreads_selection() {
        let doc = figure4_document();
        let kernel = KernelBuilder::from_document(&doc);
        let path_tree = PathTree::from_document(&doc);
        let storage = NokStorage::from_document(&doc);
        let config = XseedConfig::default();
        let ctx_errors = vec![0.0; path_tree.len()];
        let ctx = CandidateContext {
            path_tree: &path_tree,
            config: &config,
            simple_errors: &ctx_errors,
        };
        let picked = PerLevelBudgetStrategy { per_level: 1 }.select(&ctx);
        // At most one node per depth level, none of them the root.
        let mut depths: Vec<usize> = picked
            .iter()
            .map(|&id| path_tree.label_path(id).len())
            .collect();
        depths.sort_unstable();
        depths.dedup();
        assert_eq!(depths.len(), picked.len());
        assert!(picked.iter().all(|&id| path_tree.node(id).parent.is_some()));
        // And the builder accepts the strategy end to end.
        let (_, stats) = HetBuilder::new(&kernel, &path_tree, &storage, &config)
            .with_strategy(PerLevelBudgetStrategy { per_level: 1 })
            .build();
        assert_eq!(stats.candidate_nodes, picked.len());
    }

    #[test]
    fn predicate_combination_counts() {
        let req = LabelId(0);
        let others = [LabelId(1), LabelId(2), LabelId(3)];
        assert_eq!(predicate_combinations(req, &others, 1).len(), 1);
        // 1 single + 3 pairs.
        assert_eq!(predicate_combinations(req, &others, 2).len(), 4);
        // 1 single + 3 pairs + C(3,2)=3 triples.
        assert_eq!(predicate_combinations(req, &others, 3).len(), 7);
    }

    #[test]
    fn branching_expr_shape() {
        let expr = branching_expr(
            &["a".to_string(), "b".to_string()],
            &["x".to_string(), "y".to_string()],
            "r",
        );
        assert_eq!(expr.to_string(), "/a/b[x][y]/r");
    }
}
