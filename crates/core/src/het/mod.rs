//! The Hyper-Edge Table (HET), Section 5.
//!
//! The kernel's estimates rely on two independence assumptions — ancestor
//! independence (Example 4) and sibling independence (Example 5). Where
//! those assumptions break badly, the HET stores the truth:
//!
//! * for **simple paths**, the actual cardinality and backward selectivity
//!   of the rooted path, keyed by an incremental hash of the path;
//! * for **branching paths** (`p[q]/r`, and with larger MBP settings
//!   `p[q1][q2]/r`, ...), the *correlated backward selectivity* — the
//!   fraction of `p/r` results whose parent also has the predicate
//!   children — keyed by a hash of the parent path and the labels
//!   involved.
//!
//! Entries are ranked by absolute estimation error. Conceptually all of
//! them live on secondary storage; only the top-k entries that fit the
//! memory budget are resident and consulted by the estimator, which is how
//! the synopsis adapts to different memory budgets.
//!
//! * [`hash`] — the incremental path hash (`incHash`).
//! * [`table`] — the table itself with budget-aware residency.
//! * [`builder`] — streaming pre-computation from the path tree, the
//!   frontier-memo replay, and the batched exact evaluator (the original
//!   EPT-materializing construction survives only as the differential
//!   oracle in [`builder::reference`]).
//! * [`feedback`] — population from optimizer query feedback.

pub mod builder;
pub mod feedback;
pub mod hash;
pub mod table;

pub use builder::{
    BselThresholdStrategy, CandidateContext, CandidateStrategy, HetBuildStats, HetBuilder,
    PerLevelBudgetStrategy, TopKErrorStrategy,
};
pub use feedback::FeedbackOutcome;
pub use hash::{correlated_key, inc_hash, path_hash, PATH_HASH_SEED};
pub use table::{HetEntry, HetEntryKind, HyperEdgeTable, ENTRY_BYTES};
