//! Incremental path hashing (the paper's `incHash`).
//!
//! The HET keys paths by a hash value rather than by the path string; the
//! paper uses a 32-bit hash and reports negligible collision rates. We use
//! a 64-bit FNV-1a fold over label ids, which keeps the incremental
//! property the traveler needs — the hash of a path is derived from the
//! hash of its prefix and the new label — while making collisions
//! essentially impossible at the path counts involved. Budget accounting
//! still charges 4 bytes per key, matching the paper's figure.

use xmlkit::names::{LabelId, NameTable};
use xpathkit::ast::{Axis, NodeTest, PathExpr};

/// Initial hash value for the empty path (the FNV-1a offset basis).
pub const PATH_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Extends a path hash by one label (`incHash(h, v)`).
#[inline]
pub fn inc_hash(hash: u64, label: LabelId) -> u64 {
    let mut h = hash;
    for byte in label.0.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash of a complete rooted label path.
pub fn path_hash(labels: &[LabelId]) -> u64 {
    labels.iter().fold(PATH_HASH_SEED, |h, &l| inc_hash(h, l))
}

/// The path hash of a rooted *simple* path expression — child axes, name
/// tests, no predicates — or `None` if the expression has any other shape
/// or names a label absent from `names`. The hash is folded incrementally
/// step by step, so the check allocates nothing and bails at the first
/// non-simple step.
///
/// This is the single definition of "HET-answerable simple path", shared
/// by the matchers' direct-lookup fast paths and by feedback recording so
/// they can never drift apart.
pub fn simple_path_hash(names: &NameTable, expr: &PathExpr) -> Option<u64> {
    let mut hash = PATH_HASH_SEED;
    for step in &expr.steps {
        if step.axis != Axis::Child || !step.predicates.is_empty() {
            return None;
        }
        match &step.test {
            NodeTest::Name(n) => hash = inc_hash(hash, names.lookup(n)?),
            NodeTest::Wildcard => return None,
        }
    }
    Some(hash)
}

/// Key of a correlated (branching) hyper-edge `p[q1]...[qm]/r`: the hash of
/// the parent path `p`, folded with the predicate labels (in sorted order,
/// so `[q1][q2]` and `[q2][q1]` share a key) and the result sibling label.
pub fn correlated_key(
    parent_path_hash: u64,
    predicates: &[LabelId],
    result_sibling: LabelId,
) -> u64 {
    let mut sorted: Vec<LabelId> = predicates.to_vec();
    sorted.sort_unstable();
    let mut h = parent_path_hash ^ 0x9e37_79b9_7f4a_7c15;
    for p in sorted {
        h = inc_hash(h, p);
    }
    // Separate the predicate labels from the sibling label so that
    // p[q]/r and p[r]/q receive different keys.
    h ^= 0x5851_f42d_4c95_7f2d;
    inc_hash(h, result_sibling)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_equals_batch() {
        let labels = [LabelId(3), LabelId(1), LabelId(4), LabelId(1)];
        let mut h = PATH_HASH_SEED;
        for &l in &labels {
            h = inc_hash(h, l);
        }
        assert_eq!(h, path_hash(&labels));
    }

    #[test]
    fn different_paths_hash_differently() {
        assert_ne!(
            path_hash(&[LabelId(0), LabelId(1)]),
            path_hash(&[LabelId(1), LabelId(0)])
        );
        assert_ne!(
            path_hash(&[LabelId(0)]),
            path_hash(&[LabelId(0), LabelId(0)])
        );
        assert_ne!(path_hash(&[]), path_hash(&[LabelId(0)]));
    }

    #[test]
    fn correlated_key_is_order_insensitive_in_predicates() {
        let parent = path_hash(&[LabelId(0), LabelId(1)]);
        let k1 = correlated_key(parent, &[LabelId(2), LabelId(3)], LabelId(4));
        let k2 = correlated_key(parent, &[LabelId(3), LabelId(2)], LabelId(4));
        assert_eq!(k1, k2);
    }

    #[test]
    fn correlated_key_distinguishes_roles() {
        let parent = path_hash(&[LabelId(0)]);
        // p[q]/r vs p[r]/q must differ.
        let k1 = correlated_key(parent, &[LabelId(2)], LabelId(3));
        let k2 = correlated_key(parent, &[LabelId(3)], LabelId(2));
        assert_ne!(k1, k2);
        // Different parents must differ.
        let other_parent = path_hash(&[LabelId(1)]);
        assert_ne!(k1, correlated_key(other_parent, &[LabelId(2)], LabelId(3)));
    }

    #[test]
    fn no_collisions_over_many_paths() {
        // The paper argues a good hash has negligible collisions for the
        // at-most hundreds of thousands of paths involved.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in 0..40u32 {
            for b in 0..40u32 {
                for c in 0..40u32 {
                    let h = path_hash(&[LabelId(a), LabelId(b), LabelId(c)]);
                    assert!(seen.insert(h), "collision for ({a},{b},{c})");
                }
            }
        }
    }
}
