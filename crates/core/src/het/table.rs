//! The hyper-edge table with budget-aware residency.
//!
//! The resident-entry indexes are keyed by 64-bit path hashes and sit on
//! the estimator's per-node hot path (one lookup per traveler `Open`), so
//! they use the packed-key [`FastMap`] instead of a SipHash `HashMap`.

use crate::kernel::FastMap;
use std::collections::HashMap;

/// Bytes charged per resident entry when fitting a memory budget: a 32-bit
/// hashed key (the paper's choice), a 64-bit cardinality and a 32-bit
/// selectivity.
pub const ENTRY_BYTES: usize = 16;

/// The kind of a hyper-edge entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HetEntryKind {
    /// A rooted simple path: stores actual cardinality and backward
    /// selectivity.
    SimplePath,
    /// A branching path `p[q1]...[qm]/r`: stores the correlated backward
    /// selectivity (and the actual cardinality, for error ranking and
    /// inspection).
    Correlated,
}

/// One hyper-edge entry.
#[derive(Debug, Clone, PartialEq)]
pub struct HetEntry {
    /// The path key (see [`crate::het::hash`]).
    pub key: u64,
    /// Simple-path or correlated entry.
    pub kind: HetEntryKind,
    /// Actual cardinality of the path.
    pub cardinality: u64,
    /// Actual (or correlated) backward selectivity.
    pub bsel: f64,
    /// Absolute estimation error that this entry corrects; entries with
    /// larger error are kept resident first.
    pub error: f64,
}

/// The hyper-edge table.
///
/// All entries ever inserted are retained (the paper keeps them "on
/// secondary storage"); only the top-k by error that fit the byte budget
/// are *resident* and visible to [`HyperEdgeTable::lookup_simple`] /
/// [`HyperEdgeTable::lookup_correlated`].
#[derive(Debug, Clone, Default)]
pub struct HyperEdgeTable {
    entries: Vec<HetEntry>,
    index: HashMap<(u64, HetEntryKind), usize>,
    resident_simple: FastMap,
    resident_correlated: FastMap,
    budget_bytes: Option<usize>,
}

impl HyperEdgeTable {
    /// Creates an empty table with no budget (everything resident).
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or updates an entry. Residency is recomputed lazily; call
    /// [`HyperEdgeTable::rebuild_residency`] (or set a budget) after a
    /// batch of insertions, which the builder and feedback paths do.
    pub fn insert(&mut self, entry: HetEntry) {
        match self.index.get(&(entry.key, entry.kind)) {
            Some(&i) => self.entries[i] = entry,
            None => {
                self.index
                    .insert((entry.key, entry.kind), self.entries.len());
                self.entries.push(entry);
            }
        }
    }

    /// Convenience: inserts a simple-path entry.
    pub fn insert_simple(&mut self, key: u64, cardinality: u64, bsel: f64, error: f64) {
        self.insert(HetEntry {
            key,
            kind: HetEntryKind::SimplePath,
            cardinality,
            bsel,
            error,
        });
    }

    /// Convenience: inserts a correlated (branching) entry.
    pub fn insert_correlated(&mut self, key: u64, cardinality: u64, bsel: f64, error: f64) {
        self.insert(HetEntry {
            key,
            kind: HetEntryKind::Correlated,
            cardinality,
            bsel,
            error,
        });
    }

    /// Sets the byte budget available to the table and recomputes which
    /// entries are resident. `None` means unlimited.
    pub fn set_budget(&mut self, budget_bytes: Option<usize>) {
        self.budget_bytes = budget_bytes;
        self.rebuild_residency();
    }

    /// The current byte budget.
    pub fn budget(&self) -> Option<usize> {
        self.budget_bytes
    }

    /// Recomputes the resident set: entries are sorted by decreasing error
    /// and admitted until the budget is exhausted.
    pub fn rebuild_residency(&mut self) {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            self.entries[b]
                .error
                .partial_cmp(&self.entries[a].error)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let max_entries = match self.budget_bytes {
            Some(bytes) => bytes / ENTRY_BYTES,
            None => usize::MAX,
        };
        let admitted = || order.iter().take(max_entries).map(|&i| &self.entries[i]);
        let simple = admitted()
            .filter(|e| e.kind == HetEntryKind::SimplePath)
            .count();
        self.resident_simple = FastMap::with_capacity(simple);
        self.resident_correlated = FastMap::with_capacity(order.len().min(max_entries) - simple);
        for &i in order.iter().take(max_entries) {
            let e = &self.entries[i];
            match e.kind {
                HetEntryKind::SimplePath => self.resident_simple.insert(e.key, i as u32),
                HetEntryKind::Correlated => self.resident_correlated.insert(e.key, i as u32),
            };
        }
    }

    /// Looks up a resident simple-path entry: `(actual cardinality, actual
    /// backward selectivity)`.
    pub fn lookup_simple(&self, key: u64) -> Option<(u64, f64)> {
        self.resident_simple.get(key).map(|i| {
            (
                self.entries[i as usize].cardinality,
                self.entries[i as usize].bsel,
            )
        })
    }

    /// The direct answer for a rooted *simple path expression* (child
    /// axes, name tests, no predicates) with a resident entry: the actual
    /// cardinality (Section 5, "Cardinality estimation"). Allocation-free;
    /// this is the one fast path shared by both matchers, so the streaming
    /// estimator and its materialized differential-testing oracle cannot
    /// drift apart.
    pub fn answer_simple_path(
        &self,
        names: &xmlkit::names::NameTable,
        expr: &xpathkit::ast::PathExpr,
    ) -> Option<f64> {
        let hash = crate::het::hash::simple_path_hash(names, expr)?;
        self.lookup_simple(hash).map(|(card, _)| card as f64)
    }

    /// Looks up a resident correlated entry: the correlated backward
    /// selectivity.
    pub fn lookup_correlated(&self, key: u64) -> Option<f64> {
        self.resident_correlated
            .get(key)
            .map(|i| self.entries[i as usize].bsel)
    }

    /// Number of entries known to the table (resident or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of resident entries.
    pub fn resident_len(&self) -> usize {
        self.resident_simple.len() + self.resident_correlated.len()
    }

    /// Bytes consumed by the resident entries.
    pub fn resident_bytes(&self) -> usize {
        self.resident_len() * ENTRY_BYTES
    }

    /// Iterates over all entries (resident or not) in insertion order.
    ///
    /// Residency ties on equal error are broken by this order (the
    /// residency sort is stable), so a serializer that preserves it —
    /// [`crate::persist`] — reproduces the exact resident set on reload.
    pub fn entries(&self) -> impl Iterator<Item = &HetEntry> {
        self.entries.iter()
    }

    /// Iterates over all entries (resident or not), largest error first.
    pub fn entries_by_error(&self) -> Vec<&HetEntry> {
        let mut all: Vec<&HetEntry> = self.entries.iter().collect();
        all.sort_by(|a, b| {
            b.error
                .partial_cmp(&a.error)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(n: usize) -> HyperEdgeTable {
        let mut t = HyperEdgeTable::new();
        for i in 0..n {
            t.insert_simple(i as u64, i as u64 * 10, 0.5, i as f64);
        }
        t.rebuild_residency();
        t
    }

    #[test]
    fn unlimited_budget_keeps_everything_resident() {
        let t = table_with(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.resident_len(), 10);
        assert_eq!(t.lookup_simple(3), Some((30, 0.5)));
        assert_eq!(t.lookup_simple(99), None);
    }

    #[test]
    fn budget_keeps_largest_errors() {
        let mut t = table_with(10);
        // Budget for 3 entries.
        t.set_budget(Some(3 * ENTRY_BYTES));
        assert_eq!(t.resident_len(), 3);
        // The entries with the largest errors (keys 9, 8, 7) survive.
        assert!(t.lookup_simple(9).is_some());
        assert!(t.lookup_simple(8).is_some());
        assert!(t.lookup_simple(7).is_some());
        assert!(t.lookup_simple(0).is_none());
        // All entries are still known (secondary storage).
        assert_eq!(t.len(), 10);
        assert_eq!(t.resident_bytes(), 3 * ENTRY_BYTES);
        // Raising the budget brings them back.
        t.set_budget(None);
        assert_eq!(t.resident_len(), 10);
    }

    #[test]
    fn insert_updates_existing_entry() {
        let mut t = HyperEdgeTable::new();
        t.insert_simple(7, 100, 0.5, 10.0);
        t.insert_simple(7, 200, 0.25, 20.0);
        t.rebuild_residency();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup_simple(7), Some((200, 0.25)));
    }

    #[test]
    fn simple_and_correlated_are_separate_namespaces() {
        let mut t = HyperEdgeTable::new();
        t.insert_simple(5, 10, 0.9, 1.0);
        t.insert_correlated(5, 4, 0.35, 2.0);
        t.rebuild_residency();
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup_simple(5), Some((10, 0.9)));
        assert_eq!(t.lookup_correlated(5), Some(0.35));
        assert_eq!(t.lookup_correlated(6), None);
    }

    #[test]
    fn entries_by_error_sorted() {
        let t = table_with(5);
        let errors: Vec<f64> = t.entries_by_error().iter().map(|e| e.error).collect();
        assert_eq!(errors, vec![4.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_budget_evicts_everything() {
        let mut t = table_with(4);
        t.set_budget(Some(0));
        assert_eq!(t.resident_len(), 0);
        assert!(t.lookup_simple(3).is_none());
        assert!(!t.is_empty());
    }
}
