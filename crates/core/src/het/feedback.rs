//! Query-feedback population of the hyper-edge table.
//!
//! Instead of (or in addition to) pre-computation, the optimizer can feed
//! back the *actual* cardinality observed after executing a query
//! (Figure 1, the arrow from the optimizer back to the HET). Simple-path
//! feedback updates or creates a simple-path entry; feedback for
//! single-level branching paths of the form `p[q1]...[qm]/r` updates the
//! corresponding correlated entry. Other query shapes are ignored — their
//! statistics cannot be attributed to a single hyper-edge.

use crate::het::hash::{correlated_key, path_hash};
use crate::het::table::HyperEdgeTable;
use crate::kernel::Kernel;
use xmlkit::names::{LabelId, NameTable};
use xpathkit::ast::{Axis, NodeTest, PathExpr};

/// Outcome of a feedback submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackOutcome {
    /// A simple-path entry was inserted or updated.
    SimplePath,
    /// A correlated (branching) entry was inserted or updated.
    Correlated,
    /// The query shape cannot be stored in the HET and was ignored.
    Unsupported,
}

impl FeedbackOutcome {
    /// The stable wire token for this outcome (`simple` / `correlated` /
    /// `unsupported`) — what the serving layer's `FEEDBACK` reply carries.
    pub fn as_str(self) -> &'static str {
        match self {
            FeedbackOutcome::SimplePath => "simple",
            FeedbackOutcome::Correlated => "correlated",
            FeedbackOutcome::Unsupported => "unsupported",
        }
    }
}

impl std::fmt::Display for FeedbackOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The storable hyper-edge a query shape maps to, resolved against a
/// name table. This is the shared decision between [`classify`]
/// (shape-only, no mutation) and [`record_feedback`] (applies the
/// observation), so the two can never disagree. Within one name table
/// the analysis runs once — the synopsis derives the shape and hands it
/// to [`record_shape`]. (A caller that classified against a *different*
/// table — e.g. a published snapshot's, outside any lock — re-derives at
/// recording time so the stored keys always match the state being
/// mutated.)
pub(crate) enum FeedbackShape {
    Simple(u64),
    Correlated {
        parent_labels: Vec<LabelId>,
        pred_labels: Vec<LabelId>,
        result_label: LabelId,
    },
    Unsupported,
}

impl FeedbackShape {
    pub(crate) fn outcome(&self) -> FeedbackOutcome {
        match self {
            FeedbackShape::Simple(_) => FeedbackOutcome::SimplePath,
            FeedbackShape::Correlated { .. } => FeedbackOutcome::Correlated,
            FeedbackShape::Unsupported => FeedbackOutcome::Unsupported,
        }
    }
}

pub(crate) fn feedback_shape(names: &NameTable, expr: &PathExpr) -> FeedbackShape {
    if let Some(key) = crate::het::hash::simple_path_hash(names, expr) {
        return FeedbackShape::Simple(key);
    }
    if let Some((parent_labels, pred_labels, result_label)) = branching_shape(names, expr) {
        return FeedbackShape::Correlated {
            parent_labels,
            pred_labels,
            result_label,
        };
    }
    FeedbackShape::Unsupported
}

/// Applies an already-classified shape to `het`. The companion of
/// [`feedback_shape`]: together they are [`record_feedback`], split so a
/// caller can classify once (possibly lock-free, against a published
/// snapshot's names) and record later without re-deriving the shape.
pub(crate) fn record_shape(
    het: &mut HyperEdgeTable,
    shape: FeedbackShape,
    estimated: f64,
    actual: u64,
    base_cardinality: Option<u64>,
) -> FeedbackOutcome {
    let error = (estimated - actual as f64).abs();
    match shape {
        FeedbackShape::Simple(key) => {
            // The feedback gives the cardinality; the backward selectivity
            // of the path is not observable from the count alone, so keep
            // a neutral value unless a base cardinality was provided.
            let bsel = match base_cardinality {
                Some(base) if base > 0 => (actual as f64 / base as f64).min(1.0),
                _ => 1.0,
            };
            het.insert_simple(key, actual, bsel, error);
            het.rebuild_residency();
            FeedbackOutcome::SimplePath
        }
        FeedbackShape::Correlated {
            parent_labels,
            pred_labels,
            result_label,
        } => {
            let base = base_cardinality.unwrap_or(0);
            let bsel = if base > 0 {
                (actual as f64 / base as f64).min(1.0)
            } else if estimated > 0.0 {
                (actual as f64 / estimated).min(1.0)
            } else {
                1.0
            };
            let key = correlated_key(path_hash(&parent_labels), &pred_labels, result_label);
            het.insert_correlated(key, actual, bsel, error);
            het.rebuild_residency();
            FeedbackOutcome::Correlated
        }
        FeedbackShape::Unsupported => FeedbackOutcome::Unsupported,
    }
}

/// The outcome feeding back `expr` *would* have, without touching any
/// table: whether the query maps to a simple-path entry, a correlated
/// entry, or no storable hyper-edge at all. Needs only the name table,
/// so it can run lock-free against a published snapshot. Callers that
/// must avoid side effects for unsupported shapes (e.g. an epoch-bumping
/// synopsis update) check this first; [`record_feedback`] makes the same
/// decision through the same shape analysis.
pub fn classify(names: &NameTable, expr: &PathExpr) -> FeedbackOutcome {
    feedback_shape(names, expr).outcome()
}

/// Applies query feedback to `het`.
///
/// * `expr` — the executed query,
/// * `estimated` — the synopsis estimate that was used,
/// * `actual` — the observed cardinality,
/// * `base_cardinality` — for branching feedback, the cardinality of the
///   same path without predicates (`p/r`), used to derive the correlated
///   backward selectivity; pass `None` to fall back to the estimate-based
///   derivation.
pub fn record_feedback(
    het: &mut HyperEdgeTable,
    kernel: &Kernel,
    expr: &PathExpr,
    estimated: f64,
    actual: u64,
    base_cardinality: Option<u64>,
) -> FeedbackOutcome {
    // Shared shape definition with the matchers' fast paths (and with
    // `classify`).
    record_shape(
        het,
        feedback_shape(kernel.names(), expr),
        estimated,
        actual,
        base_cardinality,
    )
}

/// Decomposes `p[q1]...[qm]/r` (all child axes, name tests, single-step
/// leaf predicates) into `(labels of p, predicate labels, label of r)`.
fn branching_shape(
    names: &NameTable,
    expr: &PathExpr,
) -> Option<(Vec<LabelId>, Vec<LabelId>, LabelId)> {
    if expr.len() < 2 {
        return None;
    }
    let (last, prefix) = expr.steps.split_last()?;
    if last.axis != Axis::Child || !last.predicates.is_empty() {
        return None;
    }
    let result_label = resolve(names, &last.test)?;
    let (pred_step, clean_prefix) = prefix.split_last()?;
    if pred_step.axis != Axis::Child || pred_step.predicates.is_empty() {
        return None;
    }
    let mut parent_labels = Vec::with_capacity(prefix.len());
    for step in clean_prefix {
        if step.axis != Axis::Child || !step.predicates.is_empty() {
            return None;
        }
        parent_labels.push(resolve(names, &step.test)?);
    }
    parent_labels.push(resolve(names, &pred_step.test)?);
    let mut pred_labels = Vec::with_capacity(pred_step.predicates.len());
    for pred in &pred_step.predicates {
        if pred.len() != 1 {
            return None;
        }
        let only = &pred.steps[0];
        if only.axis != Axis::Child || !only.predicates.is_empty() {
            return None;
        }
        pred_labels.push(resolve(names, &only.test)?);
    }
    Some((parent_labels, pred_labels, result_label))
}

fn resolve(names: &NameTable, test: &NodeTest) -> Option<LabelId> {
    match test {
        NodeTest::Name(n) => names.lookup(n),
        NodeTest::Wildcard => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use xmlkit::samples::figure2_document;
    use xpathkit::parse;

    fn kernel() -> Kernel {
        KernelBuilder::from_document(&figure2_document())
    }

    #[test]
    fn simple_path_feedback_inserts_entry() {
        let kernel = kernel();
        let mut het = HyperEdgeTable::new();
        let expr = parse("/a/c/s").unwrap();
        let outcome = record_feedback(&mut het, &kernel, &expr, 7.0, 5, None);
        assert_eq!(outcome, FeedbackOutcome::SimplePath);
        let names = kernel.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let key = path_hash(&[l("a"), l("c"), l("s")]);
        assert_eq!(het.lookup_simple(key).map(|(c, _)| c), Some(5));
    }

    #[test]
    fn branching_feedback_inserts_correlated_entry() {
        let kernel = kernel();
        let mut het = HyperEdgeTable::new();
        let expr = parse("/a/c/s[t]/p").unwrap();
        let outcome = record_feedback(&mut het, &kernel, &expr, 3.6, 4, Some(9));
        assert_eq!(outcome, FeedbackOutcome::Correlated);
        let names = kernel.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let key = correlated_key(path_hash(&[l("a"), l("c"), l("s")]), &[l("t")], l("p"));
        let bsel = het.lookup_correlated(key).unwrap();
        assert!((bsel - 4.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn multi_predicate_branching_feedback() {
        let kernel = kernel();
        let mut het = HyperEdgeTable::new();
        let expr = parse("/a/c/s[t][s]/p").unwrap();
        let outcome = record_feedback(&mut het, &kernel, &expr, 1.44, 2, Some(9));
        assert_eq!(outcome, FeedbackOutcome::Correlated);
        assert_eq!(het.len(), 1);
    }

    #[test]
    fn unsupported_shapes_are_ignored() {
        let kernel = kernel();
        let mut het = HyperEdgeTable::new();
        for q in ["//s//p", "/a/*/t", "/a/c[s[t]]/p", "/a/c[//t]/s"] {
            let outcome = record_feedback(&mut het, &kernel, &parse(q).unwrap(), 1.0, 2, None);
            assert_eq!(outcome, FeedbackOutcome::Unsupported, "query {q}");
        }
        assert!(het.is_empty());
    }

    #[test]
    fn unknown_names_are_ignored() {
        let kernel = kernel();
        let mut het = HyperEdgeTable::new();
        let outcome = record_feedback(&mut het, &kernel, &parse("/a/zzz").unwrap(), 0.0, 0, None);
        assert_eq!(outcome, FeedbackOutcome::Unsupported);
    }

    #[test]
    fn classify_agrees_with_record_feedback() {
        let kernel = kernel();
        for (q, expected) in [
            ("/a/c/s", FeedbackOutcome::SimplePath),
            ("/a/c/s[t]/p", FeedbackOutcome::Correlated),
            ("/a/c/s[t][s]/p", FeedbackOutcome::Correlated),
            ("//s//p", FeedbackOutcome::Unsupported),
            ("/a/*/t", FeedbackOutcome::Unsupported),
            ("/a/zzz", FeedbackOutcome::Unsupported),
        ] {
            let expr = parse(q).unwrap();
            assert_eq!(classify(kernel.names(), &expr), expected, "classify {q}");
            let mut het = HyperEdgeTable::new();
            let recorded = record_feedback(&mut het, &kernel, &expr, 1.0, 2, None);
            assert_eq!(recorded, expected, "record {q}");
        }
        assert_eq!(FeedbackOutcome::SimplePath.to_string(), "simple");
        assert_eq!(FeedbackOutcome::Correlated.as_str(), "correlated");
        assert_eq!(FeedbackOutcome::Unsupported.as_str(), "unsupported");
    }

    #[test]
    fn feedback_updates_existing_entry() {
        let kernel = kernel();
        let mut het = HyperEdgeTable::new();
        let expr = parse("/a/c").unwrap();
        record_feedback(&mut het, &kernel, &expr, 5.0, 2, None);
        record_feedback(&mut het, &kernel, &expr, 2.0, 3, None);
        assert_eq!(het.len(), 1);
        let names = kernel.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let key = path_hash(&[l("a"), l("c")]);
        assert_eq!(het.lookup_simple(key).map(|(c, _)| c), Some(3));
    }
}
