//! The top-level XSEED synopsis: kernel + optional HET + configuration.
//!
//! This is the type a query optimizer would hold: build it once from a
//! document (or from SAX events), optionally pre-compute the hyper-edge
//! table, give it a memory budget, and ask it for cardinality estimates.

use crate::config::XseedConfig;
use crate::estimate::ept::ExpandedPathTree;
use crate::estimate::matcher::Matcher;
use crate::estimate::streaming::{
    BoundedEstimate, CompiledCacheStats, CompiledPlanCache, FrontierMemo, StreamingMatcher,
};
use crate::het::builder::{HetBuildStats, HetBuilder};
use crate::het::feedback::FeedbackOutcome;
use crate::het::table::HyperEdgeTable;
use crate::kernel::{FrozenKernel, Kernel, KernelBuilder};
use crate::partition::PartitionPlan;
use nokstore::{NokStorage, PathTree};
use std::sync::{Arc, OnceLock};
use xmlkit::names::NameTable;
use xmlkit::tree::Document;
use xpathkit::ast::PathExpr;

/// Result of an estimation call, with diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateReport {
    /// The estimated cardinality.
    pub cardinality: f64,
    /// Number of expanded-path-tree nodes the streaming traversal visited
    /// for this estimate — at most (and, without reachability pruning,
    /// exactly) the size of the materialized EPT.
    pub ept_nodes: usize,
}

/// Result of one feedback submission
/// ([`XseedSynopsis::record_feedback_report`]): what was recorded plus the
/// estimate-vs-actual delta the synopsis was carrying for the query. The
/// `error` is the absolute-error mass a maintenance policy accumulates to
/// decide when a synopsis has drifted far enough to rebuild its HET.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackReport {
    /// What kind of hyper-edge entry (if any) the feedback updated.
    pub outcome: FeedbackOutcome,
    /// The synopsis' estimate for the query *before* the feedback applied.
    pub estimated: f64,
    /// The observed cardinality that was fed back.
    pub actual: u64,
    /// `|estimated - actual|` — the absolute error the feedback exposed.
    pub error: f64,
}

/// The XSEED synopsis.
#[derive(Debug)]
pub struct XseedSynopsis {
    kernel: Kernel,
    /// Shared so snapshot publication is an `Arc` bump; mutated in place
    /// only when uniquely owned (copy-on-write via [`Arc::make_mut`]).
    het: Option<Arc<HyperEdgeTable>>,
    config: XseedConfig,
    /// Epoch counter: bumped by every mutation that can change estimates
    /// ([`XseedSynopsis::kernel_mut`], HET/config changes), so published
    /// [`SynopsisSnapshot`]s can be told apart from the current state.
    epoch: u64,
    /// Lazily built read-optimized snapshot serving the estimate hot path;
    /// shared (`Arc`) so concurrent readers keep estimating against a
    /// consistent snapshot across kernel updates. Invalidated whenever the
    /// kernel is mutated (see [`XseedSynopsis::kernel_mut`]).
    frozen: OnceLock<Arc<FrozenKernel>>,
    /// Lazily built self-contained snapshot bundle handed to concurrent
    /// estimation services; invalidated with `frozen` plus on HET/config
    /// mutations.
    snapshot: OnceLock<SynopsisSnapshot>,
}

impl Clone for XseedSynopsis {
    fn clone(&self) -> Self {
        let frozen = OnceLock::new();
        if let Some(shared) = self.frozen.get() {
            let _ = frozen.set(shared.clone());
        }
        let snapshot = OnceLock::new();
        if let Some(snap) = self.snapshot.get() {
            let _ = snapshot.set(snap.clone());
        }
        XseedSynopsis {
            kernel: self.kernel.clone(),
            het: self.het.clone(),
            config: self.config.clone(),
            epoch: self.epoch,
            frozen,
            snapshot,
        }
    }
}

impl XseedSynopsis {
    fn new(kernel: Kernel, het: Option<Arc<HyperEdgeTable>>, config: XseedConfig) -> Self {
        XseedSynopsis {
            kernel,
            het,
            config,
            epoch: 0,
            frozen: OnceLock::new(),
            snapshot: OnceLock::new(),
        }
    }

    /// Bumps the epoch and drops the published snapshot bundle. Every
    /// `&mut self` method that can change estimates must call this.
    fn invalidate_snapshot(&mut self) {
        self.epoch += 1;
        self.snapshot = OnceLock::new();
    }

    /// Builds a kernel-only synopsis from a document.
    pub fn build(doc: &Document, config: XseedConfig) -> Self {
        XseedSynopsis::new(KernelBuilder::from_document(doc), None, config)
    }

    /// Builds a kernel-only synopsis by SAX-parsing XML text.
    pub fn build_from_xml(xml: &str, config: XseedConfig) -> Result<Self, xmlkit::Error> {
        Ok(XseedSynopsis::new(
            KernelBuilder::from_xml_str(xml)?,
            None,
            config,
        ))
    }

    /// Builds the synopsis *and* pre-computes the hyper-edge table from the
    /// document's exact statistics (path tree + streaming NoK evaluation),
    /// honouring the configured memory budget. Construction is driven by
    /// the streaming matcher — one frontier expansion recorded and
    /// replayed per candidate, no materialized EPT; see
    /// [`crate::het::builder`].
    pub fn build_with_het(doc: &Document, config: XseedConfig) -> (Self, HetBuildStats) {
        Self::build_with_het_strategy(doc, config, crate::het::BselThresholdStrategy)
    }

    /// Builds a kernel-only synopsis using `partitions` parallel workers,
    /// each constructing a partial kernel over a contiguous range of
    /// root-child subtrees, then merging ([`crate::partition`]). The merged
    /// kernel is bit-identical (same serialized bytes) to the one
    /// [`XseedSynopsis::build`] produces.
    pub fn build_partitioned(doc: &Document, config: XseedConfig, partitions: usize) -> Self {
        let plan = PartitionPlan::for_document(doc, partitions);
        XseedSynopsis::new(
            crate::partition::build_kernel_partitioned(doc, &plan),
            None,
            config,
        )
    }

    /// [`XseedSynopsis::build_with_het`] using `partitions` parallel
    /// workers for synopsis construction: per-partition kernels and path
    /// trees are built concurrently and merged bit-compatibly, and the
    /// exact branching counts run one worker per partition. Estimates from
    /// the result are bit-identical to the monolithic build's.
    pub fn build_with_het_partitioned(
        doc: &Document,
        config: XseedConfig,
        partitions: usize,
    ) -> (Self, HetBuildStats) {
        Self::build_with_het_partitioned_strategy(
            doc,
            config,
            partitions,
            crate::het::BselThresholdStrategy,
        )
    }

    /// [`XseedSynopsis::build_with_het_partitioned`] with an explicit
    /// candidate strategy.
    pub fn build_with_het_partitioned_strategy(
        doc: &Document,
        config: XseedConfig,
        partitions: usize,
        strategy: impl crate::het::CandidateStrategy + 'static,
    ) -> (Self, HetBuildStats) {
        let plan = PartitionPlan::for_document(doc, partitions);
        let (kernel, path_tree, storage) = crate::partition::build_synopsis_inputs(doc, &plan);
        let (het, stats) = HetBuilder::new(&kernel, &path_tree, &storage, &config)
            .with_strategy(strategy)
            .build_partitioned(plan.ranges());
        (
            XseedSynopsis::new(kernel, Some(Arc::new(het)), config),
            stats,
        )
    }

    /// [`XseedSynopsis::build_with_het`] with an explicit candidate
    /// strategy choosing which path-tree nodes get branching entries (e.g.
    /// [`crate::het::TopKErrorStrategy`] to bound construction cost).
    pub fn build_with_het_strategy(
        doc: &Document,
        config: XseedConfig,
        strategy: impl crate::het::CandidateStrategy + 'static,
    ) -> (Self, HetBuildStats) {
        let kernel = KernelBuilder::from_document(doc);
        let path_tree = PathTree::from_document(doc);
        let storage = NokStorage::from_document(doc);
        let (het, stats) = HetBuilder::new(&kernel, &path_tree, &storage, &config)
            .with_strategy(strategy)
            .build();
        (
            XseedSynopsis::new(kernel, Some(Arc::new(het)), config),
            stats,
        )
    }

    /// Rebuilds the hyper-edge table in place from `doc`'s exact
    /// statistics using the streaming builder, replacing any existing
    /// table and **bumping the epoch** (via [`XseedSynopsis::set_het`]),
    /// so snapshots published afterwards carry the fresh table while
    /// earlier ones keep estimating with the old one. `doc` must be the
    /// document this synopsis' kernel summarizes — after incremental
    /// kernel updates, pass the post-update document.
    pub fn rebuild_het(&mut self, doc: &Document) -> HetBuildStats {
        self.rebuild_het_with_strategy(doc, crate::het::BselThresholdStrategy)
    }

    /// [`XseedSynopsis::rebuild_het`] with an explicit candidate strategy.
    pub fn rebuild_het_with_strategy(
        &mut self,
        doc: &Document,
        strategy: impl crate::het::CandidateStrategy + 'static,
    ) -> HetBuildStats {
        let path_tree = PathTree::from_document(doc);
        let storage = NokStorage::from_document(doc);
        let (het, stats) = HetBuilder::new(&self.kernel, &path_tree, &storage, &self.config)
            .with_strategy(strategy)
            .build();
        self.set_het(het);
        stats
    }

    /// Wraps an existing kernel (e.g. one deserialized from disk).
    pub fn from_kernel(kernel: Kernel, config: XseedConfig) -> Self {
        XseedSynopsis::new(kernel, None, config)
    }

    /// Reassembles a synopsis from previously persisted parts — kernel,
    /// optional HET, config, and the epoch it was saved at — without any
    /// of the epoch bumps the mutating setters apply. Used by snapshot
    /// restore ([`crate::persist`]): the reloaded synopsis starts at the
    /// exact saved epoch, so published snapshot identities survive a
    /// restart.
    pub fn from_parts(
        kernel: Kernel,
        het: Option<HyperEdgeTable>,
        config: XseedConfig,
        epoch: u64,
    ) -> Self {
        let mut synopsis = XseedSynopsis::new(kernel, het.map(Arc::new), config);
        synopsis.epoch = epoch;
        synopsis
    }

    /// Attaches (or replaces) a hyper-edge table.
    pub fn set_het(&mut self, het: HyperEdgeTable) {
        self.invalidate_snapshot();
        self.het = Some(Arc::new(het));
    }

    /// Drops the hyper-edge table, leaving the bare kernel.
    pub fn clear_het(&mut self) {
        self.invalidate_snapshot();
        self.het = None;
    }

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the kernel (e.g. for incremental subtree updates).
    /// Taking it **bumps the epoch and invalidates the frozen snapshot**,
    /// which is rebuilt lazily on the next estimate; batch kernel updates
    /// accordingly. Snapshots handed out earlier (via
    /// [`XseedSynopsis::snapshot`] or [`XseedSynopsis::shared_frozen_kernel`])
    /// are unaffected: they keep estimating against their own consistent
    /// pre-update state.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        self.invalidate_snapshot();
        self.frozen = OnceLock::new();
        &mut self.kernel
    }

    /// Epoch counter of the current estimate state: starts at 0 and is
    /// bumped by every mutation that can change estimates (kernel updates,
    /// HET attachment/feedback, config changes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Raises the epoch to at least `to` (dropping the cached snapshot
    /// when it actually moves). Used when this synopsis *replaces* another
    /// one under the same published name — e.g. a catalog re-`LOAD` — so
    /// observed epochs never regress or collide across the swap.
    pub fn advance_epoch(&mut self, to: u64) {
        if self.epoch < to {
            self.epoch = to;
            self.snapshot = OnceLock::new();
        }
    }

    /// The read-optimized snapshot serving the estimate hot path, built on
    /// first use and cached until the kernel is mutated.
    pub fn frozen_kernel(&self) -> &FrozenKernel {
        self.shared_frozen()
    }

    /// Shared handle to the frozen snapshot. Cloning the `Arc` is the
    /// race-proof way to keep estimating across concurrent updates: a
    /// handle taken before [`XseedSynopsis::kernel_mut`] still points at
    /// the pre-update snapshot.
    pub fn shared_frozen_kernel(&self) -> Arc<FrozenKernel> {
        self.shared_frozen().clone()
    }

    fn shared_frozen(&self) -> &Arc<FrozenKernel> {
        self.frozen
            .get_or_init(|| Arc::new(FrozenKernel::freeze(&self.kernel)))
    }

    /// Publishes the current estimate state as a self-contained,
    /// epoch-stamped, `Send + Sync` snapshot bundle (frozen kernel, name
    /// table, config, HET). The bundle is cached until the next mutation,
    /// so repeated calls between updates hand out the same cheap `Arc`
    /// clone; see [`SynopsisSnapshot`].
    pub fn snapshot(&self) -> SynopsisSnapshot {
        self.snapshot
            .get_or_init(|| SynopsisSnapshot {
                inner: Arc::new(SnapshotInner {
                    epoch: self.epoch,
                    frozen: self.shared_frozen_kernel(),
                    names: self.kernel.names().clone(),
                    config: self.config.clone(),
                    het: self.het.clone(),
                    memo: OnceLock::new(),
                    compiled: OnceLock::new(),
                    eff_threshold: OnceLock::new(),
                }),
            })
            .clone()
    }

    /// The hyper-edge table, if any.
    pub fn het(&self) -> Option<&HyperEdgeTable> {
        self.het.as_deref()
    }

    /// The configuration.
    pub fn config(&self) -> &XseedConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to raise the cardinality
    /// threshold for a highly recursive document).
    pub fn config_mut(&mut self) -> &mut XseedConfig {
        self.invalidate_snapshot();
        &mut self.config
    }

    /// Estimates the cardinality of a path expression.
    ///
    /// Runs the streaming matcher over the frozen kernel snapshot: no EPT
    /// arena is materialized, and the snapshot is shared by every estimate
    /// until the kernel changes.
    pub fn estimate(&self, expr: &PathExpr) -> f64 {
        self.streaming_matcher().estimate(expr)
    }

    /// Estimates the cardinality of a path expression, also reporting the
    /// number of EPT nodes visited (the quantity Section 6.4 tracks).
    pub fn estimate_with_stats(&self, expr: &PathExpr) -> EstimateReport {
        let (cardinality, ept_nodes) = self.streaming_matcher().estimate_with_stats(expr);
        EstimateReport {
            cardinality,
            ept_nodes,
        }
    }

    /// Estimates a path expression in bound mode: the point estimate
    /// paired with a guaranteed upper bound on the true cardinality (see
    /// [`StreamingMatcher::estimate_bound`]).
    pub fn estimate_bound(&self, expr: &PathExpr) -> BoundedEstimate {
        self.streaming_matcher().estimate_bound(expr)
    }

    /// Estimates a whole batch of queries over one shared frontier memo
    /// (the traveler's expansion recorded once per epoch and replayed per
    /// query), returning the estimates in input order. The memo is cached
    /// on the published snapshot, so repeated batches between updates pay
    /// the expansion exactly once.
    pub fn estimate_batch(&self, exprs: &[PathExpr]) -> Vec<f64> {
        self.snapshot().estimate_batch(exprs)
    }

    /// Creates a streaming matcher over the frozen snapshot. Reusing one
    /// matcher across many queries keeps its scratch buffers warm; each
    /// [`XseedSynopsis::estimate`] call otherwise creates a fresh one.
    pub fn streaming_matcher(&self) -> StreamingMatcher<'_> {
        let mut matcher = StreamingMatcher::new(
            self.frozen_kernel(),
            self.kernel.names(),
            &self.config,
            self.het.as_deref(),
        );
        // The snapshot bundle caches the effective threshold; sharing it
        // here means one-shot estimates skip the escalation counting
        // passes too.
        matcher.set_effective_card_threshold(self.snapshot().effective_card_threshold());
        matcher
    }

    /// Creates a reusable estimator that materializes the EPT once — the
    /// API-compatible arena path, kept as the differential-testing oracle
    /// for the streaming matcher and for callers that want to inspect the
    /// EPT itself.
    pub fn estimator(&self) -> SynopsisEstimator<'_> {
        let ept = ExpandedPathTree::generate(&self.kernel, &self.config, self.het.as_deref());
        SynopsisEstimator {
            synopsis: self,
            ept,
        }
    }

    /// Feeds back the actual cardinality of an executed query (Figure 1's
    /// feedback arrow). Creates the HET on first use. Returns what kind of
    /// entry (if any) was recorded.
    pub fn record_feedback(
        &mut self,
        expr: &PathExpr,
        actual: u64,
        base_cardinality: Option<u64>,
    ) -> FeedbackOutcome {
        self.record_feedback_report(expr, actual, base_cardinality)
            .outcome
    }

    /// [`XseedSynopsis::record_feedback`] with full diagnostics: the
    /// estimate the synopsis held before the feedback and the absolute
    /// error it exposed — the quantity a maintenance policy accumulates.
    ///
    /// Unsupported query shapes are **side-effect free**: the shape is
    /// classified before anything is touched (and only once — the same
    /// analysis drives the recording), so ignored feedback neither bumps
    /// the epoch nor invalidates published snapshots.
    pub fn record_feedback_report(
        &mut self,
        expr: &PathExpr,
        actual: u64,
        base_cardinality: Option<u64>,
    ) -> FeedbackReport {
        let estimated = self.estimate(expr);
        self.apply_feedback(expr, estimated, actual, base_cardinality)
    }

    /// [`XseedSynopsis::record_feedback_report`] with the prior estimate
    /// supplied by the caller — the serving layer computes it from the
    /// *published* snapshot outside any writer lock (it is exactly the
    /// estimate the feedback's client was served), so only the cheap HET
    /// insert runs under exclusive access.
    pub fn apply_feedback(
        &mut self,
        expr: &PathExpr,
        estimated: f64,
        actual: u64,
        base_cardinality: Option<u64>,
    ) -> FeedbackReport {
        let report = self.apply_feedback_deferred(expr, estimated, actual, base_cardinality);
        if report.outcome != FeedbackOutcome::Unsupported {
            self.reapply_het_budget();
        }
        report
    }

    /// [`XseedSynopsis::apply_feedback`] without the budget re-trim —
    /// batch callers apply many observations and re-trim once at the end
    /// ([`XseedSynopsis::record_feedback_batch_reports`]) instead of
    /// paying a residency rebuild per item.
    fn apply_feedback_deferred(
        &mut self,
        expr: &PathExpr,
        estimated: f64,
        actual: u64,
        base_cardinality: Option<u64>,
    ) -> FeedbackReport {
        let error = (estimated - actual as f64).abs();
        let shape = crate::het::feedback::feedback_shape(self.kernel.names(), expr);
        let outcome = shape.outcome();
        if outcome == FeedbackOutcome::Unsupported {
            return FeedbackReport {
                outcome,
                estimated,
                actual,
                error,
            };
        }
        self.invalidate_snapshot();
        let het = Arc::make_mut(
            self.het
                .get_or_insert_with(|| Arc::new(HyperEdgeTable::new())),
        );
        let recorded =
            crate::het::feedback::record_shape(het, shape, estimated, actual, base_cardinality);
        debug_assert_eq!(recorded, outcome);
        FeedbackReport {
            outcome: recorded,
            estimated,
            actual,
            error,
        }
    }

    /// Re-applies the memory budget to the HET (a new entry may displace
    /// others once the budget re-trims residency).
    fn reapply_het_budget(&mut self) {
        if let Some(het) = &mut self.het {
            let budget = self
                .config
                .memory_budget
                .map(|total| total.saturating_sub(self.kernel.size_bytes()));
            Arc::make_mut(het).set_budget(budget);
        }
    }

    /// Applies a whole sequence of observations, estimating each against
    /// the state left by the items before it (sequential refinement) and
    /// re-applying the memory budget **once** at the end — the batch form
    /// of [`XseedSynopsis::record_feedback_report`].
    pub fn record_feedback_batch_reports<'a>(
        &mut self,
        items: impl IntoIterator<Item = (&'a PathExpr, u64, Option<u64>)>,
    ) -> Vec<FeedbackReport> {
        let reports: Vec<FeedbackReport> = items
            .into_iter()
            .map(|(expr, actual, base)| {
                let estimated = self.estimate(expr);
                self.apply_feedback_deferred(expr, estimated, actual, base)
            })
            .collect();
        if reports
            .iter()
            .any(|r| r.outcome != FeedbackOutcome::Unsupported)
        {
            self.reapply_het_budget();
        }
        reports
    }

    /// Changes the total memory budget (kernel + HET) and re-trims the HET
    /// residency accordingly. The kernel itself is never dropped — it is
    /// the irreducible part of the synopsis.
    pub fn set_memory_budget(&mut self, bytes: Option<usize>) {
        self.invalidate_snapshot();
        self.config.memory_budget = bytes;
        if let Some(het) = &mut self.het {
            let het = Arc::make_mut(het);
            let budget = bytes.map(|total| total.saturating_sub(self.kernel.size_bytes()));
            het.set_budget(budget);
        }
    }

    /// Bytes used by the kernel (compact serialized form).
    pub fn kernel_size_bytes(&self) -> usize {
        self.kernel.size_bytes()
    }

    /// Bytes used by the resident HET entries.
    pub fn het_resident_bytes(&self) -> usize {
        self.het.as_deref().map(|h| h.resident_bytes()).unwrap_or(0)
    }

    /// Total memory footprint of the synopsis.
    pub fn size_bytes(&self) -> usize {
        self.kernel_size_bytes() + self.het_resident_bytes()
    }
}

/// A self-contained, epoch-stamped publication of a synopsis' estimate
/// state: the frozen kernel (shared by `Arc`), the name table, the config,
/// and the HET, plus a lazily built [`FrontierMemo`] for batched
/// estimation.
///
/// The bundle is immutable and `Send + Sync`: any number of threads can
/// estimate from one snapshot concurrently without locks, and a snapshot
/// taken before [`XseedSynopsis::kernel_mut`] keeps answering from its own
/// consistent pre-update state while the synopsis publishes a new one.
/// Cloning is an `Arc` bump.
#[derive(Debug, Clone)]
pub struct SynopsisSnapshot {
    inner: Arc<SnapshotInner>,
}

#[derive(Debug)]
struct SnapshotInner {
    epoch: u64,
    frozen: Arc<FrozenKernel>,
    names: NameTable,
    config: XseedConfig,
    het: Option<Arc<HyperEdgeTable>>,
    /// Built on first batched estimate, then shared by every worker
    /// estimating from this snapshot.
    memo: OnceLock<Arc<FrontierMemo>>,
    /// Per-snapshot compiled-query cache (plan id → label-resolved
    /// [`crate::estimate::streaming::CompiledQuery`]), created on first
    /// use and shared by every matcher handed out from this snapshot. An
    /// epoch bump publishes a fresh snapshot and thereby a fresh cache, so
    /// stale compilations can never outlive the label space they were
    /// resolved against.
    compiled: OnceLock<Arc<CompiledPlanCache>>,
    /// The snapshot's effective cardinality threshold (the configured
    /// `card_threshold`, escalated until the expansion fits
    /// `max_ept_nodes`). Resolved once per snapshot and injected into
    /// every matcher handed out, so the per-query cold path never pays
    /// the counting passes itself.
    eff_threshold: OnceLock<f64>,
}

impl SynopsisSnapshot {
    /// Epoch of the synopsis state this snapshot was taken from.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The frozen kernel.
    pub fn frozen(&self) -> &FrozenKernel {
        &self.inner.frozen
    }

    /// The element-name table the snapshot's queries resolve against.
    pub fn names(&self) -> &NameTable {
        &self.inner.names
    }

    /// The estimator configuration captured with the snapshot.
    pub fn config(&self) -> &XseedConfig {
        &self.inner.config
    }

    /// The hyper-edge table captured with the snapshot, if any.
    pub fn het(&self) -> Option<&HyperEdgeTable> {
        self.inner.het.as_deref()
    }

    /// A streaming matcher over this snapshot, with the snapshot's shared
    /// compiled-query cache installed (so
    /// [`StreamingMatcher::estimate_plan`] reuses label-resolved
    /// compilations across all matchers of this snapshot). Each worker
    /// thread should hold its own matcher (scratch buffers are
    /// per-matcher); the underlying snapshot data is shared.
    pub fn matcher(&self) -> StreamingMatcher<'_> {
        let mut matcher =
            StreamingMatcher::new(self.frozen(), self.names(), self.config(), self.het());
        matcher.set_compiled_cache(self.compiled_cache().clone());
        matcher.set_effective_card_threshold(self.effective_card_threshold());
        matcher
    }

    /// The snapshot's effective cardinality threshold: the configured
    /// `card_threshold`, escalated until the traveler's expansion fits
    /// within `max_ept_nodes` nodes (see
    /// [`crate::config::XseedConfig::max_ept_nodes`]). Resolved by
    /// query-independent counting passes on first use and cached for the
    /// snapshot's lifetime.
    pub(crate) fn effective_card_threshold(&self) -> f64 {
        *self.inner.eff_threshold.get_or_init(|| {
            StreamingMatcher::new(self.frozen(), self.names(), self.config(), self.het())
                .effective_card_threshold()
        })
    }

    /// Counters of the compiled-query cache **without forcing its
    /// creation** — the read monitoring should use: a snapshot never
    /// estimated through cached plans reports zeros and allocates
    /// nothing.
    pub fn compiled_cache_stats(&self) -> CompiledCacheStats {
        self.inner
            .compiled
            .get()
            .map(|cache| cache.stats())
            .unwrap_or_default()
    }

    /// The snapshot's shared compiled-query cache, created on first use.
    /// Capacity comes from [`XseedConfig::compiled_cache_capacity`].
    pub fn compiled_cache(&self) -> &Arc<CompiledPlanCache> {
        self.inner.compiled.get_or_init(|| {
            Arc::new(CompiledPlanCache::new(
                8,
                self.inner.config.compiled_cache_capacity,
            ))
        })
    }

    /// A streaming matcher with this snapshot's shared frontier memo
    /// installed — the batch hot path. The memo is built on first use and
    /// cached for the snapshot's lifetime.
    pub fn batch_matcher(&self) -> StreamingMatcher<'_> {
        let mut matcher = self.matcher();
        matcher.set_frontier_memo(self.frontier_memo().clone());
        matcher
    }

    /// The matcher a batch of `batch_len` queries should use — the single
    /// home of the memo-activation policy: memoized replay for real
    /// batches, the cold streaming pass for 0/1 queries. Singles stay
    /// cold even when a memo already exists because a lone query is
    /// cheaper without the replay setup; the choice is purely a
    /// performance knob, since both paths walk the same frontier (the
    /// expansion is a deterministic function of the snapshot + config +
    /// HET, threshold escalation included).
    pub fn matcher_for_batch(&self, batch_len: usize) -> StreamingMatcher<'_> {
        if batch_len > 1 {
            self.batch_matcher()
        } else {
            self.matcher()
        }
    }

    /// The shared frontier memo (the traveler's expansion recorded once),
    /// built on first use.
    pub fn frontier_memo(&self) -> &Arc<FrontierMemo> {
        self.inner.memo.get_or_init(|| {
            Arc::new(FrontierMemo::build(
                self.frozen(),
                self.config(),
                self.het(),
            ))
        })
    }

    /// Estimates one query (one-shot matcher; for many queries prefer
    /// [`SynopsisSnapshot::matcher`] or [`SynopsisSnapshot::estimate_batch`]).
    pub fn estimate(&self, expr: &PathExpr) -> f64 {
        self.matcher().estimate(expr)
    }

    /// Estimates one cached plan through the snapshot's compiled-query
    /// cache: a repeat of the same [`xpathkit::QueryPlan`] (same identity)
    /// skips recompilation entirely. One-shot matcher; for many plans
    /// prefer [`SynopsisSnapshot::matcher`].
    pub fn estimate_plan(&self, plan: &xpathkit::QueryPlan) -> f64 {
        self.matcher().estimate_plan(plan)
    }

    /// Estimates one query in bound mode (point estimate + guaranteed
    /// upper bound; see [`StreamingMatcher::estimate_bound`]). One-shot
    /// matcher; for many queries hold a [`SynopsisSnapshot::matcher`].
    pub fn estimate_bound(&self, expr: &PathExpr) -> BoundedEstimate {
        self.matcher().estimate_bound(expr)
    }

    /// Estimates one cached plan in bound mode through the snapshot's
    /// compiled-query cache (see
    /// [`StreamingMatcher::estimate_plan_bound`]).
    pub fn estimate_plan_bound(&self, plan: &xpathkit::QueryPlan) -> BoundedEstimate {
        self.matcher().estimate_plan_bound(plan)
    }

    /// Estimates a batch of queries over the shared frontier memo,
    /// returning estimates in input order. Matcher selection follows
    /// [`SynopsisSnapshot::matcher_for_batch`].
    pub fn estimate_batch(&self, exprs: &[PathExpr]) -> Vec<f64> {
        let mut matcher = self.matcher_for_batch(exprs.len());
        exprs.iter().map(|q| matcher.estimate(q)).collect()
    }
}

/// A reusable estimator holding a materialized EPT.
pub struct SynopsisEstimator<'a> {
    synopsis: &'a XseedSynopsis,
    ept: ExpandedPathTree,
}

impl<'a> SynopsisEstimator<'a> {
    /// Estimates the cardinality of a path expression.
    pub fn estimate(&self, expr: &PathExpr) -> f64 {
        Matcher::new(
            &self.synopsis.kernel,
            &self.ept,
            self.synopsis.het.as_deref(),
        )
        .estimate(expr)
    }

    /// Number of nodes in the materialized EPT.
    pub fn ept_len(&self) -> usize {
        self.ept.len()
    }

    /// The materialized expanded path tree.
    pub fn ept(&self) -> &ExpandedPathTree {
        &self.ept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nokstore::Evaluator;
    use xmlkit::samples::{figure2_document, figure4_document};
    use xpathkit::parse;

    #[test]
    fn kernel_only_estimates() {
        let doc = figure2_document();
        let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        assert!((synopsis.estimate(&parse("/a/c/s").unwrap()) - 5.0).abs() < 1e-6);
        assert!((synopsis.estimate(&parse("/a/c/s/s/t").unwrap()) - 1.0).abs() < 1e-6);
        assert!(synopsis.het().is_none());
        assert!(synopsis.size_bytes() > 0);
        assert_eq!(synopsis.size_bytes(), synopsis.kernel_size_bytes());
    }

    #[test]
    fn estimate_bound_dominates_truth_through_synopsis_and_snapshot() {
        let doc = figure2_document();
        let storage = NokStorage::from_document(&doc);
        let eval = Evaluator::new(&storage);
        let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        let snap = synopsis.snapshot();
        for q in ["/a/c/s", "//p", "/a/c/s[t]/p", "//s//s//p", "/a/*"] {
            let expr = parse(q).unwrap();
            let actual = eval.count(&expr) as f64;
            let be = synopsis.estimate_bound(&expr);
            assert!(be.bound >= actual, "{q}: bound {} < {actual}", be.bound);
            assert!(be.bound >= be.estimate, "{q}");
            assert_eq!(snap.estimate_bound(&expr), be);
            let plan = xpathkit::QueryPlan::parse(q).unwrap();
            assert_eq!(
                snap.estimate_plan_bound(&plan).bound.to_bits(),
                be.bound.to_bits()
            );
        }
    }

    #[test]
    fn partitioned_build_estimates_are_bit_identical() {
        for doc in [figure2_document(), figure4_document()] {
            let config = XseedConfig::default().with_bsel_threshold(0.99);
            let (mono, mono_stats) = XseedSynopsis::build_with_het(&doc, config.clone());
            for partitions in [1usize, 2, 4, 7] {
                let kernel_only =
                    XseedSynopsis::build_partitioned(&doc, config.clone(), partitions);
                assert_eq!(
                    kernel_only.kernel().serialize(),
                    mono.kernel().serialize(),
                    "kernel bytes diverge at partitions={partitions}"
                );
                let (part, part_stats) =
                    XseedSynopsis::build_with_het_partitioned(&doc, config.clone(), partitions);
                assert_eq!(part_stats.simple_entries, mono_stats.simple_entries);
                assert_eq!(part_stats.correlated_entries, mono_stats.correlated_entries);
                assert_eq!(part.kernel().serialize(), mono.kernel().serialize());
                for q in ["/a/c/s", "//p", "/a/c/s[t]/p", "//s//s//p", "/a/*", "//*"] {
                    let Ok(expr) = parse(q) else { continue };
                    assert_eq!(
                        part.estimate(&expr).to_bits(),
                        mono.estimate(&expr).to_bits(),
                        "estimate diverges for {q} at partitions={partitions}"
                    );
                }
            }
        }
    }

    #[test]
    fn build_from_xml_matches_build_from_document() {
        let doc = figure2_document();
        let a = XseedSynopsis::build(&doc, XseedConfig::default());
        let b = XseedSynopsis::build_from_xml(xmlkit::samples::FIGURE2_XML, XseedConfig::default())
            .unwrap();
        let q = parse("//s//p").unwrap();
        assert!((a.estimate(&q) - b.estimate(&q)).abs() < 1e-9);
    }

    #[test]
    fn het_improves_branching_estimates_on_correlated_data() {
        // The Figure 4 document has strong parent/sibling correlations that
        // the bare kernel misestimates; the HET must reduce the error.
        let doc = figure4_document();
        let storage = NokStorage::from_document(&doc);
        let eval = Evaluator::new(&storage);
        let queries = ["/a/b/d/e", "/a/c/d/f", "/a/b/d[f]/e", "/a/c/d[f]/e"];

        let bare = XseedSynopsis::build(&doc, XseedConfig::default());
        let (with_het, stats) =
            XseedSynopsis::build_with_het(&doc, XseedConfig::default().with_bsel_threshold(0.99));
        assert!(stats.simple_entries > 0);

        let mut bare_error = 0.0;
        let mut het_error = 0.0;
        for q in queries {
            let expr = parse(q).unwrap();
            let actual = eval.count(&expr) as f64;
            bare_error += (bare.estimate(&expr) - actual).abs();
            het_error += (with_het.estimate(&expr) - actual).abs();
        }
        assert!(
            het_error < bare_error,
            "HET should reduce total error: {het_error} vs {bare_error}"
        );
        // Simple paths present in the HET are answered exactly.
        let expr = parse("/a/b/d/e").unwrap();
        assert!((with_het.estimate(&expr) - eval.count(&expr) as f64).abs() < 1e-6);
    }

    #[test]
    fn memory_budget_shrinks_het_not_kernel() {
        let doc = figure4_document();
        let (mut synopsis, _) =
            XseedSynopsis::build_with_het(&doc, XseedConfig::default().with_bsel_threshold(0.99));
        let full = synopsis.size_bytes();
        let kernel_bytes = synopsis.kernel_size_bytes();
        assert!(full > kernel_bytes);
        synopsis.set_memory_budget(Some(kernel_bytes + 32));
        assert!(synopsis.size_bytes() <= kernel_bytes + 32);
        assert_eq!(synopsis.kernel_size_bytes(), kernel_bytes);
        // Restoring an unlimited budget brings entries back.
        synopsis.set_memory_budget(None);
        assert_eq!(synopsis.size_bytes(), full);
    }

    #[test]
    fn rebuild_het_bumps_epoch_and_improves_estimates() {
        let doc = figure4_document();
        let storage = NokStorage::from_document(&doc);
        let eval = Evaluator::new(&storage);
        let mut synopsis =
            XseedSynopsis::build(&doc, XseedConfig::default().with_bsel_threshold(0.99));
        let expr = parse("/a/b/d/e").unwrap();
        let actual = eval.count(&expr) as f64;
        assert!((synopsis.estimate(&expr) - actual).abs() > 1e-6);

        // A snapshot taken before the rebuild keeps its kernel-only state.
        let old_snap = synopsis.snapshot();
        let epoch_before = synopsis.epoch();
        let stats = synopsis.rebuild_het(&doc);
        assert!(stats.simple_entries > 0);
        assert!(synopsis.epoch() > epoch_before);
        assert!((synopsis.estimate(&expr) - actual).abs() < 1e-6);
        assert!((old_snap.estimate(&expr) - actual).abs() > 1e-6);
        assert!(synopsis.snapshot().epoch() > old_snap.epoch());

        // Strategy-bounded rebuilds go through the same path.
        let stats =
            synopsis.rebuild_het_with_strategy(&doc, crate::het::TopKErrorStrategy { k: 1 });
        assert!(stats.candidate_nodes <= 1);
    }

    #[test]
    fn build_with_het_strategy_matches_default_for_bsel_threshold() {
        let doc = figure4_document();
        let config = XseedConfig::default().with_bsel_threshold(0.99);
        let (a, stats_a) = XseedSynopsis::build_with_het(&doc, config.clone());
        let (b, stats_b) =
            XseedSynopsis::build_with_het_strategy(&doc, config, crate::het::BselThresholdStrategy);
        assert_eq!(stats_a, stats_b);
        for q in ["/a/b/d/e", "/a/b/d[f]/e", "//d[e][f]"] {
            let expr = parse(q).unwrap();
            assert_eq!(a.estimate(&expr).to_bits(), b.estimate(&expr).to_bits());
        }
    }

    #[test]
    fn feedback_creates_het_and_improves_estimate() {
        let doc = figure4_document();
        let storage = NokStorage::from_document(&doc);
        let eval = Evaluator::new(&storage);
        let mut synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        let expr = parse("/a/b/d/e").unwrap();
        let actual = eval.count(&expr);
        let before = synopsis.estimate(&expr);
        assert!((before - actual as f64).abs() > 1e-6);
        let outcome = synopsis.record_feedback(&expr, actual, None);
        assert_eq!(outcome, FeedbackOutcome::SimplePath);
        let after = synopsis.estimate(&expr);
        assert!((after - actual as f64).abs() < 1e-6);
    }

    #[test]
    fn feedback_report_carries_error_and_skips_epoch_on_unsupported() {
        let doc = figure4_document();
        let storage = NokStorage::from_document(&doc);
        let eval = Evaluator::new(&storage);
        let mut synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        let expr = parse("/a/b/d/e").unwrap();
        let actual = eval.count(&expr);
        let before = synopsis.estimate(&expr);
        let epoch_before = synopsis.epoch();

        let report = synopsis.record_feedback_report(&expr, actual, None);
        assert_eq!(report.outcome, FeedbackOutcome::SimplePath);
        assert_eq!(report.actual, actual);
        assert!((report.estimated - before).abs() < 1e-12);
        assert!((report.error - (before - actual as f64).abs()).abs() < 1e-12);
        assert!(report.error > 1e-6, "figure 4 kernel estimate is inexact");
        assert!(synopsis.epoch() > epoch_before, "applied feedback bumps");

        // Unsupported shapes are side-effect free: no epoch bump, no new
        // entries, and the report still carries the delta.
        let epoch = synopsis.epoch();
        let unsupported = synopsis.record_feedback_report(&parse("//e//f").unwrap(), 3, None);
        assert_eq!(unsupported.outcome, FeedbackOutcome::Unsupported);
        assert_eq!(synopsis.epoch(), epoch, "ignored feedback must not bump");
        assert!((unsupported.error - (unsupported.estimated - 3.0).abs()).abs() < 1e-12);
    }

    #[test]
    fn estimator_reuse_matches_one_shot() {
        let doc = figure2_document();
        let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        let estimator = synopsis.estimator();
        for q in ["/a/c/s", "//s//p", "/a/c/s[t]/p", "/a/*"] {
            let expr = parse(q).unwrap();
            assert!((estimator.estimate(&expr) - synopsis.estimate(&expr)).abs() < 1e-9);
        }
        assert_eq!(estimator.ept_len(), 14);
        assert_eq!(estimator.ept().len(), 14);
    }

    #[test]
    fn estimate_with_stats_reports_visited_nodes() {
        let doc = figure2_document();
        let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        // //p prunes the t/u subtrees (no p below them), so the streaming
        // traversal visits fewer nodes than the 14-node materialized EPT.
        let report = synopsis.estimate_with_stats(&parse("//p").unwrap());
        assert!(report.ept_nodes > 0 && report.ept_nodes < 14);
        assert!((report.cardinality - 17.0).abs() < 1e-6);
        // A wildcard query visits the full EPT.
        let report = synopsis.estimate_with_stats(&parse("//*").unwrap());
        assert_eq!(report.ept_nodes, 14);
        assert_eq!(synopsis.estimator().ept_len(), 14);
    }

    #[test]
    fn kernel_mut_invalidates_frozen_snapshot() {
        let doc = figure2_document();
        let mut synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        assert!((synopsis.estimate(&parse("/a/c/s").unwrap()) - 5.0).abs() < 1e-9);
        // Graft a brand-new child under the root through the synopsis; the
        // snapshot must be rebuilt so the new edge is visible.
        let root_name = synopsis
            .kernel()
            .name(synopsis.kernel().root().unwrap())
            .to_string();
        let subtree = xmlkit::Document::parse_str("<zzz/>").unwrap();
        synopsis
            .kernel_mut()
            .add_subtree(&[root_name.as_str()], &subtree)
            .unwrap();
        assert!((synopsis.estimate(&parse("/a/zzz").unwrap()) - 1.0).abs() < 1e-9);
        // The unrelated estimate is unchanged.
        assert!((synopsis.estimate(&parse("/a/c/s").unwrap()) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn clone_preserves_estimates() {
        let doc = figure2_document();
        let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        let q = parse("/a/c/s[t]/p").unwrap();
        let warm = synopsis.estimate(&q); // populate the snapshot cache
        let cloned = synopsis.clone();
        assert!((cloned.estimate(&q) - warm).abs() < 1e-12);
    }

    #[test]
    fn card_threshold_reduces_ept() {
        let doc = figure2_document();
        let config = XseedConfig::default().with_card_threshold(2.0);
        let synopsis = XseedSynopsis::build(&doc, config);
        let report = synopsis.estimate_with_stats(&parse("//p").unwrap());
        assert!(report.ept_nodes < 14);
    }

    #[test]
    fn snapshot_is_send_sync_and_epoch_stamped() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynopsisSnapshot>();

        let doc = figure2_document();
        let mut synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        assert_eq!(synopsis.epoch(), 0);
        let snap = synopsis.snapshot();
        assert_eq!(snap.epoch(), 0);
        // Repeated snapshots between mutations share the same bundle.
        let again = synopsis.snapshot();
        assert!(Arc::ptr_eq(&snap.inner, &again.inner));

        let _ = synopsis.kernel_mut();
        assert_eq!(synopsis.epoch(), 1);
        assert_eq!(synopsis.snapshot().epoch(), 1);
        // HET/config mutations bump too.
        synopsis.set_memory_budget(Some(1 << 20));
        assert_eq!(synopsis.epoch(), 2);
        let _ = synopsis.config_mut();
        assert_eq!(synopsis.epoch(), 3);
    }

    #[test]
    fn snapshot_survives_kernel_update() {
        // A snapshot taken before an update keeps estimating against its
        // own consistent pre-update state (the race-proofing contract).
        let doc = figure2_document();
        let mut synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        let q = parse("/a/c/s").unwrap();
        let snap = synopsis.snapshot();
        let before = snap.estimate(&q);
        assert!((before - 5.0).abs() < 1e-9);

        let root_name = synopsis
            .kernel()
            .name(synopsis.kernel().root().unwrap())
            .to_string();
        let subtree = xmlkit::Document::parse_str("<zzz/>").unwrap();
        synopsis
            .kernel_mut()
            .add_subtree(&[root_name.as_str()], &subtree)
            .unwrap();

        // The synopsis sees the new edge; the old snapshot does not.
        assert!((synopsis.estimate(&parse("/a/zzz").unwrap()) - 1.0).abs() < 1e-9);
        assert_eq!(snap.estimate(&parse("/a/zzz").unwrap()), 0.0);
        assert!((snap.estimate(&q) - before).abs() < 1e-12);
        assert!(snap.epoch() < synopsis.epoch());
    }

    #[test]
    fn compiled_cache_stats_do_not_force_the_cache() {
        let doc = figure2_document();
        let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        let snap = synopsis.snapshot();
        // Reading stats on an untouched snapshot reports zeros (and, per
        // the implementation, allocates nothing).
        assert_eq!(snap.compiled_cache_stats(), Default::default());
        assert!(
            snap.inner.compiled.get().is_none(),
            "stats must not allocate"
        );
        let plan = xpathkit::QueryPlan::parse("/a/c/s").unwrap();
        assert!((snap.estimate_plan(&plan) - 5.0).abs() < 1e-9);
        assert_eq!(snap.compiled_cache_stats().misses, 1);
    }

    #[test]
    fn synopsis_estimate_batch_matches_estimate() {
        let doc = figure2_document();
        let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        let queries: Vec<_> = ["/a/c/s", "//s//p", "/a/c/s[t]/p", "/a/*", "//*"]
            .iter()
            .map(|q| parse(q).unwrap())
            .collect();
        let batch = synopsis.estimate_batch(&queries);
        for (expr, got) in queries.iter().zip(&batch) {
            assert!((synopsis.estimate(expr) - got).abs() < 1e-9);
        }
        // The snapshot's frontier memo is cached across batch calls.
        let snap = synopsis.snapshot();
        let memo = snap.frontier_memo().clone();
        let _ = snap.estimate_batch(&queries);
        assert!(Arc::ptr_eq(&memo, snap.frontier_memo()));
    }

    #[test]
    fn kernel_roundtrip_through_serialization() {
        let doc = figure2_document();
        let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
        let bytes = synopsis.kernel().serialize();
        let restored = XseedSynopsis::from_kernel(
            Kernel::deserialize(&bytes).unwrap(),
            XseedConfig::default(),
        );
        let q = parse("/a/c/s[t]/p").unwrap();
        assert!((synopsis.estimate(&q) - restored.estimate(&q)).abs() < 1e-9);
    }
}
