//! Edge labels: vectors of `(parent_count : child_count)` pairs indexed by
//! recursion level (Definition 4).

/// The statistics attached to one kernel edge `(u, v)`.
///
/// `pairs[i] = (pᵢ, cᵢ)` means: among the rooted paths whose recursion
/// level (after appending `v`) is `i`, there are `pᵢ` elements mapped to
/// `u` that have at least one `v` child, and `cᵢ` elements mapped to `v`
/// in total. Entry 0 always exists once the edge has been observed; deeper
/// entries are added on demand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdgeLabel {
    pairs: Vec<(u64, u64)>,
}

impl EdgeLabel {
    /// Creates an empty label (no recursion levels recorded yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a label from explicit `(parent_count, child_count)` pairs;
    /// handy in tests and when deserializing.
    pub fn from_pairs(pairs: Vec<(u64, u64)>) -> Self {
        EdgeLabel { pairs }
    }

    /// Number of recursion levels recorded (the paper's `e.label.size()`).
    pub fn levels(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` if no recursion level has been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Parent count at recursion level `level` (0 if the level is absent).
    pub fn parent_count(&self, level: usize) -> u64 {
        self.pairs.get(level).map(|&(p, _)| p).unwrap_or(0)
    }

    /// Child count at recursion level `level` (0 if the level is absent).
    pub fn child_count(&self, level: usize) -> u64 {
        self.pairs.get(level).map(|&(_, c)| c).unwrap_or(0)
    }

    /// Sum of child counts over all recursion levels `>= level`
    /// (Observation 3: the result count of `q//u//v` at recursion level
    /// `level`).
    pub fn child_count_from(&self, level: usize) -> u64 {
        self.pairs.iter().skip(level).map(|&(_, c)| c).sum()
    }

    /// Total child count over all recursion levels.
    pub fn total_child_count(&self) -> u64 {
        self.child_count_from(0)
    }

    /// Total parent count over all recursion levels.
    pub fn total_parent_count(&self) -> u64 {
        self.pairs.iter().map(|&(p, _)| p).sum()
    }

    /// Increments the child count at `level`, growing the vector if needed.
    pub fn add_child(&mut self, level: usize, delta: u64) {
        self.ensure_level(level);
        self.pairs[level].1 += delta;
    }

    /// Increments the parent count at `level`, growing the vector if needed.
    pub fn add_parent(&mut self, level: usize, delta: u64) {
        self.ensure_level(level);
        self.pairs[level].0 += delta;
    }

    /// Decrements the child count at `level`, saturating at zero.
    pub fn remove_child(&mut self, level: usize, delta: u64) {
        if let Some(pair) = self.pairs.get_mut(level) {
            pair.1 = pair.1.saturating_sub(delta);
        }
        self.shrink();
    }

    /// Decrements the parent count at `level`, saturating at zero.
    pub fn remove_parent(&mut self, level: usize, delta: u64) {
        if let Some(pair) = self.pairs.get_mut(level) {
            pair.0 = pair.0.saturating_sub(delta);
        }
        self.shrink();
    }

    /// Iterates over `(level, parent_count, child_count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.pairs.iter().enumerate().map(|(i, &(p, c))| (i, p, c))
    }

    /// Returns `true` if every recorded count is zero.
    pub fn is_zero(&self) -> bool {
        self.pairs.iter().all(|&(p, c)| p == 0 && c == 0)
    }

    fn ensure_level(&mut self, level: usize) {
        if self.pairs.len() <= level {
            self.pairs.resize(level + 1, (0, 0));
        }
    }

    /// Drops empty trailing levels so `levels()` reflects the maximum
    /// recursion level actually present.
    fn shrink(&mut self) {
        while matches!(self.pairs.last(), Some(&(0, 0))) {
            self.pairs.pop();
        }
    }
}

impl std::fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, &(p, c)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}:{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_level() {
        let mut l = EdgeLabel::new();
        l.add_child(0, 5);
        l.add_parent(0, 2);
        l.add_child(2, 3);
        l.add_parent(2, 1);
        assert_eq!(l.levels(), 3);
        assert_eq!(l.child_count(0), 5);
        assert_eq!(l.parent_count(0), 2);
        assert_eq!(l.child_count(1), 0);
        assert_eq!(l.child_count(2), 3);
        assert_eq!(l.child_count(5), 0);
    }

    #[test]
    fn observation3_suffix_sums() {
        // The (s,p) edge of Figure 2(b): (5:9, 1:2, 2:3).
        let l = EdgeLabel::from_pairs(vec![(5, 9), (1, 2), (2, 3)]);
        assert_eq!(l.total_child_count(), 14);
        // //s//p at recursion level 1: child counts at level 1 and above.
        assert_eq!(l.child_count_from(1), 5);
        assert_eq!(l.child_count_from(2), 3);
        assert_eq!(l.child_count_from(3), 0);
        assert_eq!(l.total_parent_count(), 8);
    }

    #[test]
    fn display_matches_paper_notation() {
        let l = EdgeLabel::from_pairs(vec![(0, 0), (2, 2), (1, 2)]);
        assert_eq!(l.to_string(), "(0:0, 2:2, 1:2)");
        assert_eq!(EdgeLabel::new().to_string(), "()");
    }

    #[test]
    fn removal_saturates_and_shrinks() {
        let mut l = EdgeLabel::from_pairs(vec![(1, 2), (1, 1)]);
        l.remove_child(1, 1);
        l.remove_parent(1, 1);
        assert_eq!(l.levels(), 1);
        l.remove_child(0, 10);
        l.remove_parent(0, 10);
        assert!(l.is_empty());
        assert!(l.is_zero());
        // Removing from a missing level is a no-op.
        l.remove_child(7, 1);
        assert!(l.is_empty());
    }

    #[test]
    fn iter_levels() {
        let l = EdgeLabel::from_pairs(vec![(1, 2), (3, 4)]);
        let v: Vec<_> = l.iter().collect();
        assert_eq!(v, vec![(0, 1, 2), (1, 3, 4)]);
    }
}
