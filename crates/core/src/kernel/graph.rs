//! The kernel graph: an edge-labeled label-split graph.
//!
//! One vertex per distinct element name observed in the document, one edge
//! per observed parent/child name pair, and an [`EdgeLabel`] per edge with
//! `(parent_count : child_count)` pairs indexed by recursion level.

use super::label::EdgeLabel;
use std::collections::HashMap;
use std::fmt;
use xmlkit::names::{LabelId, NameTable};

/// Identifier of a kernel vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a kernel edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A vertex of the kernel (one per element name).
#[derive(Debug, Clone)]
struct Vertex {
    label: LabelId,
    out_edges: Vec<EdgeId>,
    in_edges: Vec<EdgeId>,
}

/// A directed edge of the kernel.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Source vertex (the parent element name).
    pub from: VertexId,
    /// Target vertex (the child element name).
    pub to: VertexId,
    /// The recursion-level-indexed statistics.
    pub label: EdgeLabel,
}

/// The XSEED kernel graph.
#[derive(Debug, Clone, Default)]
pub struct Kernel {
    names: NameTable,
    vertex_by_label: HashMap<LabelId, VertexId>,
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
    edge_index: HashMap<(VertexId, VertexId), EdgeId>,
    root: Option<VertexId>,
    element_count: u64,
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Construction primitives (used by the builder and incremental update)
    // ------------------------------------------------------------------

    /// Returns the vertex for `name`, creating it (and interning the name)
    /// if necessary. This is the paper's `GET-VERTEX`.
    pub fn get_or_create_vertex(&mut self, name: &str) -> VertexId {
        let label = self.names.intern(name);
        if let Some(&v) = self.vertex_by_label.get(&label) {
            return v;
        }
        let v = VertexId(self.vertices.len() as u32);
        self.vertices.push(Vertex {
            label,
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        });
        self.vertex_by_label.insert(label, v);
        v
    }

    /// Returns the edge `(u, v)`, creating it if necessary. This is the
    /// paper's `GET-EDGE`.
    pub fn get_or_create_edge(&mut self, u: VertexId, v: VertexId) -> EdgeId {
        if let Some(&e) = self.edge_index.get(&(u, v)) {
            return e;
        }
        let e = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            from: u,
            to: v,
            label: EdgeLabel::new(),
        });
        self.vertices[u.index()].out_edges.push(e);
        self.vertices[v.index()].in_edges.push(e);
        self.edge_index.insert((u, v), e);
        e
    }

    /// Sets the root vertex (the vertex of the document root element).
    pub fn set_root(&mut self, v: VertexId) {
        self.root = Some(v);
    }

    /// Records `delta` additional elements in the document (used by the
    /// builder to keep the total element count).
    pub fn add_elements(&mut self, delta: u64) {
        self.element_count += delta;
    }

    /// Removes `delta` elements from the total count, saturating at zero.
    pub fn remove_elements(&mut self, delta: u64) {
        self.element_count = self.element_count.saturating_sub(delta);
    }

    /// Mutable access to an edge's label.
    pub fn edge_label_mut(&mut self, e: EdgeId) -> &mut EdgeLabel {
        &mut self.edges[e.index()].label
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// The name table of the kernel.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// The root vertex, if the kernel is non-empty.
    pub fn root(&self) -> Option<VertexId> {
        self.root
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total number of elements in the summarized document(s).
    pub fn element_count(&self) -> u64 {
        self.element_count
    }

    /// The vertex for an element name, if present.
    pub fn vertex_by_name(&self, name: &str) -> Option<VertexId> {
        let label = self.names.lookup(name)?;
        self.vertex_by_label.get(&label).copied()
    }

    /// The vertex for a label id, if present.
    pub fn vertex_by_label(&self, label: LabelId) -> Option<VertexId> {
        self.vertex_by_label.get(&label).copied()
    }

    /// The label id of a vertex.
    pub fn label(&self, v: VertexId) -> LabelId {
        self.vertices[v.index()].label
    }

    /// The element name of a vertex.
    pub fn name(&self, v: VertexId) -> &str {
        self.names.name_or_panic(self.vertices[v.index()].label)
    }

    /// All vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// All edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// The edge data for `e`.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Out-edges of `v` in insertion (document discovery) order.
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.vertices[v.index()].out_edges
    }

    /// In-edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.vertices[v.index()].in_edges
    }

    /// The edge from `u` to `v`, if present.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.edge_index.get(&(u, v)).copied()
    }

    /// The label of the edge `(u, v)`, if present.
    pub fn edge_label(&self, u: VertexId, v: VertexId) -> Option<&EdgeLabel> {
        self.edge_between(u, v)
            .map(|e| &self.edges[e.index()].label)
    }

    /// `S_v` at a recursion level (Definition 5): the sum of child counts
    /// at `level` over all in-edges of `v`. For the root vertex (which has
    /// no in-edges) this returns 1, matching the convention that the root
    /// element has cardinality 1.
    pub fn in_child_sum(&self, v: VertexId, level: usize) -> u64 {
        let sum: u64 = self.vertices[v.index()]
            .in_edges
            .iter()
            .map(|&e| self.edges[e.index()].label.child_count(level))
            .sum();
        if sum == 0 && Some(v) == self.root && level == 0 {
            1
        } else {
            sum
        }
    }

    /// Sum of child counts over all in-edges of `v` and all recursion
    /// levels `>= level` — the denominator used for `//`-axis estimates.
    pub fn in_child_sum_from(&self, v: VertexId, level: usize) -> u64 {
        let sum: u64 = self.vertices[v.index()]
            .in_edges
            .iter()
            .map(|&e| self.edges[e.index()].label.child_count_from(level))
            .sum();
        if sum == 0 && Some(v) == self.root && level == 0 {
            1
        } else {
            sum
        }
    }

    /// Total number of elements mapped to vertex `v` (all levels).
    pub fn vertex_cardinality(&self, v: VertexId) -> u64 {
        self.in_child_sum_from(v, 0)
    }

    /// Removes edges whose labels have become all-zero (after subtree
    /// removal) and vertices with no remaining edges. Ids are *not*
    /// reused; the kernel keeps tombstones internally, which is fine for
    /// an in-memory synopsis whose size accounting is based on the
    /// serialized form.
    ///
    /// Runs in one pass over the edges: the adjacency lists are rebuilt
    /// from scratch rather than `retain`-scanned per dead edge (the old
    /// path was O(E·deg) and dominated bulk subtree removals).
    pub fn prune_zero_edges(&mut self) {
        if !self
            .edge_index
            .values()
            .any(|&e| self.edges[e.index()].label.is_zero())
        {
            return;
        }
        for vertex in &mut self.vertices {
            vertex.out_edges.clear();
            vertex.in_edges.clear();
        }
        for (i, edge) in self.edges.iter_mut().enumerate() {
            let e = EdgeId(i as u32);
            let key = (edge.from, edge.to);
            if edge.label.is_zero() {
                // Only unlink the index entry if it still points at this
                // edge — a pruned-then-recreated edge pair leaves an older
                // tombstone with the same endpoints behind.
                if self.edge_index.get(&key) == Some(&e) {
                    self.edge_index.remove(&key);
                }
                // Normalize the tombstone to an empty label.
                edge.label = EdgeLabel::new();
            } else if self.edge_index.get(&key) == Some(&e) {
                self.vertices[edge.from.index()].out_edges.push(e);
                self.vertices[edge.to.index()].in_edges.push(e);
            }
        }
    }

    /// Live edges (those still wired into the adjacency lists).
    pub fn live_edge_count(&self) -> usize {
        self.edge_index.len()
    }
}

impl fmt::Display for Kernel {
    /// Prints each edge in the paper's notation, e.g.
    /// `s -> p (5:9, 1:2, 2:3)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "XSEED kernel: {} vertices, {} edges, {} elements",
            self.vertex_count(),
            self.live_edge_count(),
            self.element_count()
        )?;
        let mut keys: Vec<(&str, &str, EdgeId)> = self
            .edge_index
            .values()
            .map(|&e| {
                let edge = &self.edges[e.index()];
                (self.name(edge.from), self.name(edge.to), e)
            })
            .collect();
        keys.sort();
        for (from, to, e) in keys {
            writeln!(f, "  {from} -> {to} {}", self.edges[e.index()].label)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernel() -> Kernel {
        // a -> b (1:2), b -> c (2:3)
        let mut k = Kernel::new();
        let a = k.get_or_create_vertex("a");
        let b = k.get_or_create_vertex("b");
        let c = k.get_or_create_vertex("c");
        k.set_root(a);
        let ab = k.get_or_create_edge(a, b);
        k.edge_label_mut(ab).add_child(0, 2);
        k.edge_label_mut(ab).add_parent(0, 1);
        let bc = k.get_or_create_edge(b, c);
        k.edge_label_mut(bc).add_child(0, 3);
        k.edge_label_mut(bc).add_parent(0, 2);
        k.add_elements(6);
        k
    }

    #[test]
    fn vertices_are_deduplicated() {
        let mut k = Kernel::new();
        let a1 = k.get_or_create_vertex("a");
        let a2 = k.get_or_create_vertex("a");
        assert_eq!(a1, a2);
        assert_eq!(k.vertex_count(), 1);
    }

    #[test]
    fn edges_are_deduplicated() {
        let mut k = Kernel::new();
        let a = k.get_or_create_vertex("a");
        let b = k.get_or_create_vertex("b");
        let e1 = k.get_or_create_edge(a, b);
        let e2 = k.get_or_create_edge(a, b);
        assert_eq!(e1, e2);
        assert_eq!(k.edge_count(), 1);
        // The reverse direction is a different edge.
        let e3 = k.get_or_create_edge(b, a);
        assert_ne!(e1, e3);
    }

    #[test]
    fn adjacency_and_lookup() {
        let k = tiny_kernel();
        let a = k.vertex_by_name("a").unwrap();
        let b = k.vertex_by_name("b").unwrap();
        let c = k.vertex_by_name("c").unwrap();
        assert_eq!(k.out_edges(a).len(), 1);
        assert_eq!(k.in_edges(c).len(), 1);
        assert!(k.edge_between(a, b).is_some());
        assert!(k.edge_between(a, c).is_none());
        assert_eq!(k.edge_label(b, c).unwrap().child_count(0), 3);
        assert_eq!(k.name(a), "a");
        assert!(k.vertex_by_name("zzz").is_none());
        assert_eq!(k.root(), Some(a));
        assert_eq!(k.element_count(), 6);
    }

    #[test]
    fn in_child_sum_and_root_convention() {
        let k = tiny_kernel();
        let a = k.vertex_by_name("a").unwrap();
        let b = k.vertex_by_name("b").unwrap();
        let c = k.vertex_by_name("c").unwrap();
        // Root has no in-edges: S = 1 by convention.
        assert_eq!(k.in_child_sum(a, 0), 1);
        assert_eq!(k.in_child_sum(b, 0), 2);
        assert_eq!(k.in_child_sum(c, 0), 3);
        assert_eq!(k.in_child_sum(c, 1), 0);
        assert_eq!(k.vertex_cardinality(c), 3);
        assert_eq!(k.in_child_sum_from(b, 0), 2);
    }

    #[test]
    fn prune_zero_edges_removes_adjacency() {
        let mut k = tiny_kernel();
        let b = k.vertex_by_name("b").unwrap();
        let c = k.vertex_by_name("c").unwrap();
        let bc = k.edge_between(b, c).unwrap();
        k.edge_label_mut(bc).remove_child(0, 3);
        k.edge_label_mut(bc).remove_parent(0, 2);
        k.prune_zero_edges();
        assert!(k.edge_between(b, c).is_none());
        assert_eq!(k.out_edges(b).len(), 0);
        assert_eq!(k.in_edges(c).len(), 0);
        assert_eq!(k.live_edge_count(), 1);
    }

    #[test]
    fn display_lists_edges() {
        let k = tiny_kernel();
        let s = k.to_string();
        assert!(s.contains("a -> b (1:2)"));
        assert!(s.contains("b -> c (2:3)"));
    }
}
