//! Single-pass kernel construction (Algorithm 1).
//!
//! The builder consumes opening/closing element events — from the SAX
//! parser, from an in-memory [`Document`], or driven manually — and
//! maintains:
//!
//! * `path_stack`: one entry per currently open element, holding the
//!   kernel vertex it maps to and the set of `(edge, recursion level)`
//!   pairs of its children observed so far (used to increment parent
//!   counts exactly once per parent element when it closes), and
//! * `rl_counter`: the counter-stacks structure giving the recursion level
//!   of the current rooted path in O(1).

use super::graph::{EdgeId, Kernel, VertexId};
use crate::counter_stacks::CounterStacks;
use xmlkit::sax::{SaxEvent, SaxParser};
use xmlkit::tree::{Document, NodeId};

/// Streaming builder for the XSEED kernel.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    kernel: Kernel,
    path_stack: Vec<OpenElement>,
    rl_counter: CounterStacks<VertexId>,
}

#[derive(Debug)]
struct OpenElement {
    vertex: VertexId,
    /// Distinct `(edge, recursion level)` pairs of this element's children.
    child_edges: Vec<(EdgeId, usize)>,
}

impl KernelBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes an opening tag (Algorithm 1, lines 4–15).
    pub fn open_element(&mut self, name: &str) {
        let v = self.kernel.get_or_create_vertex(name);
        self.kernel.add_elements(1);
        if self.path_stack.is_empty() {
            self.rl_counter.push(v);
            if self.kernel.root().is_none() {
                self.kernel.set_root(v);
            }
            self.path_stack.push(OpenElement {
                vertex: v,
                child_edges: Vec::new(),
            });
        } else {
            let parent = self.path_stack.last().expect("stack checked non-empty");
            let u = parent.vertex;
            let e = self.kernel.get_or_create_edge(u, v);
            let level = self.rl_counter.push(v);
            self.kernel.edge_label_mut(e).add_child(level, 1);
            let parent = self.path_stack.last_mut().expect("stack checked non-empty");
            if !parent.child_edges.contains(&(e, level)) {
                parent.child_edges.push((e, level));
            }
            self.path_stack.push(OpenElement {
                vertex: v,
                child_edges: Vec::new(),
            });
        }
    }

    /// Processes a closing tag (Algorithm 1, lines 16–20).
    pub fn close_element(&mut self) {
        let closed = self
            .path_stack
            .pop()
            .expect("close_element without a matching open_element");
        for (e, level) in closed.child_edges {
            self.kernel.edge_label_mut(e).add_parent(level, 1);
        }
        self.rl_counter.pop(&closed.vertex);
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.path_stack.len()
    }

    /// Finishes construction and returns the kernel.
    ///
    /// # Panics
    ///
    /// Panics if elements are still open — that indicates a bug at the
    /// call site (unbalanced open/close calls).
    pub fn finish(self) -> Kernel {
        assert!(
            self.path_stack.is_empty(),
            "kernel builder finished with {} unclosed element(s)",
            self.path_stack.len()
        );
        self.kernel
    }

    /// Finishes construction with the **root element still open**,
    /// returning a [`PartialKernel`]: the per-partition half-product of
    /// partitioned construction (see [`crate::partition`]). Everything
    /// below the root is fully accounted; only the root's own
    /// parent-count increments (one per distinct `(edge, level)` pair of
    /// its children) are deferred, because in a partitioned build the
    /// root's children are split across partitions and the increment must
    /// happen exactly once for the *document* root, not once per
    /// partition.
    ///
    /// # Panics
    ///
    /// Panics unless exactly the root element is open.
    pub fn finish_suspended(mut self) -> PartialKernel {
        assert_eq!(
            self.path_stack.len(),
            1,
            "finish_suspended requires exactly the root element open, found {}",
            self.path_stack.len()
        );
        let root = self.path_stack.pop().expect("length checked above");
        self.rl_counter.pop(&root.vertex);
        PartialKernel {
            kernel: self.kernel,
            root_child_edges: root.child_edges,
        }
    }

    /// Drives the builder over the subtree rooted at `n` with an explicit
    /// Enter/Leave stack (children pushed reversed, so subtrees are
    /// visited in document order).
    fn drive_subtree(&mut self, doc: &Document, n: NodeId) {
        enum Step {
            Enter(NodeId),
            Leave,
        }
        let mut stack = vec![Step::Enter(n)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(n) => {
                    self.open_element(doc.name(n));
                    stack.push(Step::Leave);
                    let children: Vec<NodeId> = doc.children(n).collect();
                    for c in children.into_iter().rev() {
                        stack.push(Step::Enter(c));
                    }
                }
                Step::Leave => self.close_element(),
            }
        }
    }

    /// Builds a kernel directly from an in-memory document.
    pub fn from_document(doc: &Document) -> Kernel {
        let mut builder = KernelBuilder::new();
        builder.drive_subtree(doc, doc.root());
        builder.finish()
    }

    /// Builds the partial kernel of one partition: the document root plus
    /// the contiguous `range` of its children (by child index), leaving
    /// the root open ([`KernelBuilder::finish_suspended`]). The rooted
    /// path — and therefore every recursion level — is identical to the
    /// monolithic build, which is what makes partition merging
    /// bit-compatible (see [`crate::partition::merge_partials`]).
    pub fn from_document_root_range(
        doc: &Document,
        range: std::ops::Range<usize>,
    ) -> PartialKernel {
        let mut builder = KernelBuilder::new();
        let root = doc.root();
        builder.open_element(doc.name(root));
        let children: Vec<NodeId> = doc.children(root).collect();
        for &c in &children[range] {
            builder.drive_subtree(doc, c);
        }
        builder.finish_suspended()
    }

    /// Builds a kernel by SAX-parsing XML text — the paper's construction
    /// path (parse once, no in-memory tree needed).
    pub fn from_xml_str(xml: &str) -> Result<Kernel, xmlkit::Error> {
        let mut builder = KernelBuilder::new();
        let mut parser = SaxParser::new(xml);
        loop {
            match parser.next_event()? {
                SaxEvent::StartElement { name, .. } => builder.open_element(&name),
                SaxEvent::EndElement { .. } => builder.close_element(),
                SaxEvent::Text(_)
                | SaxEvent::Comment(_)
                | SaxEvent::ProcessingInstruction { .. } => {}
                SaxEvent::Eof => break,
            }
        }
        Ok(builder.finish())
    }
}

/// A kernel whose root element is conceptually still open: the result of
/// [`KernelBuilder::finish_suspended`] and the unit of partitioned
/// construction.
///
/// The deferred state is exactly the root's distinct `(edge, recursion
/// level)` child pairs. [`crate::partition::merge_partials`] unions those
/// pairs across partitions; [`PartialKernel::into_kernel`] applies the
/// one-per-pair parent-count increment the monolithic builder would have
/// applied when the root closed.
#[derive(Debug)]
pub struct PartialKernel {
    pub(crate) kernel: Kernel,
    /// Distinct `(edge, recursion level)` pairs of the root's children, in
    /// discovery order.
    pub(crate) root_child_edges: Vec<(EdgeId, usize)>,
}

impl PartialKernel {
    /// The kernel as accumulated so far (root parent counts not yet
    /// applied).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Closes the root: applies the deferred parent-count increments and
    /// returns the finished kernel. On a partial built from the full
    /// child range this is bit-identical to [`KernelBuilder::finish`].
    pub fn into_kernel(mut self) -> Kernel {
        for (e, level) in self.root_child_edges {
            self.kernel.edge_label_mut(e).add_parent(level, 1);
        }
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::samples::{figure2_document, FIGURE2_XML};

    fn pairs(kernel: &Kernel, from: &str, to: &str) -> Vec<(u64, u64)> {
        let u = kernel.vertex_by_name(from).unwrap();
        let v = kernel.vertex_by_name(to).unwrap();
        kernel
            .edge_label(u, v)
            .unwrap()
            .iter()
            .map(|(_, p, c)| (p, c))
            .collect()
    }

    #[test]
    fn figure2_kernel_matches_paper() {
        // Example 2: the kernel of the Figure 2(a) document must carry
        // exactly the labels shown in Figure 2(b).
        let kernel = KernelBuilder::from_document(&figure2_document());
        assert_eq!(pairs(&kernel, "a", "t"), vec![(1, 1)]);
        assert_eq!(pairs(&kernel, "a", "u"), vec![(1, 1)]);
        assert_eq!(pairs(&kernel, "a", "c"), vec![(1, 2)]);
        assert_eq!(pairs(&kernel, "c", "t"), vec![(2, 2)]);
        assert_eq!(pairs(&kernel, "c", "p"), vec![(2, 3)]);
        assert_eq!(pairs(&kernel, "c", "s"), vec![(2, 5)]);
        assert_eq!(pairs(&kernel, "s", "t"), vec![(2, 2), (1, 1)]);
        assert_eq!(pairs(&kernel, "s", "p"), vec![(5, 9), (1, 2), (2, 3)]);
        assert_eq!(pairs(&kernel, "s", "s"), vec![(0, 0), (2, 2), (1, 2)]);
        assert_eq!(kernel.vertex_count(), 6);
        assert_eq!(kernel.live_edge_count(), 9);
        assert_eq!(kernel.element_count(), 36);
        assert_eq!(kernel.name(kernel.root().unwrap()), "a");
    }

    #[test]
    fn sax_and_document_construction_agree() {
        let from_doc = KernelBuilder::from_document(&figure2_document());
        let from_sax = KernelBuilder::from_xml_str(FIGURE2_XML).unwrap();
        assert_eq!(from_doc.vertex_count(), from_sax.vertex_count());
        assert_eq!(from_doc.live_edge_count(), from_sax.live_edge_count());
        assert_eq!(from_doc.element_count(), from_sax.element_count());
        assert_eq!(from_doc.to_string(), from_sax.to_string());
    }

    #[test]
    fn observation1_no_overlong_recursive_paths() {
        // The (s,s) label has 3 entries, so a path with recursion level 3
        // (four nested s) cannot be derived from the synopsis.
        let kernel = KernelBuilder::from_document(&figure2_document());
        let s = kernel.vertex_by_name("s").unwrap();
        let label = kernel.edge_label(s, s).unwrap();
        assert_eq!(label.levels(), 3);
        assert_eq!(label.child_count(3), 0);
    }

    #[test]
    fn observation2_out_edges_cover_child_labels() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let c = kernel.vertex_by_name("c").unwrap();
        // c elements have children labelled t, p, s: three out-edges.
        assert_eq!(kernel.out_edges(c).len(), 3);
    }

    #[test]
    fn observation3_descendant_counts() {
        // //s//s//p returns 5 elements: the sum of (s,p) child counts at
        // recursion levels 1 and 2.
        let kernel = KernelBuilder::from_document(&figure2_document());
        let s = kernel.vertex_by_name("s").unwrap();
        let p = kernel.vertex_by_name("p").unwrap();
        assert_eq!(kernel.edge_label(s, p).unwrap().child_count_from(1), 5);
    }

    #[test]
    fn non_recursive_document_has_single_level_labels() {
        let kernel = KernelBuilder::from_xml_str("<a><b><c/><c/></b><b><c/></b></a>").unwrap();
        let b = kernel.vertex_by_name("b").unwrap();
        let c = kernel.vertex_by_name("c").unwrap();
        let label = kernel.edge_label(b, c).unwrap();
        assert_eq!(label.levels(), 1);
        assert_eq!(label.parent_count(0), 2);
        assert_eq!(label.child_count(0), 3);
    }

    #[test]
    fn parent_count_counts_parents_not_children() {
        // One parent with many same-label children: parent count is 1.
        let kernel = KernelBuilder::from_xml_str("<a><b/><b/><b/><b/></a>").unwrap();
        let a = kernel.vertex_by_name("a").unwrap();
        let b = kernel.vertex_by_name("b").unwrap();
        let label = kernel.edge_label(a, b).unwrap();
        assert_eq!(label.parent_count(0), 1);
        assert_eq!(label.child_count(0), 4);
    }

    #[test]
    fn manual_event_driving() {
        let mut b = KernelBuilder::new();
        b.open_element("r");
        assert_eq!(b.depth(), 1);
        b.open_element("x");
        b.close_element();
        b.open_element("x");
        b.close_element();
        b.close_element();
        let k = b.finish();
        assert_eq!(k.element_count(), 3);
        let r = k.vertex_by_name("r").unwrap();
        let x = k.vertex_by_name("x").unwrap();
        assert_eq!(k.edge_label(r, x).unwrap().child_count(0), 2);
    }

    #[test]
    #[should_panic(expected = "unclosed element")]
    fn unbalanced_builder_panics() {
        let mut b = KernelBuilder::new();
        b.open_element("r");
        b.finish();
    }

    #[test]
    fn suspended_finish_over_full_range_matches_finish() {
        let doc = figure2_document();
        let monolithic = KernelBuilder::from_document(&doc);
        let child_count = doc.children(doc.root()).count();
        let merged = KernelBuilder::from_document_root_range(&doc, 0..child_count).into_kernel();
        assert_eq!(monolithic.to_string(), merged.to_string());
        assert_eq!(monolithic.serialize(), merged.serialize());
    }

    #[test]
    fn suspended_partial_defers_only_root_parent_counts() {
        let doc = figure2_document();
        let child_count = doc.children(doc.root()).count();
        let partial = KernelBuilder::from_document_root_range(&doc, 0..child_count);
        // All 36 elements are accounted before the root closes…
        assert_eq!(partial.kernel().element_count(), 36);
        // …but the root's parent counts are not: a -> c is (0:2) so far.
        let a = partial.kernel().vertex_by_name("a").unwrap();
        let c = partial.kernel().vertex_by_name("c").unwrap();
        let label = partial.kernel().edge_label(a, c).unwrap();
        assert_eq!(label.parent_count(0), 0);
        assert_eq!(label.child_count(0), 2);
        let k = partial.into_kernel();
        assert_eq!(k.edge_label(a, c).unwrap().parent_count(0), 1);
    }

    #[test]
    fn empty_root_range_builds_a_root_only_kernel() {
        let doc = figure2_document();
        let k = KernelBuilder::from_document_root_range(&doc, 0..0).into_kernel();
        assert_eq!(k.element_count(), 1);
        assert_eq!(k.vertex_count(), 1);
        assert_eq!(k.live_edge_count(), 0);
        assert_eq!(k.name(k.root().unwrap()), "a");
    }

    #[test]
    #[should_panic(expected = "finish_suspended requires exactly the root")]
    fn suspended_finish_rejects_nested_open_elements() {
        let mut b = KernelBuilder::new();
        b.open_element("r");
        b.open_element("x");
        b.finish_suspended();
    }
}
