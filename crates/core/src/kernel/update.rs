//! Incremental kernel maintenance.
//!
//! When the underlying XML document changes — a subtree is inserted under
//! some existing element, or an existing subtree is deleted — the kernel
//! can be updated in time proportional to the size of the subtree rather
//! than rebuilding it from the whole document (Section 3, "Synopsis
//! update").
//!
//! The context of the change matters because edge labels are indexed by
//! recursion level: the same subtree inserted under `/a/b` and under
//! `/a/b/b` contributes to different label entries. Callers therefore
//! provide the **context path**: the rooted label path of the element the
//! subtree is attached to (for additions) or of the parent of the removed
//! subtree's root (for removals).

use super::builder::KernelBuilder;
use super::graph::{Kernel, VertexId};
use crate::counter_stacks::CounterStacks;
use xmlkit::tree::{Document, NodeId};

/// Errors from incremental updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The context path is empty or its labels do not exist in the kernel.
    InvalidContext {
        /// The offending element name (the first unknown one), if any.
        unknown: Option<String>,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::InvalidContext {
                unknown: Some(name),
            } => {
                write!(f, "context path mentions unknown element '{name}'")
            }
            UpdateError::InvalidContext { unknown: None } => {
                write!(f, "context path must not be empty")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

impl Kernel {
    /// Adds the statistics of `subtree` to the kernel, as if the subtree's
    /// root element had been inserted as a new child of the element whose
    /// rooted path (element names, root first) is `context_path`.
    ///
    /// The parent count of the edge from the context element to the
    /// subtree root is incremented by one, i.e. the insertion is assumed
    /// to give the context element its first child with that label at that
    /// recursion level; if the parent already had such a child, the
    /// parent count ends up over-counted by one. Removal with the same
    /// arguments is exactly symmetric, so add followed by remove always
    /// restores the kernel.
    pub fn add_subtree(
        &mut self,
        context_path: &[&str],
        subtree: &Document,
    ) -> Result<(), UpdateError> {
        self.apply_subtree(context_path, subtree, true)
    }

    /// Removes the statistics of `subtree`, assuming it was attached under
    /// the element whose rooted path is `context_path`. Edges whose counts
    /// drop to zero are pruned from the adjacency structure.
    pub fn remove_subtree(
        &mut self,
        context_path: &[&str],
        subtree: &Document,
    ) -> Result<(), UpdateError> {
        self.apply_subtree(context_path, subtree, false)?;
        self.prune_zero_edges();
        Ok(())
    }

    fn apply_subtree(
        &mut self,
        context_path: &[&str],
        subtree: &Document,
        add: bool,
    ) -> Result<(), UpdateError> {
        if context_path.is_empty() {
            return Err(UpdateError::InvalidContext { unknown: None });
        }
        // Seed the recursion-level counter with the context path. Context
        // vertices must already exist: you cannot attach a subtree under a
        // path the document does not have.
        let mut rl: CounterStacks<VertexId> = CounterStacks::new();
        let mut context_vertices = Vec::with_capacity(context_path.len());
        for name in context_path {
            let v = self
                .vertex_by_name(name)
                .ok_or_else(|| UpdateError::InvalidContext {
                    unknown: Some((*name).to_string()),
                })?;
            rl.push(v);
            context_vertices.push(v);
        }
        let context_vertex = *context_vertices.last().expect("non-empty context");

        // Walk the subtree exactly like the builder does, but seeded with
        // the context, and applying +1/-1 depending on `add`.
        struct Frame {
            vertex: VertexId,
            child_edges: Vec<(super::graph::EdgeId, usize)>,
        }
        let mut frames: Vec<Frame> = vec![Frame {
            vertex: context_vertex,
            child_edges: Vec::new(),
        }];
        enum Step {
            Enter(NodeId),
            Leave,
        }
        let mut stack = vec![Step::Enter(subtree.root())];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(n) => {
                    let name = subtree.name(n);
                    let v = self.get_or_create_vertex(name);
                    let u = frames.last().expect("frame stack never empty").vertex;
                    let e = self.get_or_create_edge(u, v);
                    let level = rl.push(v);
                    if add {
                        self.edge_label_mut(e).add_child(level, 1);
                        self.add_elements(1);
                    } else {
                        self.edge_label_mut(e).remove_child(level, 1);
                        self.remove_elements(1);
                    }
                    let frame = frames.last_mut().expect("frame stack never empty");
                    if !frame.child_edges.contains(&(e, level)) {
                        frame.child_edges.push((e, level));
                    }
                    frames.push(Frame {
                        vertex: v,
                        child_edges: Vec::new(),
                    });
                    stack.push(Step::Leave);
                    let children: Vec<NodeId> = subtree.children(n).collect();
                    for c in children.into_iter().rev() {
                        stack.push(Step::Enter(c));
                    }
                }
                Step::Leave => {
                    let frame = frames.pop().expect("frame stack never empty");
                    for (e, level) in frame.child_edges {
                        if add {
                            self.edge_label_mut(e).add_parent(level, 1);
                        } else {
                            self.edge_label_mut(e).remove_parent(level, 1);
                        }
                    }
                    rl.pop(&frame.vertex);
                }
            }
        }
        // The context element itself gained (or lost) children: its
        // distinct child edges were accounted for in the root frame.
        let context_frame = frames.pop().expect("context frame remains");
        for (e, level) in context_frame.child_edges {
            if add {
                self.edge_label_mut(e).add_parent(level, 1);
            } else {
                self.edge_label_mut(e).remove_parent(level, 1);
            }
        }
        Ok(())
    }

    /// Builds a kernel for `doc` and checks whether adding and removing a
    /// subtree is self-inverse; exposed mainly for tests and examples.
    pub fn from_document(doc: &Document) -> Kernel {
        KernelBuilder::from_document(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlkit::samples::figure2_document;
    use xmlkit::Document;

    #[test]
    fn add_then_remove_is_identity() {
        let doc = figure2_document();
        let original = Kernel::from_document(&doc);
        let mut kernel = original.clone();
        let subtree = Document::parse_str("<s><t/><p/><s><p/></s></s>").unwrap();
        kernel.add_subtree(&["a", "c"], &subtree).unwrap();
        assert_ne!(kernel.to_string(), original.to_string());
        kernel.remove_subtree(&["a", "c"], &subtree).unwrap();
        assert_eq!(kernel.to_string(), original.to_string());
        assert_eq!(kernel.element_count(), original.element_count());
    }

    #[test]
    fn add_matches_full_rebuild_for_new_labels() {
        // Adding a subtree with brand-new labels under the root must give
        // the same kernel as rebuilding from the modified document.
        let base = Document::parse_str("<r><a/><a><b/></a></r>").unwrap();
        let mut kernel = Kernel::from_document(&base);
        let subtree = Document::parse_str("<z><w/><w/></z>").unwrap();
        kernel.add_subtree(&["r"], &subtree).unwrap();

        let rebuilt = Kernel::from_document(
            &Document::parse_str("<r><a/><a><b/></a><z><w/><w/></z></r>").unwrap(),
        );
        assert_eq!(kernel.to_string(), rebuilt.to_string());
        assert_eq!(kernel.element_count(), rebuilt.element_count());
    }

    #[test]
    fn add_deep_recursion_extends_levels() {
        // Inserting nested s elements under an existing s raises the
        // maximum recursion level recorded on the (s,s) edge.
        let doc = figure2_document();
        let mut kernel = Kernel::from_document(&doc);
        let s = kernel.vertex_by_name("s").unwrap();
        assert_eq!(kernel.edge_label(s, s).unwrap().levels(), 3);
        let subtree = Document::parse_str("<s><s/></s>").unwrap();
        // Attach under a path that already has three s elements.
        kernel
            .add_subtree(&["a", "c", "s", "s", "s"], &subtree)
            .unwrap();
        assert_eq!(kernel.edge_label(s, s).unwrap().levels(), 5);
    }

    #[test]
    fn remove_prunes_emptied_edges() {
        let base = Document::parse_str("<r><a><b/></a><c/></r>").unwrap();
        let mut kernel = Kernel::from_document(&base);
        let subtree = Document::parse_str("<a><b/></a>").unwrap();
        kernel.remove_subtree(&["r"], &subtree).unwrap();
        let a = kernel.vertex_by_name("a").unwrap();
        let b = kernel.vertex_by_name("b").unwrap();
        assert!(kernel.edge_between(a, b).is_none());
        assert_eq!(kernel.element_count(), 2);
    }

    #[test]
    fn invalid_context_is_rejected() {
        let doc = figure2_document();
        let mut kernel = Kernel::from_document(&doc);
        let subtree = Document::parse_str("<p/>").unwrap();
        let err = kernel.add_subtree(&[], &subtree).unwrap_err();
        assert!(matches!(err, UpdateError::InvalidContext { unknown: None }));
        let err = kernel.add_subtree(&["a", "nope"], &subtree).unwrap_err();
        assert!(matches!(err, UpdateError::InvalidContext { unknown: Some(ref n) } if n == "nope"));
        assert!(!err.to_string().is_empty());
    }
}
