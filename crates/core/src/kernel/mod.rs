//! The XSEED kernel: an edge-labeled label-split graph (Definition 4).
//!
//! * [`label`] — the per-edge vector of `(parent_count : child_count)`
//!   pairs indexed by recursion level.
//! * [`graph`] — the kernel graph itself: one vertex per element name, one
//!   edge per observed parent/child name pair, plus the selectivity sums
//!   needed by the estimator.
//! * [`builder`] — single-pass construction from SAX events or an
//!   in-memory document (Algorithm 1).
//! * [`update`] — incremental maintenance: adding or removing a subtree
//!   without rebuilding the kernel.
//! * [`serialize`] — a compact binary encoding used both for persistence
//!   and for honest `size_bytes()` accounting against memory budgets.
//! * [`frozen`] — a read-optimized CSR snapshot (flat out-edge arrays,
//!   precomputed selectivity denominators, reachable-label bitsets) taken
//!   once per kernel version and consumed by the streaming estimator.

pub mod builder;
pub mod frozen;
pub mod graph;
pub mod label;
pub mod serialize;
pub mod update;

pub use builder::{KernelBuilder, PartialKernel};
pub use frozen::{FastMap, FrozenKernel};
pub use graph::{EdgeId, Kernel, VertexId};
pub use label::EdgeLabel;
