//! A read-optimized snapshot of the kernel for the streaming estimator.
//!
//! [`Kernel`] is built for *construction*: adjacency is held in per-vertex
//! `Vec`s of edge ids, edge lookup goes through a SipHash `HashMap`, and
//! the selectivity denominators `S_v` ([`Kernel::in_child_sum`]) are
//! recomputed from the in-edge lists on every call. That layout is ideal
//! while the document is being summarized, but it makes the estimate hot
//! path chase pointers and re-derive the same sums for every query.
//!
//! [`FrozenKernel`] is the estimate-side counterpart: an immutable
//! CSR-layout snapshot taken once from a kernel (and retaken only after
//! the kernel is updated — see [`crate::synopsis::XseedSynopsis::kernel_mut`]):
//!
//! * **flat out-edge arrays** — `out_start[v]..out_start[v + 1]` indexes a
//!   contiguous range of slots, each carrying the target vertex and a flat
//!   slice of `(parent_count, child_count)` pairs per recursion level, in
//!   the kernel's insertion order (the traveler's traversal order);
//! * **precomputed `S_v` tables** — `in_child_sum(v, level)` and the
//!   suffix-summed `in_child_sum_from(v, level)` for every recorded level,
//!   with the paper's root convention (`S_root = 1` at level 0) baked in;
//! * **reachable-label bitsets** — for every vertex, the set of labels
//!   occurring at the vertex or anywhere below it in the synopsis graph,
//!   which lets the streaming matcher skip entire subtrees that cannot
//!   contain a query's required labels;
//! * **a packed-u64-key table** ([`FastMap`]) replacing the SipHash
//!   `(VertexId, VertexId) -> EdgeId` map for read-side edge lookups.
//!
//! The snapshot is invalidated (dropped and lazily rebuilt) whenever the
//! synopsis hands out mutable kernel access; nothing in this module tracks
//! kernel changes on its own.

use super::graph::{Kernel, VertexId};
use xmlkit::names::LabelId;

/// Sentinel meaning "label has no vertex" in [`FrozenKernel::vertex_of_label`].
const NO_VERTEX: u32 = u32::MAX;

/// An open-addressed hash table from packed `u64` keys to `u32` values.
///
/// This replaces SipHash `HashMap`s on estimator read paths: keys are
/// already small integers (packed vertex pairs, path hashes), so a single
/// multiply-xor mix is enough, and lookups stay branch-light within one
/// flat array. The table is insert-only. `u64::MAX` marks empty slots
/// internally; a key equal to the sentinel (possible for arbitrary hash
/// keys) is carried in a dedicated side slot, so any `u64` is a valid key.
#[derive(Debug, Clone, Default)]
pub struct FastMap {
    keys: Vec<u64>,
    vals: Vec<u32>,
    mask: usize,
    len: usize,
    sentinel_val: Option<u32>,
}

const EMPTY_KEY: u64 = u64::MAX;

#[inline]
fn mix(key: u64) -> u64 {
    // splitmix64 finalizer: full-avalanche, two multiplies.
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FastMap {
    /// Creates a table pre-sized for `expected` keys.
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected * 2).next_power_of_two().max(8);
        FastMap {
            keys: vec![EMPTY_KEY; cap],
            vals: vec![0; cap],
            mask: cap - 1,
            len: 0,
            sentinel_val: None,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len + usize::from(self.sentinel_val.is_some())
    }

    /// Returns `true` if the table holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `key -> val`, overwriting any previous value.
    pub fn insert(&mut self, key: u64, val: u32) {
        if key == EMPTY_KEY {
            self.sentinel_val = Some(val);
            return;
        }
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut i = (mix(key) as usize) & self.mask;
        loop {
            if self.keys[i] == EMPTY_KEY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if self.keys[i] == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        if key == EMPTY_KEY {
            return self.sentinel_val;
        }
        if self.keys.is_empty() {
            return None;
        }
        let mut i = (mix(key) as usize) & self.mask;
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        let cap = (old_keys.len() * 2).max(8);
        self.keys = vec![EMPTY_KEY; cap];
        self.vals = vec![0; cap];
        self.mask = cap - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY_KEY {
                self.insert(k, v);
            }
        }
    }
}

/// Packs a `(parent, child)` vertex pair into one `u64` key.
#[inline]
pub fn pack_edge_key(from: VertexId, to: VertexId) -> u64 {
    (u64::from(from.0) << 32) | u64::from(to.0)
}

/// The read-optimized CSR snapshot of a [`Kernel`]. See the module docs.
#[derive(Debug, Clone)]
pub struct FrozenKernel {
    root: Option<VertexId>,
    element_count: u64,
    /// Label of each vertex.
    labels: Vec<LabelId>,
    /// Vertex of each label (`NO_VERTEX` when the label has none).
    vertex_of_label: Vec<u32>,
    /// CSR offsets: out slots of vertex `v` are `out_start[v]..out_start[v+1]`.
    out_start: Vec<u32>,
    /// Target vertex per out slot, in the kernel's insertion order.
    out_to: Vec<u32>,
    /// Per-slot offsets into the flat level-pair arrays (len = slots + 1).
    pairs_start: Vec<u32>,
    pair_parent: Vec<u64>,
    pair_child: Vec<u64>,
    /// Per-vertex offsets into the flat sum arrays (len = vertices + 1).
    sums_start: Vec<u32>,
    in_sum: Vec<u64>,
    in_sum_from: Vec<u64>,
    /// Words per reachability bitset row.
    label_words: usize,
    /// `label_words` words per vertex: labels at or below the vertex.
    reach: Vec<u64>,
    /// Packed `(from, to)` pair -> out-slot index.
    edge_slots: FastMap,
}

impl FrozenKernel {
    /// Takes a snapshot of `kernel`. Cost is one pass over the vertices and
    /// edges plus a small fixpoint for the reachability bitsets; rebuild it
    /// whenever the kernel is mutated.
    pub fn freeze(kernel: &Kernel) -> Self {
        let v_count = kernel.vertex_count();
        let label_count = kernel.names().len();

        let mut labels = Vec::with_capacity(v_count);
        let mut vertex_of_label = vec![NO_VERTEX; label_count];
        for v in kernel.vertices() {
            let label = kernel.label(v);
            labels.push(label);
            if let Some(slot) = vertex_of_label.get_mut(label.index()) {
                *slot = v.0;
            }
        }

        // CSR out-edges with flattened level pairs, preserving insertion
        // order (the traveler's child-visit order).
        let mut out_start = Vec::with_capacity(v_count + 1);
        let mut out_to = Vec::new();
        let mut pairs_start = vec![0u32];
        let mut pair_parent = Vec::new();
        let mut pair_child = Vec::new();
        let mut edge_slots = FastMap::with_capacity(kernel.live_edge_count());
        out_start.push(0);
        for v in kernel.vertices() {
            for &e in kernel.out_edges(v) {
                let edge = kernel.edge(e);
                let slot = out_to.len() as u32;
                out_to.push(edge.to.0);
                for (_, p, c) in edge.label.iter() {
                    pair_parent.push(p);
                    pair_child.push(c);
                }
                pairs_start.push(pair_parent.len() as u32);
                edge_slots.insert(pack_edge_key(v, edge.to), slot);
            }
            out_start.push(out_to.len() as u32);
        }

        // Per-(vertex, level) denominators, with the root convention baked
        // in so the tables agree with Kernel::in_child_sum{,_from} exactly.
        let mut sums_start = Vec::with_capacity(v_count + 1);
        let mut in_sum = Vec::new();
        let mut in_sum_from = Vec::new();
        sums_start.push(0);
        for v in kernel.vertices() {
            let max_levels = kernel
                .in_edges(v)
                .iter()
                .map(|&e| kernel.edge(e).label.levels())
                .max()
                .unwrap_or(0);
            let levels = if Some(v) == kernel.root() {
                max_levels.max(1)
            } else {
                max_levels
            };
            let base = in_sum.len();
            in_sum.resize(base + levels, 0);
            for &e in kernel.in_edges(v) {
                for (level, _, c) in kernel.edge(e).label.iter() {
                    in_sum[base + level] += c;
                }
            }
            // Suffix sums for the `//`-axis denominator.
            in_sum_from.resize(base + levels, 0);
            let mut acc = 0u64;
            for level in (0..levels).rev() {
                acc += in_sum[base + level];
                in_sum_from[base + level] = acc;
            }
            // Root convention (Definition 5): each table independently
            // falls back to 1 only when its own level-0 value is zero —
            // a recursive root has in_sum[0] == 0 (in-edges into the root
            // carry level >= 1 counts only) while its suffix total is not.
            if Some(v) == kernel.root() {
                if in_sum[base] == 0 {
                    in_sum[base] = 1;
                }
                if in_sum_from[base] == 0 {
                    in_sum_from[base] = 1;
                }
            }
            sums_start.push(in_sum.len() as u32);
        }

        // Reachable labels: fixpoint over `reach[v] |= reach[child]`. The
        // synopsis graph is tiny (one vertex per element name) and the
        // iteration count is bounded by its longest simple path.
        let label_words = label_count.div_ceil(64).max(1);
        let mut reach = vec![0u64; v_count * label_words];
        for (v, &label) in labels.iter().enumerate() {
            reach[v * label_words + label.index() / 64] |= 1u64 << (label.index() % 64);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..v_count {
                let row = out_start[v] as usize..out_start[v + 1] as usize;
                for w in out_to[row].iter().map(|&t| t as usize) {
                    if w == v {
                        continue;
                    }
                    for word in 0..label_words {
                        let bits = reach[w * label_words + word];
                        let dst = &mut reach[v * label_words + word];
                        if *dst | bits != *dst {
                            *dst |= bits;
                            changed = true;
                        }
                    }
                }
            }
        }

        FrozenKernel {
            root: kernel.root(),
            element_count: kernel.element_count(),
            labels,
            vertex_of_label,
            out_start,
            out_to,
            pairs_start,
            pair_parent,
            pair_child,
            sums_start,
            in_sum,
            in_sum_from,
            label_words,
            reach,
            edge_slots,
        }
    }

    /// The root vertex, if the kernel is non-empty.
    #[inline]
    pub fn root(&self) -> Option<VertexId> {
        self.root
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Total number of elements in the summarized document(s).
    #[inline]
    pub fn element_count(&self) -> u64 {
        self.element_count
    }

    /// The label of a vertex.
    #[inline]
    pub fn label(&self, v: VertexId) -> LabelId {
        self.labels[v.index()]
    }

    /// The vertex carrying `label`, if any.
    #[inline]
    pub fn vertex_by_label(&self, label: LabelId) -> Option<VertexId> {
        match self.vertex_of_label.get(label.index()) {
            Some(&raw) if raw != NO_VERTEX => Some(VertexId(raw)),
            _ => None,
        }
    }

    /// Total number of out slots (edges) across all vertices.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.out_to.len()
    }

    /// The contiguous out-slot range of `v` (kernel insertion order).
    #[inline]
    pub fn out_slots(&self, v: VertexId) -> std::ops::Range<usize> {
        self.out_start[v.index()] as usize..self.out_start[v.index() + 1] as usize
    }

    /// The target vertex of an out slot.
    #[inline]
    pub fn slot_target(&self, slot: usize) -> VertexId {
        VertexId(self.out_to[slot])
    }

    /// Number of recursion levels recorded on an out slot's edge.
    #[inline]
    pub fn slot_levels(&self, slot: usize) -> usize {
        (self.pairs_start[slot + 1] - self.pairs_start[slot]) as usize
    }

    /// Child count of an out slot's edge at `level` (0 beyond the recorded
    /// levels).
    #[inline]
    pub fn slot_child_count(&self, slot: usize, level: usize) -> u64 {
        if level < self.slot_levels(slot) {
            self.pair_child[self.pairs_start[slot] as usize + level]
        } else {
            0
        }
    }

    /// Parent count of an out slot's edge at `level`.
    #[inline]
    pub fn slot_parent_count(&self, slot: usize, level: usize) -> u64 {
        if level < self.slot_levels(slot) {
            self.pair_parent[self.pairs_start[slot] as usize + level]
        } else {
            0
        }
    }

    /// Precomputed `S_v` at `level` (Definition 5), agreeing with
    /// [`Kernel::in_child_sum`] including the root convention.
    #[inline]
    pub fn in_child_sum(&self, v: VertexId, level: usize) -> u64 {
        let start = self.sums_start[v.index()] as usize;
        let end = self.sums_start[v.index() + 1] as usize;
        if start + level < end {
            self.in_sum[start + level]
        } else {
            0
        }
    }

    /// Precomputed suffix sum of `S_v` over levels `>= level`, agreeing
    /// with [`Kernel::in_child_sum_from`].
    #[inline]
    pub fn in_child_sum_from(&self, v: VertexId, level: usize) -> u64 {
        let start = self.sums_start[v.index()] as usize;
        let end = self.sums_start[v.index() + 1] as usize;
        if start + level < end {
            self.in_sum_from[start + level]
        } else {
            0
        }
    }

    /// The out slot of the edge `(u, v)`, if present, via the packed-key
    /// table.
    #[inline]
    pub fn edge_slot(&self, u: VertexId, v: VertexId) -> Option<usize> {
        self.edge_slots.get(pack_edge_key(u, v)).map(|s| s as usize)
    }

    /// Returns `true` if `label` occurs at `v` or anywhere below it.
    #[inline]
    pub fn reaches_label(&self, v: VertexId, label: LabelId) -> bool {
        let word = label.index() / 64;
        if word >= self.label_words {
            return false;
        }
        self.reach[v.index() * self.label_words + word] & (1u64 << (label.index() % 64)) != 0
    }

    /// Returns `true` if every bit of `mask` (a `label_words`-sized bitset)
    /// is reachable at or below `v`.
    #[inline]
    pub fn reaches_all(&self, v: VertexId, mask: &[u64]) -> bool {
        let row = &self.reach[v.index() * self.label_words..(v.index() + 1) * self.label_words];
        mask.iter().zip(row).all(|(m, r)| m & !r == 0)
    }

    /// The full reachability bitset row of `v`: one bit per label that
    /// occurs at `v` or anywhere below it, `label_words` words long.
    #[inline]
    pub fn reach_row(&self, v: VertexId) -> &[u64] {
        &self.reach[v.index() * self.label_words..(v.index() + 1) * self.label_words]
    }

    /// Words per reachability bitset row (for sizing query-side masks).
    #[inline]
    pub fn label_words(&self) -> usize {
        self.label_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use xmlkit::samples::{figure2_document, figure4_document};

    #[test]
    fn fastmap_roundtrip_and_overwrite() {
        let mut m = FastMap::with_capacity(4);
        assert!(m.is_empty());
        for i in 0..1000u64 {
            m.insert(i * 7, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i * 7), Some(i as u32));
        }
        assert_eq!(m.get(3), None);
        m.insert(7, 999);
        assert_eq!(m.get(7), Some(999));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn fastmap_empty_lookup() {
        let m = FastMap::default();
        assert_eq!(m.get(42), None);
    }

    #[test]
    fn fastmap_handles_sentinel_key() {
        let mut m = FastMap::with_capacity(1);
        assert_eq!(m.get(u64::MAX), None);
        m.insert(u64::MAX, 7);
        assert_eq!(m.get(u64::MAX), Some(7));
        assert_eq!(m.len(), 1);
        m.insert(u64::MAX, 9);
        assert_eq!(m.get(u64::MAX), Some(9));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn frozen_agrees_with_kernel_on_figure2() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        assert_eq!(frozen.root(), kernel.root());
        assert_eq!(frozen.vertex_count(), kernel.vertex_count());
        assert_eq!(frozen.element_count(), kernel.element_count());
        for v in kernel.vertices() {
            assert_eq!(frozen.label(v), kernel.label(v));
            assert_eq!(frozen.vertex_by_label(kernel.label(v)), Some(v));
            // Sums agree on every recorded level and beyond.
            for level in 0..8 {
                assert_eq!(
                    frozen.in_child_sum(v, level),
                    kernel.in_child_sum(v, level),
                    "in_child_sum({v:?}, {level})"
                );
                assert_eq!(
                    frozen.in_child_sum_from(v, level),
                    kernel.in_child_sum_from(v, level),
                    "in_child_sum_from({v:?}, {level})"
                );
            }
            // Out edges agree slot by slot, in order.
            let slots: Vec<usize> = frozen.out_slots(v).collect();
            let edges = kernel.out_edges(v);
            assert_eq!(slots.len(), edges.len());
            for (&slot_edge, &e) in slots.iter().zip(edges) {
                let edge = kernel.edge(e);
                assert_eq!(frozen.slot_target(slot_edge), edge.to);
                assert_eq!(frozen.slot_levels(slot_edge), edge.label.levels());
                for level in 0..edge.label.levels() + 1 {
                    assert_eq!(
                        frozen.slot_child_count(slot_edge, level),
                        edge.label.child_count(level)
                    );
                    assert_eq!(
                        frozen.slot_parent_count(slot_edge, level),
                        edge.label.parent_count(level)
                    );
                }
                assert_eq!(frozen.edge_slot(v, edge.to), Some(slot_edge));
            }
        }
    }

    #[test]
    fn reachability_on_figure2() {
        // Figure 2: a -> {t, u, c}, c -> s, s -> {s, t, p}.
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let v = |n: &str| kernel.vertex_by_name(n).unwrap();
        let l = |n: &str| kernel.names().lookup(n).unwrap();
        // Every label is reachable from the root.
        for name in ["a", "t", "u", "c", "s", "p"] {
            assert!(frozen.reaches_label(v("a"), l(name)), "{name} from a");
        }
        // Leaves reach only themselves.
        assert!(frozen.reaches_label(v("p"), l("p")));
        assert!(!frozen.reaches_label(v("p"), l("s")));
        assert!(!frozen.reaches_label(v("t"), l("a")));
        // s reaches s, t, p but not c or u.
        assert!(frozen.reaches_label(v("s"), l("t")));
        assert!(frozen.reaches_label(v("s"), l("p")));
        assert!(!frozen.reaches_label(v("s"), l("c")));
        assert!(!frozen.reaches_label(v("s"), l("u")));
    }

    #[test]
    fn reaches_all_mask() {
        let kernel = KernelBuilder::from_document(&figure4_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let v = |n: &str| kernel.vertex_by_name(n).unwrap();
        let l = |n: &str| kernel.names().lookup(n).unwrap();
        let mut mask = vec![0u64; frozen.label_words()];
        for name in ["d", "e"] {
            mask[l(name).index() / 64] |= 1 << (l(name).index() % 64);
        }
        assert!(frozen.reaches_all(v("a"), &mask));
        assert!(frozen.reaches_all(v("b"), &mask));
        assert!(!frozen.reaches_all(v("e"), &mask));
        // The empty mask is reachable everywhere.
        let empty = vec![0u64; frozen.label_words()];
        assert!(frozen.reaches_all(v("e"), &empty));
    }

    #[test]
    fn recursive_root_sums_agree_with_kernel() {
        // A document whose root label recurses: the root's level-0 in-sum
        // is 0 (its in-edges carry only level >= 1 counts) while the
        // suffix total is not — the root convention must not clobber it.
        let doc = xmlkit::Document::parse_str("<a><a><b/></a><a/><b/></a>").unwrap();
        let kernel = KernelBuilder::from_document(&doc);
        let frozen = FrozenKernel::freeze(&kernel);
        for v in kernel.vertices() {
            for level in 0..6 {
                assert_eq!(
                    frozen.in_child_sum(v, level),
                    kernel.in_child_sum(v, level),
                    "in_child_sum({v:?}, {level})"
                );
                assert_eq!(
                    frozen.in_child_sum_from(v, level),
                    kernel.in_child_sum_from(v, level),
                    "in_child_sum_from({v:?}, {level})"
                );
            }
        }
    }

    #[test]
    fn empty_kernel_freezes() {
        let frozen = FrozenKernel::freeze(&Kernel::new());
        assert_eq!(frozen.root(), None);
        assert_eq!(frozen.vertex_count(), 0);
        assert_eq!(frozen.element_count(), 0);
    }
}
