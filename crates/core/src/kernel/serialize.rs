//! Compact binary serialization of the kernel.
//!
//! The byte format is also the basis of the kernel's memory accounting:
//! the paper quotes kernel sizes of a few kilobytes (Table 2), which refer
//! to a compact on-disk/in-memory encoding rather than pointer-heavy
//! in-process structures. [`Kernel::size_bytes`] therefore reports the
//! length of this encoding.
//!
//! Format (all integers are LEB128 varints):
//!
//! ```text
//! magic "XSK1"
//! vertex_count, then per vertex: name_len, name bytes
//! root_vertex + 1 (0 when the kernel is empty)
//! element_count
//! edge_count, then per live edge: from, to, level_count,
//!                                 then per level: parent_count, child_count
//! ```

use super::graph::Kernel;
use super::label::EdgeLabel;

/// Errors that can occur while decoding a serialized kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic header was missing or wrong.
    BadMagic,
    /// The byte stream ended prematurely or contained an invalid value.
    Truncated,
    /// A vertex or edge referenced an out-of-range index.
    BadIndex,
    /// A name was not valid UTF-8.
    BadName,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad kernel magic header"),
            DecodeError::Truncated => write!(f, "kernel byte stream is truncated"),
            DecodeError::BadIndex => write!(f, "kernel byte stream references an invalid index"),
            DecodeError::BadName => write!(f, "kernel byte stream contains an invalid name"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: &[u8; 4] = b"XSK1";

impl Kernel {
    /// Serializes the kernel to its compact binary form.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.live_edge_count() * 12);
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, self.vertex_count() as u64);
        for v in self.vertices() {
            let name = self.name(v);
            write_varint(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
        }
        write_varint(&mut out, self.root().map(|r| r.0 as u64 + 1).unwrap_or(0));
        write_varint(&mut out, self.element_count());
        // Only live edges are persisted.
        let live: Vec<_> = self
            .edges()
            .filter(|&e| {
                let edge = self.edge(e);
                self.edge_between(edge.from, edge.to) == Some(e)
            })
            .collect();
        write_varint(&mut out, live.len() as u64);
        for e in live {
            let edge = self.edge(e);
            write_varint(&mut out, edge.from.0 as u64);
            write_varint(&mut out, edge.to.0 as u64);
            write_varint(&mut out, edge.label.levels() as u64);
            for (_, p, c) in edge.label.iter() {
                write_varint(&mut out, p);
                write_varint(&mut out, c);
            }
        }
        out
    }

    /// Reconstructs a kernel from bytes produced by [`Kernel::serialize`].
    pub fn deserialize(bytes: &[u8]) -> Result<Kernel, DecodeError> {
        if bytes.len() < 4 || &bytes[..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let mut cursor = Cursor {
            bytes,
            pos: MAGIC.len(),
        };
        let mut kernel = Kernel::new();
        let vertex_count = cursor.read_varint()? as usize;
        // A hostile count cannot force a huge allocation: every vertex
        // consumes at least one byte, so cap the reservation by what the
        // input could actually encode.
        let mut ids = Vec::with_capacity(vertex_count.min(cursor.remaining()));
        for _ in 0..vertex_count {
            let len = cursor.read_varint()? as usize;
            let raw = cursor.read_bytes(len)?;
            let name = std::str::from_utf8(raw).map_err(|_| DecodeError::BadName)?;
            ids.push(kernel.get_or_create_vertex(name));
        }
        let root = cursor.read_varint()?;
        if root > 0 {
            let idx = (root - 1) as usize;
            let &v = ids.get(idx).ok_or(DecodeError::BadIndex)?;
            kernel.set_root(v);
        }
        let elements = cursor.read_varint()?;
        kernel.add_elements(elements);
        let edge_count = cursor.read_varint()? as usize;
        for _ in 0..edge_count {
            let from = cursor.read_varint()? as usize;
            let to = cursor.read_varint()? as usize;
            let (&u, &v) = (
                ids.get(from).ok_or(DecodeError::BadIndex)?,
                ids.get(to).ok_or(DecodeError::BadIndex)?,
            );
            let e = kernel.get_or_create_edge(u, v);
            let levels = cursor.read_varint()? as usize;
            let mut pairs = Vec::with_capacity(levels.min(cursor.remaining()));
            for _ in 0..levels {
                let p = cursor.read_varint()?;
                let c = cursor.read_varint()?;
                pairs.push((p, c));
            }
            *kernel.edge_label_mut(e) = EdgeLabel::from_pairs(pairs);
        }
        Ok(kernel)
    }

    /// The memory footprint of the kernel: the length of its compact
    /// serialized form.
    pub fn size_bytes(&self) -> usize {
        self.serialize().len()
    }
}

/// Byte-stream reader shared by the kernel decoder and the snapshot
/// decoder in [`crate::persist`].
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Bytes left in the stream.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    pub(crate) fn read_bytes(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        // `len > remaining`, phrased without `pos + len` so a hostile
        // length near `usize::MAX` cannot overflow the check.
        if len > self.bytes.len() - self.pos {
            return Err(DecodeError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    pub(crate) fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.read_bytes(1)?[0])
    }

    pub(crate) fn read_u32_le(&mut self) -> Result<u32, DecodeError> {
        let raw = self.read_bytes(4)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    pub(crate) fn read_u64_le(&mut self) -> Result<u64, DecodeError> {
        let raw = self.read_bytes(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(u64::from_le_bytes(b))
    }

    pub(crate) fn read_varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            if self.pos >= self.bytes.len() || shift >= 64 {
                return Err(DecodeError::Truncated);
            }
            let byte = self.bytes[self.pos];
            self.pos += 1;
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

/// Writes a LEB128 varint.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[cfg(test)]
mod tests {
    use super::super::builder::KernelBuilder;
    use super::*;
    use xmlkit::samples::figure2_document;

    #[test]
    fn roundtrip_figure2() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let bytes = kernel.serialize();
        let back = Kernel::deserialize(&bytes).unwrap();
        assert_eq!(kernel.to_string(), back.to_string());
        assert_eq!(kernel.element_count(), back.element_count());
        assert_eq!(kernel.vertex_count(), back.vertex_count());
        assert_eq!(
            kernel.name(kernel.root().unwrap()),
            back.name(back.root().unwrap())
        );
    }

    #[test]
    fn size_is_small() {
        // The Figure 2 kernel is tiny: 6 vertices, 9 edges.
        let kernel = KernelBuilder::from_document(&figure2_document());
        let size = kernel.size_bytes();
        assert!(size < 200, "kernel unexpectedly large: {size} bytes");
        assert!(size > 20);
    }

    #[test]
    fn varint_roundtrip() {
        for value in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value);
            let mut cursor = Cursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(cursor.read_varint().unwrap(), value);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Kernel::deserialize(b"nope").unwrap_err();
        assert_eq!(err, DecodeError::BadMagic);
        let err = Kernel::deserialize(b"XS").unwrap_err();
        assert_eq!(err, DecodeError::BadMagic);
    }

    #[test]
    fn truncated_rejected() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let bytes = kernel.serialize();
        let err = Kernel::deserialize(&bytes[..bytes.len() - 3]).unwrap_err();
        assert_eq!(err, DecodeError::Truncated);
    }

    #[test]
    fn empty_kernel_roundtrip() {
        let kernel = Kernel::new();
        let back = Kernel::deserialize(&kernel.serialize()).unwrap();
        assert_eq!(back.vertex_count(), 0);
        assert_eq!(back.root(), None);
    }

    #[test]
    fn decode_error_display() {
        assert!(DecodeError::BadMagic.to_string().contains("magic"));
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadIndex.to_string().contains("index"));
        assert!(DecodeError::BadName.to_string().contains("name"));
    }
}
