//! The counter-stacks data structure of Figure 3.
//!
//! While traversing an XML tree (or the synopsis graph), XSEED needs the
//! **recursion level** of the current rooted path — the maximum number of
//! occurrences of any single label on the path, minus one — in expected
//! O(1) time per push/pop.
//!
//! The structure keeps one stack per occurrence count: when an item is
//! pushed for the *k*-th time (there are currently *k−1* copies of it on
//! the path), it is placed on stack *k*. A hash table records the current
//! occurrence count of every item. The recursion level of the whole path
//! is the number of non-empty stacks minus one, because stack *k* is
//! non-empty exactly when some item occurs at least *k* times.
//!
//! The example from the paper: after pushing `a, b, b, c, c, b`, stacks 1,
//! 2 and 3 are non-empty (`[a,b,c]`, `[b,c]`, `[b]`), so the recursion
//! level of the path is 2.

use std::collections::HashMap;
use std::hash::Hash;

/// Counter stacks over items of type `T` (typically synopsis vertex ids or
/// label ids).
#[derive(Debug, Clone)]
pub struct CounterStacks<T: Eq + Hash + Clone> {
    /// `stacks[k]` holds the items whose push was their `(k+1)`-th
    /// occurrence (0-indexed internally; the paper's stack 1 is index 0).
    stacks: Vec<Vec<T>>,
    /// Current occurrence count per item.
    counts: HashMap<T, usize>,
    /// Number of non-empty stacks (== maximum occurrence count).
    non_empty: usize,
    /// Total number of items currently on the path.
    len: usize,
}

impl<T: Eq + Hash + Clone> Default for CounterStacks<T> {
    fn default() -> Self {
        CounterStacks {
            stacks: Vec::new(),
            counts: HashMap::new(),
            non_empty: 0,
            len: 0,
        }
    }
}

impl<T: Eq + Hash + Clone> CounterStacks<T> {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes `item` onto the path and returns the recursion level of the
    /// path *including* the new item.
    pub fn push(&mut self, item: T) -> usize {
        let count = self.counts.entry(item.clone()).or_insert(0);
        *count += 1;
        let occurrence = *count;
        if self.stacks.len() < occurrence {
            self.stacks.push(Vec::new());
        }
        self.stacks[occurrence - 1].push(item);
        if occurrence > self.non_empty {
            self.non_empty = occurrence;
        }
        self.len += 1;
        self.recursion_level()
    }

    /// Returns the recursion level the path *would* have if `item` were
    /// pushed, without modifying the structure.
    pub fn peek_push(&self, item: &T) -> usize {
        let occurrence = self.counts.get(item).copied().unwrap_or(0) + 1;
        occurrence.max(self.non_empty) - 1
    }

    /// Pops `item` from the path. The item must be the most recently pushed
    /// occurrence of that value (pushes and pops mirror a tree traversal,
    /// so this always holds in practice).
    ///
    /// # Panics
    ///
    /// Panics if `item` is not currently on the path.
    pub fn pop(&mut self, item: &T) {
        let count = self
            .counts
            .get_mut(item)
            .unwrap_or_else(|| panic!("pop of an item that is not on the path"));
        assert!(*count > 0, "pop of an item that is not on the path");
        let occurrence = *count;
        *count -= 1;
        if *count == 0 {
            self.counts.remove(item);
        }
        // Items at the same occurrence level are interchangeable, so the
        // popped value need not equal `item`.
        self.stacks[occurrence - 1]
            .pop()
            .expect("stack for this occurrence level must be non-empty");
        while self.non_empty > 0 && self.stacks[self.non_empty - 1].is_empty() {
            self.non_empty -= 1;
        }
        self.len -= 1;
    }

    /// Recursion level of the current path: number of non-empty stacks
    /// minus one, or 0 for an empty path.
    pub fn recursion_level(&self) -> usize {
        self.non_empty.saturating_sub(1)
    }

    /// Number of items currently on the path.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the path is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current occurrence count of `item` on the path.
    pub fn occurrences(&self, item: &T) -> usize {
        self.counts.get(item).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure3_example() {
        // Pushing (a, b, b, c, c, b) gives stacks [a,b,c], [b,c], [b].
        let mut cs = CounterStacks::new();
        cs.push("a");
        cs.push("b");
        cs.push("b");
        cs.push("c");
        cs.push("c");
        cs.push("b");
        assert_eq!(cs.recursion_level(), 2);
        assert_eq!(cs.occurrences(&"a"), 1);
        assert_eq!(cs.occurrences(&"b"), 3);
        assert_eq!(cs.occurrences(&"c"), 2);
        assert_eq!(cs.len(), 6);
    }

    #[test]
    fn push_returns_new_level() {
        let mut cs = CounterStacks::new();
        assert_eq!(cs.push("s"), 0);
        assert_eq!(cs.push("p"), 0);
        cs.pop(&"p");
        assert_eq!(cs.push("s"), 1);
        assert_eq!(cs.push("s"), 2);
    }

    #[test]
    fn pop_restores_level() {
        let mut cs = CounterStacks::new();
        cs.push("x");
        cs.push("x");
        cs.push("x");
        assert_eq!(cs.recursion_level(), 2);
        cs.pop(&"x");
        assert_eq!(cs.recursion_level(), 1);
        cs.pop(&"x");
        assert_eq!(cs.recursion_level(), 0);
        cs.pop(&"x");
        assert_eq!(cs.recursion_level(), 0);
        assert!(cs.is_empty());
    }

    #[test]
    fn peek_push_is_side_effect_free() {
        let mut cs = CounterStacks::new();
        cs.push("a");
        cs.push("b");
        assert_eq!(cs.peek_push(&"a"), 1);
        assert_eq!(cs.peek_push(&"c"), 0);
        // State unchanged.
        assert_eq!(cs.recursion_level(), 0);
        assert_eq!(cs.len(), 2);
        // peek matches an actual push.
        assert_eq!(cs.push("a"), 1);
    }

    #[test]
    fn distinct_items_keep_level_zero() {
        let mut cs = CounterStacks::new();
        for i in 0..100 {
            assert_eq!(cs.push(i), 0);
        }
        assert_eq!(cs.recursion_level(), 0);
        for i in (0..100).rev() {
            cs.pop(&i);
        }
        assert!(cs.is_empty());
    }

    #[test]
    fn interleaved_tree_walk() {
        // Simulates a DFS of <a><s><s/></s><s/></a>.
        let mut cs = CounterStacks::new();
        assert_eq!(cs.push("a"), 0);
        assert_eq!(cs.push("s"), 0);
        assert_eq!(cs.push("s"), 1);
        cs.pop(&"s");
        cs.pop(&"s");
        assert_eq!(cs.push("s"), 0);
        cs.pop(&"s");
        cs.pop(&"a");
        assert!(cs.is_empty());
    }

    #[test]
    #[should_panic(expected = "not on the path")]
    fn pop_missing_panics() {
        let mut cs: CounterStacks<&str> = CounterStacks::new();
        cs.pop(&"ghost");
    }

    #[test]
    fn empty_structure() {
        let cs: CounterStacks<u32> = CounterStacks::new();
        assert_eq!(cs.recursion_level(), 0);
        assert_eq!(cs.len(), 0);
        assert!(cs.is_empty());
        assert_eq!(cs.occurrences(&5), 0);
    }
}
