//! Tunable parameters of the XSEED synopsis and estimator.

/// Configuration of the estimator and the HET builder.
///
/// Defaults follow the paper: `CARD_THRESHOLD` is 0 for ordinary documents
/// (every expandable synopsis path is explored) and should be raised to
/// about 20 for highly recursive documents such as Treebank (Section 6.4);
/// `BSEL_THRESHOLD` is 0.1 (0.001 for Treebank); the HET considers
/// branching paths with at most one predicate (1BP) by default.
#[derive(Debug, Clone, PartialEq)]
pub struct XseedConfig {
    /// The traveler stops expanding a synopsis vertex when the estimated
    /// cardinality of the path is less than or equal to this threshold
    /// (`CARD_THRESHOLD` in Algorithm 2).
    pub card_threshold: f64,
    /// Path-tree nodes with backward selectivity below this threshold have
    /// their branching paths evaluated during HET construction
    /// (`BSEL_THRESHOLD`, Section 5).
    pub bsel_threshold: f64,
    /// Maximum number of branching predicates per candidate hyper-edge
    /// (`MBP`, Section 5). 1 means a 1BP HET.
    pub max_branching_predicates: usize,
    /// Total memory budget in bytes for kernel + HET. `None` means
    /// unlimited (keep every HET entry).
    pub memory_budget: Option<usize>,
    /// Bound on the number of expanded-path-tree nodes a single expansion
    /// may contain, guarding against degenerate synopses. The bound is
    /// enforced the way the paper controls expansion size — through the
    /// cardinality threshold: when the expansion under `card_threshold`
    /// would exceed this many nodes, the *effective* threshold is
    /// escalated (to 1, then doubled) until the expansion fits. The
    /// escalation is a pure function of the synopsis snapshot, config,
    /// and HET, so the traveler, the streaming matcher, and the frontier
    /// memo always prune at the same frontier — no consumer ever stops
    /// mid-walk.
    pub max_ept_nodes: usize,
    /// Capacity (in compiled queries) of the per-snapshot compiled-query
    /// cache serving [`crate::estimate::StreamingMatcher::estimate_plan`].
    /// A serving-layer knob rather than an estimator parameter: size it to
    /// the distinct-query working set of the workload (each entry is a
    /// few hundred bytes). The cache is created lazily, so synopses never
    /// used through cached plans pay nothing.
    pub compiled_cache_capacity: usize,
}

impl Default for XseedConfig {
    fn default() -> Self {
        XseedConfig {
            card_threshold: 0.0,
            bsel_threshold: 0.1,
            max_branching_predicates: 1,
            memory_budget: None,
            max_ept_nodes: 200_000,
            compiled_cache_capacity: 4096,
        }
    }
}

impl XseedConfig {
    /// Configuration suggested by the paper for highly recursive documents
    /// (Treebank-class): a higher cardinality threshold to bound the EPT
    /// and a much lower backward-selectivity threshold.
    pub fn recursive_document() -> Self {
        XseedConfig {
            card_threshold: 20.0,
            bsel_threshold: 0.001,
            ..Self::default()
        }
    }

    /// Like [`XseedConfig::recursive_document`], but with the cardinality
    /// threshold scaled to the document size. The paper uses
    /// `CARD_THRESHOLD = 20` for the 121,332-element Treebank.05 sample so
    /// that the expanded path tree stays at a few percent of the document;
    /// for smaller (or larger) documents the threshold that preserves that
    /// ratio scales proportionally, clamped to `[1, 20]`.
    pub fn recursive_for_size(element_count: usize) -> Self {
        let scaled = 20.0 * element_count as f64 / 121_332.0;
        XseedConfig {
            card_threshold: scaled.clamp(1.0, 20.0),
            bsel_threshold: 0.001,
            ..Self::default()
        }
    }

    /// Sets the memory budget in bytes (builder style).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Sets the cardinality threshold (builder style).
    pub fn with_card_threshold(mut self, threshold: f64) -> Self {
        self.card_threshold = threshold;
        self
    }

    /// Sets the maximum number of branching predicates for HET candidates
    /// (builder style).
    pub fn with_max_branching_predicates(mut self, mbp: usize) -> Self {
        self.max_branching_predicates = mbp;
        self
    }

    /// Sets the backward-selectivity threshold (builder style).
    pub fn with_bsel_threshold(mut self, threshold: f64) -> Self {
        self.bsel_threshold = threshold;
        self
    }
}

/// One step of the adaptive cardinality-threshold escalation used to keep
/// expansions within [`XseedConfig::max_ept_nodes`]: thresholds below 1
/// jump to 1 (pruning every cardinality-0 path, which is what keeps even
/// cyclic kernels finite), then double. Every expansion consumer shares
/// this rule, so for a fixed synopsis + config + HET they all settle on
/// the same effective threshold and therefore the same frontier.
pub(crate) fn escalate_card_threshold(threshold: f64) -> f64 {
    if threshold < 1.0 {
        1.0
    } else {
        threshold * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = XseedConfig::default();
        assert_eq!(c.card_threshold, 0.0);
        assert_eq!(c.bsel_threshold, 0.1);
        assert_eq!(c.max_branching_predicates, 1);
        assert_eq!(c.memory_budget, None);
    }

    #[test]
    fn recursive_preset() {
        let c = XseedConfig::recursive_document();
        assert_eq!(c.card_threshold, 20.0);
        assert_eq!(c.bsel_threshold, 0.001);
    }

    #[test]
    fn escalation_climbs_past_any_finite_cardinality() {
        // From any starting threshold (including negative ones, where a
        // cardinality-0 path would never be pruned) the first step lands
        // at 1 and doubling then exceeds any finite f64 card in finitely
        // many steps — the escalation loop always terminates.
        let mut t = -5.0;
        t = escalate_card_threshold(t);
        assert_eq!(t, 1.0);
        for _ in 0..64 {
            let next = escalate_card_threshold(t);
            assert!(next > t);
            t = next;
        }
        assert!(t >= 1e18);
    }

    #[test]
    fn builder_style_setters() {
        let c = XseedConfig::default()
            .with_memory_budget(25 * 1024)
            .with_card_threshold(5.0)
            .with_max_branching_predicates(2)
            .with_bsel_threshold(0.05);
        assert_eq!(c.memory_budget, Some(25 * 1024));
        assert_eq!(c.card_threshold, 5.0);
        assert_eq!(c.max_branching_predicates, 2);
        assert_eq!(c.bsel_threshold, 0.05);
    }
}
