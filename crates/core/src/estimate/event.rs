//! Events emitted by the synopsis traveler (Algorithm 2).

use crate::kernel::VertexId;
use xmlkit::names::LabelId;

/// A Dewey identifier locating an EPT node: the 1-based child ordinal at
/// every level from the root down to the node, e.g. `1.3.3.1`.
///
/// Open events carry only the *last* component (the node's ordinal among
/// its expanded siblings), so that producing an event never allocates;
/// full Dewey paths are reconstructed on demand from a materialized
/// [`crate::estimate::ept::ExpandedPathTree`] via
/// [`crate::estimate::ept::ExpandedPathTree::dewey`].
pub type DeweyId = Vec<u32>;

/// One event of the expanded-path-tree stream.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateEvent {
    /// A synopsis vertex is entered along the current path.
    Open {
        /// The kernel vertex being visited.
        vertex: VertexId,
        /// The element label of that vertex.
        label: LabelId,
        /// 1-based ordinal of this node among its parent's expanded
        /// children (the last Dewey component).
        dewey_ordinal: u32,
        /// Estimated cardinality of the rooted path ending here.
        card: f64,
        /// Forward selectivity of the path (Definition 5).
        fsel: f64,
        /// Backward selectivity of the path (Definition 5).
        bsel: f64,
        /// Recursion level of the path ending here.
        level: usize,
        /// Incremental hash of the rooted label path (the HET key for the
        /// simple path ending here).
        path_hash: u64,
    },
    /// The most recently opened vertex is left.
    Close {
        /// The kernel vertex being left.
        vertex: VertexId,
    },
    /// The traversal has finished; no further events follow.
    Eos,
}

impl EstimateEvent {
    /// Returns `true` for [`EstimateEvent::Eos`].
    pub fn is_eos(&self) -> bool {
        matches!(self, EstimateEvent::Eos)
    }

    /// The estimated cardinality carried by an open event, if any.
    pub fn card(&self) -> Option<f64> {
        match self {
            EstimateEvent::Open { card, .. } => Some(*card),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let open = EstimateEvent::Open {
            vertex: VertexId(0),
            label: LabelId(0),
            dewey_ordinal: 1,
            card: 2.5,
            fsel: 1.0,
            bsel: 0.5,
            level: 0,
            path_hash: 42,
        };
        assert!(!open.is_eos());
        assert_eq!(open.card(), Some(2.5));
        assert!(EstimateEvent::Eos.is_eos());
        assert_eq!(EstimateEvent::Eos.card(), None);
        assert_eq!(
            EstimateEvent::Close {
                vertex: VertexId(1)
            }
            .card(),
            None
        );
    }
}
