//! Cardinality estimation over the XSEED kernel (Section 4).
//!
//! * [`event`] — the open/close/end-of-stream events produced by the
//!   traveler, carrying the estimated cardinality and the forward and
//!   backward selectivities of the current synopsis path.
//! * [`traveler`] — Algorithm 2: a depth-first traversal of the kernel
//!   that lazily generates the *expanded path tree* (EPT) as an event
//!   stream, bounded by the cardinality threshold.
//! * [`ept`] — a materialized form of the EPT, built by draining the
//!   traveler; the matcher and several diagnostics work on it.
//! * [`matcher`] — Algorithm 3: matches a query tree against the EPT and
//!   sums the estimated cardinalities of the result-node matches,
//!   multiplying in aggregated backward selectivities for predicates.
//! * [`streaming`] — the fused hot path: Algorithm 3 run directly on the
//!   event stream over a [`crate::kernel::FrozenKernel`] snapshot, with no
//!   EPT arena and reachability-based subtree pruning. This is what
//!   [`crate::synopsis::XseedSynopsis::estimate`] uses; the materialized
//!   [`matcher`] remains the differential-testing oracle.

pub mod ept;
pub mod event;
pub mod matcher;
pub mod streaming;
pub mod traveler;

pub use ept::{EptNode, ExpandedPathTree};
pub use event::EstimateEvent;
pub use matcher::Matcher;
pub use streaming::{
    BoundedEstimate, CompiledCacheStats, CompiledPlanCache, CompiledQuery, FrontierMemo,
    StreamingMatcher,
};
pub use traveler::Traveler;
