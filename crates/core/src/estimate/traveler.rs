//! The synopsis traveler (Algorithm 2).
//!
//! The traveler walks the kernel depth-first, maintaining the current
//! synopsis path, its recursion level (via counter stacks), and the
//! estimated cardinality / forward selectivity / backward selectivity of
//! the path, and emits [`EstimateEvent`]s — conceptually generating the
//! expanded path tree (EPT) without storing it.
//!
//! Expansion of a child vertex stops (the paper's `END-TRAVELING`) when
//!
//! * the recursion level of the extended path exceeds the levels recorded
//!   on the kernel edge (the estimated cardinality is 0 — Observation 1
//!   guarantees such paths do not exist in the document), or
//! * the estimated cardinality falls to or below the *effective*
//!   cardinality threshold: the configured
//!   [`card_threshold`](crate::config::XseedConfig::card_threshold),
//!   escalated (to 1, then doubled) until the full expansion fits within
//!   [`max_ept_nodes`](crate::config::XseedConfig::max_ept_nodes) nodes.
//!   The escalated threshold is found by query-independent counting
//!   passes before the first event is emitted, so the expansion is a
//!   deterministic function of the kernel + config + HET alone — never of
//!   how far a particular consumer happened to walk.
//!
//! When a [`HyperEdgeTable`] is supplied, the estimated cardinality and
//! backward selectivity of a simple path present in the table are replaced
//! by the recorded actual values (Section 5, "Cardinality estimation").

use crate::config::{escalate_card_threshold, XseedConfig};
use crate::counter_stacks::CounterStacks;
use crate::estimate::event::EstimateEvent;
use crate::het::hash::{inc_hash, PATH_HASH_SEED};
use crate::het::table::HyperEdgeTable;
use crate::kernel::{EdgeId, Kernel, VertexId};

/// One entry of the traveler's `pathTrace` stack: the footprint of a
/// vertex on the current synopsis path.
#[derive(Debug, Clone)]
struct Footprint {
    vertex: VertexId,
    card: f64,
    fsel: f64,
    bsel: f64,
    /// Index of the next out-edge of `vertex` to try.
    next_child: usize,
    /// Dewey ordinal of this node among its parent's expanded children.
    dewey_ordinal: u32,
    /// Number of expanded children so far (to assign dewey ordinals).
    expanded_children: u32,
    /// Recursion level of the path ending at this vertex.
    level: usize,
    /// Incremental hash of the label path ending at this vertex.
    path_hash: u64,
}

/// Streaming generator of the expanded path tree.
pub struct Traveler<'a> {
    kernel: &'a Kernel,
    het: Option<&'a HyperEdgeTable>,
    /// The effective cardinality threshold: the configured
    /// `card_threshold` escalated until the expansion fits
    /// `max_ept_nodes` (see [`Traveler::new`]).
    card_threshold: f64,
    path: Vec<Footprint>,
    recursion: CounterStacks<VertexId>,
    started: bool,
    finished: bool,
    open_events: usize,
}

impl<'a> Traveler<'a> {
    /// Creates a traveler over `kernel` with the given configuration and
    /// an optional hyper-edge table. Computes the effective cardinality
    /// threshold up front (query-independent counting passes, each
    /// aborting as soon as it overshoots `max_ept_nodes`), so the event
    /// stream is the full expansion under that threshold — it never stops
    /// mid-walk.
    pub fn new(
        kernel: &'a Kernel,
        config: &'a XseedConfig,
        het: Option<&'a HyperEdgeTable>,
    ) -> Self {
        let threshold = effective_card_threshold(kernel, config, het);
        Traveler::with_threshold(kernel, het, threshold)
    }

    /// Creates a traveler that expands with `card_threshold` exactly as
    /// given, with no node bound — the primitive both [`Traveler::new`]
    /// and the threshold-escalation counting passes are built from.
    fn with_threshold(
        kernel: &'a Kernel,
        het: Option<&'a HyperEdgeTable>,
        card_threshold: f64,
    ) -> Self {
        Traveler {
            kernel,
            het,
            card_threshold,
            path: Vec::new(),
            recursion: CounterStacks::new(),
            started: false,
            finished: false,
            open_events: 0,
        }
    }

    /// Number of open events (EPT nodes) generated so far.
    pub fn ept_nodes_generated(&self) -> usize {
        self.open_events
    }

    /// The effective cardinality threshold this traveler expands with:
    /// the configured `card_threshold` unless escalation was needed to
    /// fit the expansion within `max_ept_nodes`.
    pub fn effective_card_threshold(&self) -> f64 {
        self.card_threshold
    }

    /// Produces the next event of the stream (the paper's `NEXT-EVENT`).
    /// After [`EstimateEvent::Eos`] is returned it is returned forever.
    pub fn next_event(&mut self) -> EstimateEvent {
        if self.finished {
            return EstimateEvent::Eos;
        }
        if !self.started {
            self.started = true;
            return match self.kernel.root() {
                Some(root) => self.open_root(root),
                None => {
                    self.finished = true;
                    EstimateEvent::Eos
                }
            };
        }
        if self.path.is_empty() {
            self.finished = true;
            return EstimateEvent::Eos;
        }
        self.visit_next_child()
    }

    /// Drains the stream into a vector (excluding the final EOS); useful in
    /// tests and for materializing the EPT.
    pub fn collect_events(mut self) -> Vec<EstimateEvent> {
        // Two events (open + close) per EPT node; the kernel's live edge
        // count is a cheap lower bound on the node count, so pre-reserve
        // from it instead of growing from empty.
        let mut out = Vec::with_capacity(2 * self.kernel.live_edge_count() + 2);
        loop {
            let evt = self.next_event();
            if evt.is_eos() {
                return out;
            }
            out.push(evt);
        }
    }

    fn open_root(&mut self, root: VertexId) -> EstimateEvent {
        let level = self.recursion.push(root);
        let path_hash = inc_hash(PATH_HASH_SEED, self.kernel.label(root));
        // The root element always exists exactly once; the HET could still
        // override it, but by construction its entry would also be 1.
        let fp = Footprint {
            vertex: root,
            card: 1.0,
            fsel: 1.0,
            bsel: 1.0,
            next_child: 0,
            dewey_ordinal: 1,
            expanded_children: 0,
            level,
            path_hash,
        };
        self.path.push(fp);
        self.open_events += 1;
        self.open_event_from_top()
    }

    /// The paper's `VISIT-NEXT-CHILD`: advances the depth-first traversal
    /// by one event.
    fn visit_next_child(&mut self) -> EstimateEvent {
        loop {
            let top = self.path.last().expect("path checked non-empty");
            let out_edges = self.kernel.out_edges(top.vertex);
            if top.next_child >= out_edges.len() {
                // All children handled: close this vertex. Once the path
                // empties, the next call emits EOS.
                let closed = self.path.pop().expect("path checked non-empty");
                self.recursion.pop(&closed.vertex);
                return EstimateEvent::Close {
                    vertex: closed.vertex,
                };
            }
            let edge = out_edges[top.next_child];
            // Advance the cursor before deciding whether to expand.
            let top_index = self.path.len() - 1;
            self.path[top_index].next_child += 1;
            if let Some(fp) = self.estimate_child(edge) {
                let ordinal = {
                    let parent = &mut self.path[top_index];
                    parent.expanded_children += 1;
                    parent.expanded_children
                };
                let mut fp = fp;
                fp.dewey_ordinal = ordinal;
                self.recursion.push(fp.vertex);
                self.path.push(fp);
                self.open_events += 1;
                return self.open_event_from_top();
            }
            // Child pruned (END-TRAVELING returned true): keep scanning.
        }
    }

    /// The paper's `EST`: computes the footprint of the child reached via
    /// `edge`, or `None` if traversal should stop there.
    fn estimate_child(&self, edge: EdgeId) -> Option<Footprint> {
        let parent = self.path.last().expect("estimate_child needs a parent");
        let e = self.kernel.edge(edge);
        let v = e.to;
        let old_level = self.recursion.recursion_level();
        let new_level = self.recursion.peek_push(&v);
        let label = &e.label;

        let path_hash = inc_hash(parent.path_hash, self.kernel.label(v));

        let (mut card, mut bsel) = if new_level < label.levels() {
            let card = label.child_count(new_level) as f64 * parent.fsel;
            let parent_in_sum = self.kernel.in_child_sum(parent.vertex, old_level);
            let bsel = if parent_in_sum == 0 {
                0.0
            } else {
                label.parent_count(new_level) as f64 / parent_in_sum as f64
            };
            (card, bsel)
        } else {
            // Observation 1: no document path reaches this recursion level.
            (0.0, 0.0)
        };

        // HET override for simple paths: use actual values when available.
        if let Some(het) = self.het {
            if let Some((actual_card, actual_bsel)) = het.lookup_simple(path_hash) {
                card = actual_card as f64;
                bsel = actual_bsel;
            }
        }

        if card <= self.card_threshold {
            return None;
        }

        let v_in_sum = self.kernel.in_child_sum(v, new_level);
        let fsel = if v_in_sum == 0 {
            0.0
        } else {
            card / v_in_sum as f64
        };

        Some(Footprint {
            vertex: v,
            card,
            fsel,
            bsel,
            next_child: 0,
            dewey_ordinal: 0,
            expanded_children: 0,
            level: new_level,
            path_hash,
        })
    }

    fn open_event_from_top(&self) -> EstimateEvent {
        let top = self.path.last().expect("open event requires a path");
        EstimateEvent::Open {
            vertex: top.vertex,
            label: self.kernel.label(top.vertex),
            dewey_ordinal: top.dewey_ordinal,
            card: top.card,
            fsel: top.fsel,
            bsel: top.bsel,
            level: top.level,
            path_hash: top.path_hash,
        }
    }
}

/// The effective cardinality threshold for expanding `kernel` under
/// `config`: the configured `card_threshold` when the full expansion
/// already fits within `max_ept_nodes` nodes, otherwise the first
/// escalated threshold (see
/// [`escalate_card_threshold`](crate::config::escalate_card_threshold))
/// whose expansion fits. Each counting pass aborts as soon as it
/// overshoots, so it costs at most `max_ept_nodes + 1` opens. The loop
/// terminates because the set of expanded paths shrinks monotonically as
/// the threshold grows (per-path cardinalities do not depend on the
/// threshold) and the root alone — which always opens — fits any bound.
fn effective_card_threshold(
    kernel: &Kernel,
    config: &XseedConfig,
    het: Option<&HyperEdgeTable>,
) -> f64 {
    let cap = config.max_ept_nodes.max(1);
    let mut threshold = config.card_threshold;
    loop {
        let mut counter = Traveler::with_threshold(kernel, het, threshold);
        let fits = loop {
            match counter.next_event() {
                EstimateEvent::Open { .. } => {
                    if counter.open_events > cap {
                        break false;
                    }
                }
                EstimateEvent::Close { .. } => {}
                EstimateEvent::Eos => break true,
            }
        };
        if fits {
            return threshold;
        }
        threshold = escalate_card_threshold(threshold);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use xmlkit::samples::figure2_document;

    fn figure2_kernel() -> Kernel {
        KernelBuilder::from_document(&figure2_document())
    }

    /// Collects `(name, card, fsel, bsel)` for every open event.
    fn open_tuples(kernel: &Kernel, config: &XseedConfig) -> Vec<(String, f64, f64, f64)> {
        Traveler::new(kernel, config, None)
            .collect_events()
            .into_iter()
            .filter_map(|e| match e {
                EstimateEvent::Open {
                    label,
                    card,
                    fsel,
                    bsel,
                    ..
                } => Some((
                    kernel.names().name_or_panic(label).to_string(),
                    card,
                    fsel,
                    bsel,
                )),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn figure2_ept_matches_paper_dump() {
        // Section 4 lists the EPT generated from the Figure 2(b) kernel.
        // Check a representative subset of (card, fsel, bsel) annotations.
        let kernel = figure2_kernel();
        let config = XseedConfig::default();
        let opens = open_tuples(&kernel, &config);

        let approx = |a: f64, b: f64| (a - b).abs() < 1e-9;
        // Root a: card 1, fsel 1, bsel 1.
        assert_eq!(opens[0].0, "a");
        assert!(approx(opens[0].1, 1.0));
        // The t child of a: card 1, fsel 0.2, bsel 1.
        let t_under_a = opens
            .iter()
            .find(|(name, card, _, _)| name == "t" && approx(*card, 1.0))
            .expect("t under a present");
        assert!(approx(t_under_a.2, 0.2));
        assert!(approx(t_under_a.3, 1.0));
        // c: card 2, fsel 1, bsel 1.
        let c = opens.iter().find(|(name, _, _, _)| name == "c").unwrap();
        assert!(approx(c.1, 2.0));
        assert!(approx(c.2, 1.0));
        // s under c: card 5, fsel 1, bsel 1.
        let s5 = opens
            .iter()
            .find(|(name, card, _, _)| name == "s" && approx(*card, 5.0))
            .expect("s with card 5");
        assert!(approx(s5.2, 1.0));
        assert!(approx(s5.3, 1.0));
        // p under c/s: card 9, fsel 0.75, bsel 1.
        let p9 = opens
            .iter()
            .find(|(name, card, _, _)| name == "p" && approx(*card, 9.0))
            .expect("p with card 9");
        assert!(approx(p9.2, 0.75));
        assert!(approx(p9.3, 1.0));
        // s at recursion level 1: card 2, fsel 1, bsel 0.4.
        let s_l1 = opens
            .iter()
            .find(|(name, card, _, bsel)| name == "s" && approx(*card, 2.0) && approx(*bsel, 0.4))
            .expect("recursive s with bsel 0.4");
        assert!(approx(s_l1.2, 1.0));
        // Deepest p (recursion level 2 chain): card 3, fsel 1, bsel 1.
        assert!(opens.iter().any(|(name, card, fsel, bsel)| name == "p"
            && approx(*card, 3.0)
            && approx(*fsel, 1.0)
            && approx(*bsel, 1.0)));
        // Total number of EPT nodes in the paper's dump: 14.
        assert_eq!(opens.len(), 14);
    }

    #[test]
    fn events_are_balanced() {
        let kernel = figure2_kernel();
        let config = XseedConfig::default();
        let events = Traveler::new(&kernel, &config, None).collect_events();
        let opens = events
            .iter()
            .filter(|e| matches!(e, EstimateEvent::Open { .. }))
            .count();
        let closes = events
            .iter()
            .filter(|e| matches!(e, EstimateEvent::Close { .. }))
            .count();
        assert_eq!(opens, closes);
        // Depth never goes negative and ends at zero.
        let mut depth: i64 = 0;
        for e in &events {
            match e {
                EstimateEvent::Open { .. } => depth += 1,
                EstimateEvent::Close { .. } => depth -= 1,
                EstimateEvent::Eos => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn eos_is_sticky() {
        let kernel = figure2_kernel();
        let config = XseedConfig::default();
        let mut t = Traveler::new(&kernel, &config, None);
        while !t.next_event().is_eos() {}
        assert!(t.next_event().is_eos());
        assert!(t.next_event().is_eos());
    }

    #[test]
    fn card_threshold_prunes_expansion() {
        let kernel = figure2_kernel();
        let default_count = Traveler::new(&kernel, &XseedConfig::default(), None)
            .collect_events()
            .iter()
            .filter(|e| matches!(e, EstimateEvent::Open { .. }))
            .count();
        let config = XseedConfig::default().with_card_threshold(2.0);
        let pruned_count = Traveler::new(&kernel, &config, None)
            .collect_events()
            .iter()
            .filter(|e| matches!(e, EstimateEvent::Open { .. }))
            .count();
        assert!(pruned_count < default_count);
        assert!(pruned_count >= 1);
    }

    #[test]
    fn max_ept_nodes_caps_generation() {
        let kernel = figure2_kernel();
        let config = XseedConfig {
            max_ept_nodes: 3,
            ..XseedConfig::default()
        };
        let events = Traveler::new(&kernel, &config, None).collect_events();
        let opens = events
            .iter()
            .filter(|e| matches!(e, EstimateEvent::Open { .. }))
            .count();
        assert!(opens <= 3);
        assert!(opens >= 1, "the root always opens");
    }

    #[test]
    fn tiny_cap_escalates_threshold_instead_of_truncating() {
        // Under the old hard cap, a tiny `max_ept_nodes` stopped the walk
        // mid-stride, so the generated prefix depended on traversal order.
        // Escalation instead raises the threshold until the *entire*
        // expansion fits: the capped event stream must be identical to the
        // uncapped stream produced with the escalated threshold set
        // explicitly.
        let kernel = figure2_kernel();
        for cap in [1usize, 2, 3, 5, 8] {
            let config = XseedConfig {
                max_ept_nodes: cap,
                ..XseedConfig::default()
            };
            let capped = Traveler::new(&kernel, &config, None);
            let escalated = capped.effective_card_threshold();
            assert!(
                escalated > config.card_threshold,
                "figure2 has 14 EPT nodes, so cap {cap} must escalate"
            );
            let capped_events = capped.collect_events();
            let explicit = XseedConfig::default().with_card_threshold(escalated);
            let reference = Traveler::new(&kernel, &explicit, None);
            assert_eq!(reference.effective_card_threshold(), escalated);
            assert_eq!(capped_events, reference.collect_events());
            let opens = capped_events
                .iter()
                .filter(|e| matches!(e, EstimateEvent::Open { .. }))
                .count();
            assert!((1..=cap).contains(&opens));
        }
    }

    #[test]
    fn recursion_does_not_expand_beyond_recorded_levels() {
        // Observation 1: the traversal cannot derive a path with recursion
        // level 3 from the Figure 2 kernel, so at most 3 nested s open
        // events appear on any path.
        let kernel = figure2_kernel();
        let config = XseedConfig::default();
        let events = Traveler::new(&kernel, &config, None).collect_events();
        let s_label = kernel.names().lookup("s").unwrap();
        let mut s_depth = 0usize;
        let mut max_s_depth = 0usize;
        for e in &events {
            match e {
                EstimateEvent::Open { label, .. } if *label == s_label => {
                    s_depth += 1;
                    max_s_depth = max_s_depth.max(s_depth);
                }
                EstimateEvent::Close { vertex } if kernel.label(*vertex) == s_label => {
                    s_depth -= 1;
                }
                _ => {}
            }
        }
        assert_eq!(max_s_depth, 3);
    }

    #[test]
    fn empty_kernel_is_immediately_eos() {
        let kernel = Kernel::new();
        let config = XseedConfig::default();
        let mut t = Traveler::new(&kernel, &config, None);
        assert!(t.next_event().is_eos());
    }

    #[test]
    fn het_overrides_simple_path_values() {
        use crate::het::hash::path_hash;
        let kernel = figure2_kernel();
        let names = kernel.names();
        let l = |n: &str| names.lookup(n).unwrap();
        // Claim the actual cardinality of /a/c is 7 (it is really 2) and
        // check the traveler picks it up.
        let mut het = HyperEdgeTable::new();
        let key = path_hash(&[l("a"), l("c")]);
        het.insert_simple(key, 7, 0.9, 100.0);
        het.rebuild_residency();
        let config = XseedConfig::default();
        let events = Traveler::new(&kernel, &config, Some(&het)).collect_events();
        let c_open = events
            .iter()
            .find_map(|e| match e {
                EstimateEvent::Open {
                    label, card, bsel, ..
                } if *label == l("c") => Some((*card, *bsel)),
                _ => None,
            })
            .unwrap();
        assert_eq!(c_open.0, 7.0);
        assert_eq!(c_open.1, 0.9);
    }
}
