//! The streaming matcher: Algorithm 3 fused with Algorithm 2.
//!
//! [`crate::estimate::matcher::Matcher`] materializes the whole expanded
//! path tree (EPT) into an arena and then tree-walks it with per-node state
//! vectors. This module runs the same match **directly on the traveler's
//! event stream** over a [`FrozenKernel`] snapshot: frontier states advance
//! on `Open`, unwind on `Close`, and `estimate()` never allocates an EPT
//! arena at all.
//!
//! ## The event-stream matching loop
//!
//! The traversal is the traveler's depth-first walk (same child order, same
//! effective-`card_threshold` / Observation-1 stopping rules — including
//! the [`max_ept_nodes`](XseedConfig::max_ept_nodes) threshold escalation —
//! same per-path HET overrides), inlined over the frozen CSR arrays. Each open
//! frame carries the footprint of its synopsis path (card / fsel / bsel /
//! recursion level / path hash) plus the frontier states its children
//! inherit — exactly the `(spine index, accumulated predicate factor)`
//! pairs the materialized matcher clones per child, but stored once in a
//! stack-disciplined scratch buffer and freed by truncation on `Close`.
//!
//! Two ideas make a *single pass* sufficient where the materialized matcher
//! looks ahead into the arena:
//!
//! * **Deferred predicate cells.** A predicate factor anchored at node `n`
//!   depends on `n`'s subtree, which the stream has not produced yet when
//!   `n` opens. Each such factor becomes a *cell* — a slot resolved when
//!   `n` closes — and candidate values carry `(known factor, cell list)`
//!   pairs instead of plain numbers. Because a candidate created inside
//!   `n`'s subtree can only be *used* (summed into the total) after the
//!   whole stream ends, every cell is resolved before it is read. Taking
//!   the maximum over candidates at the very end is exact: all later
//!   operations multiply by non-negative factors, and `max` distributes
//!   over those.
//! * **Bottom-up embedding tables.** While a predicate evaluation is
//!   pending, every frame maintains, per compiled predicate node `q`, the
//!   best child-axis embedding `gc[q]` and best descendant-axis embedding
//!   `gd[q]` seen among its closed children. Folding a closing child `c`
//!   into its parent (`gc[q] ← max(gc[q], f(q, c))` on a label match,
//!   `gd[q] ← max(gd[q], bsel(c)·gd_c[q])` always) reproduces the
//!   materialized matcher's recursive best-embedding search without ever
//!   revisiting a node. The tables are only maintained while an anchor is
//!   pending, so predicate-free (or fully HET-covered) queries pay nothing.
//!
//! ## Pruning with reachable-label bitsets
//!
//! Before opening a child vertex `v`, the matcher checks whether any
//! frontier state could still complete inside `v`'s subtree: state `i`
//! needs every named label of spine steps `i..` to occur at or below `v`
//! ([`FrozenKernel::reaches_all`]). If no state passes — and no predicate
//! evaluation is pending, which would need the full subtree — the subtree
//! is skipped wholesale. Skipping never changes the estimate (the skipped
//! region cannot produce a result match), but it does mean the node count
//! reported by [`StreamingMatcher::estimate_with_stats`] is the number of
//! nodes *visited*, a lower bound on the materialized EPT size. The
//! expansion being pruned is always the full one under the snapshot's
//! effective cardinality threshold — never a walk cut short mid-stride —
//! so the streaming, memoized, and materialized paths share one frontier
//! on every synopsis, degenerate ones included.
//!
//! The snapshot is valid until the kernel is mutated; see
//! [`crate::synopsis::XseedSynopsis::kernel_mut`] for the invalidation
//! contract.

use crate::config::{escalate_card_threshold, XseedConfig};
use crate::het::hash::{correlated_key, inc_hash, PATH_HASH_SEED};
use crate::het::table::HyperEdgeTable;
use crate::kernel::{FrozenKernel, VertexId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xmlkit::names::{LabelId, NameTable};
use xpathkit::ast::{Axis, NodeTest, PathExpr};
use xpathkit::query_tree::{QtnId, QueryTree};
use xpathkit::QueryPlan;

/// A resolved node test: wildcard, a concrete label, or a name absent from
/// the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Test {
    Any,
    Label(LabelId),
    Never,
}

impl Test {
    #[inline]
    fn matches(self, label: LabelId) -> bool {
        match self {
            Test::Any => true,
            Test::Label(l) => l == label,
            Test::Never => false,
        }
    }
}

/// One compiled predicate node (flattened across the whole query).
#[derive(Debug)]
struct PredNode {
    test: Test,
    axis: Axis,
    /// Indices of child predicate nodes.
    children: Vec<u32>,
    /// The label when this predicate is a single child-axis name step (the
    /// shape the HET stores).
    single_label: Option<LabelId>,
}

/// One compiled spine step.
#[derive(Debug)]
struct SpineStep {
    test: Test,
    axis: Axis,
    /// Compiled predicate roots hanging off this step.
    pred_roots: Vec<u32>,
    /// All predicate labels when every predicate is a single child-axis
    /// name step (enables the whole-step correlated HET lookup).
    all_simple: Option<Vec<LabelId>>,
    /// Label of the child-axis name-test spine successor, if any (the `r`
    /// of the HET's `p[q1]...[qm]/r` shape).
    sibling: Option<LabelId>,
}

/// A query compiled (label-resolved) against one snapshot's label space:
/// the spine steps and flattened predicate nodes with their node tests
/// resolved to [`LabelId`]s, dead-suffix flags, and the per-step
/// required-label bitsets driving reachability pruning.
///
/// A compiled query is only meaningful for the `(FrozenKernel, NameTable)`
/// pair it was compiled against — label ids and bitset widths are
/// snapshot-specific — which is why the caching layer
/// ([`CompiledPlanCache`]) lives *inside* each
/// [`crate::synopsis::SynopsisSnapshot`]: an epoch bump publishes a fresh
/// snapshot with a fresh (empty) cache, so invalidation needs no extra
/// machinery. The struct is opaque; obtain one through
/// [`StreamingMatcher::estimate_plan`] or the cache.
#[derive(Debug)]
pub struct CompiledQuery {
    spine: Vec<SpineStep>,
    preds: Vec<PredNode>,
    /// `dead[i]`: no state at spine index `i` can ever reach the result
    /// (some later step names an absent label, or carries a predicate that
    /// does).
    dead: Vec<bool>,
    /// Per spine index, a `label_words`-sized bitset of the labels required
    /// by steps `i..` (named spine tests only).
    req_masks: Vec<u64>,
    label_words: usize,
}

impl CompiledQuery {
    fn req_mask(&self, idx: usize) -> &[u64] {
        &self.req_masks[idx * self.label_words..(idx + 1) * self.label_words]
    }
}

/// A point estimate paired with a guaranteed upper bound on the true
/// result cardinality.
///
/// The bound comes from [`StreamingMatcher::estimate_bound`]'s
/// max-out-degree propagation (see that method's docs): it is a *sound*
/// pessimistic cardinality — the true count never exceeds it — while the
/// point estimate is the usual average-fanout product, which can under- or
/// overshoot. By construction `bound >= estimate` always holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedEstimate {
    /// The point estimate ([`StreamingMatcher::estimate`]).
    pub estimate: f64,
    /// A guaranteed upper bound on the true result cardinality, never
    /// below `estimate`.
    pub bound: f64,
}

/// The rooted-label-path identity of a bound-propagation frontier entry:
/// `Known(h)` when every document node the entry over-counts shares the
/// rooted label path hashing to `h` (a chain of child steps from the
/// root), `Ambiguous` otherwise. Only `Known` entries may be clamped by
/// HET simple-path cardinalities — those are exact per-path counts, so the
/// clamp can never cut below the truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathTag {
    Known(u64),
    Ambiguous,
}

/// One candidate value of a frontier state: a known factor times a product
/// of not-yet-resolved predicate cells.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    value: f64,
    cells_start: u32,
    cells_len: u32,
}

/// One frontier state: a spine index plus its candidate values.
#[derive(Debug, Clone, Copy)]
struct State {
    idx: u32,
    cand_start: u32,
    cand_len: u32,
}

/// A pending predicate evaluation: cell `cell` resolves to the best
/// embedding of predicate root `pred` under the anchoring frame.
#[derive(Debug, Clone, Copy)]
struct Anchor {
    pred: u32,
    cell: u32,
}

/// A deferred contribution: `card` times the best resolved candidate.
#[derive(Debug, Clone, Copy)]
struct Contrib {
    card: f64,
    cand_start: u32,
    cand_len: u32,
}

/// One open vertex of the streamed traversal.
#[derive(Debug, Clone, Copy)]
struct Frame {
    vertex: VertexId,
    fsel: f64,
    bsel: f64,
    path_hash: u64,
    /// Next child cursor of `vertex`: a frozen out-slot in streaming mode,
    /// a memo index during replay.
    next_slot: u32,
    end_slot: u32,
    /// Frontier states this frame's children inherit.
    states_start: u32,
    states_end: u32,
    /// Truncation marks into the candidate / cell-ref stacks.
    cands_mark: u32,
    cell_refs_mark: u32,
    /// Start of this frame's `gc`/`gd` tables in the table stack
    /// (`u32::MAX` when tables are inactive here).
    pred_start: u32,
    /// Cells anchored at this frame, resolved at its close.
    anchors_start: u32,
    tables_active: bool,
}

/// The candidate footprint of a child vertex, mirroring the traveler's
/// `EST` computation.
struct Footprint {
    vertex: VertexId,
    card: f64,
    fsel: f64,
    bsel: f64,
    path_hash: u64,
}

/// One memoized traversal position: the frontier the traveler computed for
/// a `(vertex, recursion level)` pair along one expansion path, stored in
/// pre-order with the subtree extent so pruned replays can skip it in O(1).
#[derive(Debug, Clone, Copy)]
struct MemoNode {
    vertex: VertexId,
    card: f64,
    fsel: f64,
    bsel: f64,
    path_hash: u64,
    /// One past the last memo index of this node's subtree (pre-order).
    subtree_end: u32,
}

impl MemoNode {
    #[inline]
    fn footprint(&self) -> Footprint {
        Footprint {
            vertex: self.vertex,
            card: self.card,
            fsel: self.fsel,
            bsel: self.bsel,
            path_hash: self.path_hash,
        }
    }
}

/// A per-batch memo of the traveler's full expansion: every
/// `(vertex, recursion level)` position the traversal reaches, with its
/// computed frontier footprint (card / fsel / bsel / path hash), laid out
/// in pre-order with subtree extents.
///
/// The expansion is *query-independent* (which children open depends only
/// on the synopsis, the config thresholds, and the HET overrides), so one
/// memo serves every query estimated against the same snapshot: replaying
/// a query over the memo skips the recursion-level counter stacks, the
/// per-slot footprint arithmetic, and the HET path-hash probes that the
/// cold streaming pass pays per node. Reachability pruning still applies
/// during replay — a subtree that cannot complete any frontier state is
/// skipped via its stored extent.
///
/// The memo is valid for exactly one frozen snapshot + config + HET
/// combination; take a fresh one (or a fresh [`StreamingMatcher`]) after
/// the kernel epoch changes. The recorded expansion is the full one under
/// the snapshot's effective cardinality threshold (escalated as needed to
/// fit [`XseedConfig::max_ept_nodes`]), so it is exactly the frontier the
/// cold streaming pass and the materialized oracle walk.
#[derive(Debug, Clone)]
pub struct FrontierMemo {
    nodes: Vec<MemoNode>,
    /// Vertex and slot counts of the snapshot the memo was built from,
    /// used to catch cross-snapshot reuse in debug builds.
    vertex_count: usize,
    slot_count: usize,
}

impl FrontierMemo {
    /// Builds the memo for a snapshot by running the traveler's expansion
    /// once (no query matching).
    pub fn build(
        frozen: &FrozenKernel,
        config: &XseedConfig,
        het: Option<&HyperEdgeTable>,
    ) -> Self {
        // The expansion never consults the name table, so an empty one is
        // sufficient for the throwaway matcher driving the build.
        let names = NameTable::new();
        let mut matcher = StreamingMatcher::new(frozen, &names, config, het);
        matcher.build_memo_nodes()
    }

    /// Number of memoized traversal positions (the materialized EPT size).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the snapshot has no root to expand.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The kernel's estimate of **every** rooted simple path, computed in
    /// one pass over the recorded expansion: a simple-path query `/l1/…/ln`
    /// is estimated by the matcher as the sum of `card` over the expansion
    /// positions whose rooted label path equals the query (each position
    /// contributes `card × 1` — no predicates, no descendant states — and
    /// positions are visited in the same pre-order), so accumulating `card`
    /// per path hash replays the frontier once for *all* candidates instead
    /// of once per candidate. This is what lets the HET builder
    /// ([`crate::het::builder::HetBuilder`]) pay O(expansion) for its
    /// simple-path error ranking instead of O(paths × expansion).
    ///
    /// Keys are [`crate::het::hash::path_hash`] values — the same keys the
    /// HET stores — and a path absent from the map has estimate 0.
    pub fn simple_path_estimates(&self) -> HashMap<u64, f64> {
        let mut totals: HashMap<u64, f64> = HashMap::with_capacity(self.nodes.len());
        for node in &self.nodes {
            *totals.entry(node.path_hash).or_insert(0.0) += node.card;
        }
        totals
    }
}

/// Counters and occupancy of a [`CompiledPlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompiledCacheStats {
    /// Lookups answered with an already-compiled query.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Compiled queries currently resident.
    pub entries: usize,
}

#[derive(Default)]
struct CompiledShard {
    map: HashMap<u64, CachedCompiled>,
    tick: u64,
}

struct CachedCompiled {
    compiled: Arc<CompiledQuery>,
    last_used: u64,
}

/// A per-snapshot cache of label-resolved [`CompiledQuery`]s, keyed by
/// [`QueryPlan::id`] — plan-cache hits skip recompilation entirely.
///
/// Sharded by plan id with per-shard mutexes and tick-stamped LRU
/// eviction, mirroring the service-layer plan cache: concurrent workers
/// estimating different plans rarely touch the same lock, and compilation
/// always happens *outside* any lock (two racing compiles of one plan
/// produce identical artifacts; the first insert wins and the loser's is
/// dropped).
///
/// A compiled query is only valid for the snapshot whose label space it
/// was resolved against, so the cache is owned by the snapshot bundle
/// ([`crate::synopsis::SynopsisSnapshot`]): a kernel/config/HET mutation
/// bumps the epoch, publishes a fresh snapshot, and thereby starts from an
/// empty cache — invalidation falls out of the existing epoch machinery.
pub struct CompiledPlanCache {
    shards: Box<[Mutex<CompiledShard>]>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for CompiledPlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CompiledPlanCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl CompiledPlanCache {
    /// Creates a cache of `shards` independent shards holding about
    /// `capacity` compiled queries in total. Both values are clamped to at
    /// least 1.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        CompiledPlanCache {
            shards: (0..shards)
                .map(|_| Mutex::new(CompiledShard::default()))
                .collect(),
            shard_capacity: capacity.div_ceil(shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, plan_id: u64) -> &Mutex<CompiledShard> {
        &self.shards[(plan_id % self.shards.len() as u64) as usize]
    }

    /// Returns the compiled form of the plan with identity `plan_id`,
    /// running `compile` (outside any lock) and caching the result on a
    /// miss.
    pub fn get_or_compile(
        &self,
        plan_id: u64,
        compile: impl FnOnce() -> CompiledQuery,
    ) -> Arc<CompiledQuery> {
        {
            let mut shard = self
                .shard_for(plan_id)
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            shard.tick += 1;
            let tick = shard.tick;
            if let Some(cached) = shard.map.get_mut(&plan_id) {
                cached.last_used = tick;
                let compiled = cached.compiled.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return compiled;
            }
        }

        let compiled = Arc::new(compile());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut shard = self
            .shard_for(plan_id)
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&plan_id) {
            if shard.map.len() >= self.shard_capacity {
                if let Some(oldest) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, c)| c.last_used)
                    .map(|(&k, _)| k)
                {
                    shard.map.remove(&oldest);
                }
            }
            shard.map.insert(
                plan_id,
                CachedCompiled {
                    compiled: compiled.clone(),
                    last_used: tick,
                },
            );
        }
        compiled
    }

    /// Current hit/miss counters and occupancy.
    pub fn stats(&self) -> CompiledCacheStats {
        CompiledCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| {
                    s.lock()
                        .unwrap_or_else(|poison| poison.into_inner())
                        .map
                        .len()
                })
                .sum(),
        }
    }
}

const NO_TABLES: u32 = u32::MAX;

/// Streams the expanded path tree over a [`FrozenKernel`] and matches a
/// query against it in the same pass. Reusable across queries: the scratch
/// buffers grow to the high-water mark of the frontier and stay allocated.
pub struct StreamingMatcher<'a> {
    frozen: &'a FrozenKernel,
    names: &'a NameTable,
    config: &'a XseedConfig,
    het: Option<&'a HyperEdgeTable>,
    // Scratch, stack-disciplined (truncated on frame close).
    frames: Vec<Frame>,
    states: Vec<State>,
    cands: Vec<Candidate>,
    cell_refs: Vec<u32>,
    tables: Vec<f64>,
    anchors: Vec<Anchor>,
    // Scratch, per query (cleared on entry).
    cells: Vec<f64>,
    contribs: Vec<Contrib>,
    contrib_cands: Vec<Candidate>,
    contrib_cells: Vec<u32>,
    // Scratch, per open (cleared per node).
    produced: Vec<(u32, f64, u32, u32)>,
    produced_cells: Vec<u32>,
    node_cells: Vec<(u32, u32)>,
    // Recursion tracking (Figure 3 semantics over flat arrays).
    rec_counts: Vec<u32>,
    rec_occ: Vec<u32>,
    rec_max: usize,
    opens: usize,
    /// Cached effective cardinality threshold of the snapshot (the
    /// configured `card_threshold`, escalated until the full expansion
    /// fits `max_ept_nodes`). Computed lazily on the first cold traversal
    /// or injected via
    /// [`StreamingMatcher::set_effective_card_threshold`]; never cleared —
    /// the snapshot is immutable for the matcher's lifetime.
    eff_threshold: Option<f64>,
    /// When set, estimates replay the memoized expansion instead of
    /// re-deriving footprints per node (see [`FrontierMemo`]).
    memo: Option<Arc<FrontierMemo>>,
    /// When set, [`StreamingMatcher::estimate_plan`] reuses compiled
    /// queries across estimates (see [`CompiledPlanCache`]).
    compiled_cache: Option<Arc<CompiledPlanCache>>,
}

impl<'a> StreamingMatcher<'a> {
    /// Creates a matcher over a frozen snapshot. `names` must be the name
    /// table of the kernel the snapshot was taken from.
    pub fn new(
        frozen: &'a FrozenKernel,
        names: &'a NameTable,
        config: &'a XseedConfig,
        het: Option<&'a HyperEdgeTable>,
    ) -> Self {
        StreamingMatcher {
            frozen,
            names,
            config,
            het,
            frames: Vec::new(),
            states: Vec::new(),
            cands: Vec::new(),
            cell_refs: Vec::new(),
            tables: Vec::new(),
            anchors: Vec::new(),
            cells: Vec::new(),
            contribs: Vec::new(),
            contrib_cands: Vec::new(),
            contrib_cells: Vec::new(),
            produced: Vec::new(),
            produced_cells: Vec::new(),
            node_cells: Vec::new(),
            rec_counts: vec![0; frozen.vertex_count()],
            rec_occ: Vec::new(),
            rec_max: 0,
            opens: 0,
            eff_threshold: None,
            memo: None,
            compiled_cache: None,
        }
    }

    /// Switches the matcher to batched (memoized) mode: the traveler's
    /// expansion is recorded once and every subsequent estimate replays it.
    /// Worth it from the second query of a batch onwards; a no-op when a
    /// memo is already installed.
    pub fn enable_batch_memo(&mut self) {
        if self.memo.is_none() {
            let memo = self.build_memo_nodes();
            self.memo = Some(Arc::new(memo));
        }
    }

    /// Installs a pre-built (possibly shared) frontier memo.
    ///
    /// The memo must have been built from the same frozen snapshot,
    /// config, and HET this matcher was created over; estimates are
    /// undefined otherwise. That compatibility is the **caller's
    /// contract** — only the snapshot's vertex and slot counts are
    /// sanity-checked (in debug builds), which cannot catch e.g. a config
    /// or HET that differs over an identically shaped graph. Obtaining
    /// matchers through [`crate::synopsis::SynopsisSnapshot::batch_matcher`]
    /// upholds the contract by construction (one bundle owns both).
    pub fn set_frontier_memo(&mut self, memo: Arc<FrontierMemo>) {
        debug_assert_eq!(memo.vertex_count, self.frozen.vertex_count());
        debug_assert_eq!(memo.slot_count, self.frozen.slot_count());
        self.memo = Some(memo);
    }

    /// Installs a shared per-snapshot compiled-query cache consulted by
    /// [`StreamingMatcher::estimate_plan`]. The cache must hold queries
    /// compiled against the same snapshot (frozen kernel + name table)
    /// this matcher was created over — the same caller's contract as
    /// [`StreamingMatcher::set_frontier_memo`], upheld by construction
    /// when matchers come from
    /// [`crate::synopsis::SynopsisSnapshot::matcher`].
    pub fn set_compiled_cache(&mut self, cache: Arc<CompiledPlanCache>) {
        self.compiled_cache = Some(cache);
    }

    /// Estimates the cardinality of a path expression.
    pub fn estimate(&mut self, expr: &PathExpr) -> f64 {
        self.estimate_with_stats(expr).0
    }

    /// Estimates a cached [`QueryPlan`], reusing its compiled
    /// (label-resolved) form across calls when a [`CompiledPlanCache`] is
    /// installed — the service hot path: a plan-cache hit then skips both
    /// the parse *and* the compilation. Without a cache this is equivalent
    /// to `estimate(plan.expr())`.
    pub fn estimate_plan(&mut self, plan: &QueryPlan) -> f64 {
        self.estimate_plan_with_stats(plan).0
    }

    /// [`StreamingMatcher::estimate_plan`] with the visited-node count of
    /// [`StreamingMatcher::estimate_with_stats`].
    pub fn estimate_plan_with_stats(&mut self, plan: &QueryPlan) -> (f64, usize) {
        if let Some(answer) = self.answer_without_traversal(plan.expr()) {
            return answer;
        }
        match self.compiled_cache.clone() {
            Some(cache) => {
                let compiled = cache.get_or_compile(plan.id(), || self.compile(plan.expr()));
                self.run_compiled(&compiled)
            }
            None => {
                let query = self.compile(plan.expr());
                self.run_compiled(&query)
            }
        }
    }

    /// [`StreamingMatcher::estimate_plan`], additionally reporting how
    /// long label resolution + NFA compilation took **when this call
    /// compiled the plan**: `None` on compiled-cache hits and
    /// pre-traversal answers (HET fast path / empty kernel). The timing
    /// is captured inside the cache's miss closure, so instrumented
    /// callers can attribute compilation separately from the estimate
    /// without a second cache round-trip (which would perturb the very
    /// hit/miss counters they report).
    pub fn estimate_plan_timed(&mut self, plan: &QueryPlan) -> (f64, Option<Duration>) {
        if let Some((answer, _)) = self.answer_without_traversal(plan.expr()) {
            return (answer, None);
        }
        let mut compile_time = None;
        let estimate = match self.compiled_cache.clone() {
            Some(cache) => {
                let compiled = cache.get_or_compile(plan.id(), || {
                    let started = Instant::now();
                    let compiled = self.compile(plan.expr());
                    compile_time = Some(started.elapsed());
                    compiled
                });
                self.run_compiled(&compiled).0
            }
            None => {
                let started = Instant::now();
                let query = self.compile(plan.expr());
                compile_time = Some(started.elapsed());
                self.run_compiled(&query).0
            }
        };
        (estimate, compile_time)
    }

    /// Estimates a path expression in **bound mode**: the usual point
    /// estimate paired with a guaranteed upper bound on the true result
    /// cardinality.
    ///
    /// The bound is computed by `compute_bound`'s max-out-degree
    /// frontier propagation over the synopsis graph —
    /// worst-case fan-out instead of average fan-out, exact per-label node
    /// totals as clamps, predicates ignored (they only filter), and the
    /// point path's cardinality-threshold pruning (including its
    /// `max_ept_nodes` escalation) deliberately *not* applied (pruning
    /// drops mass, which would break the guarantee). HET entries clamp the bound downwards only — their
    /// simple-path cardinalities are exact counts — and never inflate it.
    /// `bound >= estimate` holds by construction.
    pub fn estimate_bound(&mut self, expr: &PathExpr) -> BoundedEstimate {
        let estimate = self.estimate(expr);
        let query = self.compile(expr);
        let raw = self.compute_bound(&query) as f64;
        BoundedEstimate {
            estimate,
            bound: raw.max(estimate),
        }
    }

    /// [`StreamingMatcher::estimate_bound`] over a cached [`QueryPlan`],
    /// sharing the compiled form with the point path when a
    /// [`CompiledPlanCache`] is installed.
    pub fn estimate_plan_bound(&mut self, plan: &QueryPlan) -> BoundedEstimate {
        let estimate = self.estimate_plan(plan);
        let raw = match self.compiled_cache.clone() {
            Some(cache) => {
                let compiled = cache.get_or_compile(plan.id(), || self.compile(plan.expr()));
                self.compute_bound(&compiled)
            }
            None => {
                let query = self.compile(plan.expr());
                self.compute_bound(&query)
            }
        };
        BoundedEstimate {
            estimate,
            bound: (raw as f64).max(estimate),
        }
    }

    /// Estimates the cardinality, also reporting the number of EPT nodes
    /// *visited* by the streamed traversal (a lower bound on the
    /// materialized EPT size, thanks to reachability pruning).
    pub fn estimate_with_stats(&mut self, expr: &PathExpr) -> (f64, usize) {
        if let Some(answer) = self.answer_without_traversal(expr) {
            return answer;
        }
        let query = self.compile(expr);
        self.run_compiled(&query)
    }

    /// The pre-traversal answers shared by the expression and plan entry
    /// points: the Section 5 HET fast path (a simple path resident in the
    /// table is answered exactly, identical to `Matcher::estimate`) and
    /// the empty-kernel case.
    fn answer_without_traversal(&self, expr: &PathExpr) -> Option<(f64, usize)> {
        if let Some(het) = self.het {
            if let Some(actual) = het.answer_simple_path(self.names, expr) {
                return Some((actual, 0));
            }
        }
        if self.frozen.root().is_none() {
            return Some((0.0, 0));
        }
        None
    }

    /// Runs the streamed (or memo-replayed) match of an already-compiled
    /// query and sums the contributions.
    fn run_compiled(&mut self, query: &CompiledQuery) -> (f64, usize) {
        let Some(root) = self.frozen.root() else {
            return (0.0, 0);
        };
        // The cold pass needs the snapshot's effective threshold; resolve
        // it before `reset()` because the counting passes dirty the
        // recursion tracker. Memo replay bakes the thresholded frontier
        // into the memo nodes and never re-derives footprints.
        let threshold = if self.memo.is_none() {
            self.effective_card_threshold()
        } else {
            0.0
        };
        self.reset();

        // Seed the root's incoming frontier: spine index 0, factor 1.
        let incoming_start = self.states.len() as u32;
        if !query.dead[0] {
            let cand = self.cands.len() as u32;
            self.cands.push(Candidate {
                value: 1.0,
                cells_start: 0,
                cells_len: 0,
            });
            self.states.push(State {
                idx: 0,
                cand_start: cand,
                cand_len: 1,
            });
        }
        let incoming_end = self.states.len() as u32;

        if let Some(memo) = self.memo.clone() {
            self.run_replay(&memo, incoming_start, incoming_end, query);
        } else {
            self.run_stream(root, incoming_start, incoming_end, query, threshold);
        }

        let total = self.sum_contributions();
        (total, self.opens)
    }

    /// The cold traversal: streams the traveler's expansion and matches in
    /// the same pass (see the module docs).
    fn run_stream(
        &mut self,
        root: VertexId,
        incoming_start: u32,
        incoming_end: u32,
        query: &CompiledQuery,
        threshold: f64,
    ) {
        let root_fp = Footprint {
            vertex: root,
            card: 1.0,
            fsel: 1.0,
            bsel: 1.0,
            path_hash: inc_hash(PATH_HASH_SEED, self.frozen.label(root)),
        };
        self.rec_push(root);
        let slots = self.frozen.out_slots(root);
        self.open_frame(
            root_fp,
            incoming_start,
            incoming_end,
            query,
            slots.start as u32,
            slots.end as u32,
        );

        while let Some(frame) = self.frames.last().copied() {
            if frame.next_slot >= frame.end_slot {
                self.close_top(query);
                continue;
            }
            let slot = frame.next_slot as usize;
            let top = self.frames.len() - 1;
            self.frames[top].next_slot += 1;

            let child = self.frozen.slot_target(slot);
            let Some(fp) = self.child_footprint(
                frame.vertex,
                frame.fsel,
                frame.path_hash,
                slot,
                child,
                threshold,
            ) else {
                continue;
            };
            if !frame.tables_active && !self.any_state_viable(&frame, child, query) {
                continue;
            }
            self.rec_push(child);
            let slots = self.frozen.out_slots(fp.vertex);
            self.open_frame(
                fp,
                frame.states_start,
                frame.states_end,
                query,
                slots.start as u32,
                slots.end as u32,
            );
        }
    }

    /// The batched traversal: replays the memoized expansion, skipping
    /// footprint arithmetic and recursion tracking entirely. Frame slot
    /// cursors index memo nodes instead of frozen out-slots; advancing a
    /// cursor jumps over the child's whole pre-order extent, so pruning a
    /// subtree costs O(1).
    fn run_replay(
        &mut self,
        memo: &FrontierMemo,
        incoming_start: u32,
        incoming_end: u32,
        query: &CompiledQuery,
    ) {
        let nodes = &memo.nodes;
        let Some(root) = nodes.first() else {
            return;
        };
        self.open_frame(
            root.footprint(),
            incoming_start,
            incoming_end,
            query,
            1,
            root.subtree_end,
        );

        while let Some(frame) = self.frames.last().copied() {
            if frame.next_slot >= frame.end_slot {
                self.close_top(query);
                continue;
            }
            let m = frame.next_slot as usize;
            let node = nodes[m];
            let top = self.frames.len() - 1;
            self.frames[top].next_slot = node.subtree_end;
            if !frame.tables_active && !self.any_state_viable(&frame, node.vertex, query) {
                continue;
            }
            self.open_frame(
                node.footprint(),
                frame.states_start,
                frame.states_end,
                query,
                m as u32 + 1,
                node.subtree_end,
            );
        }
    }

    /// Runs the traveler's expansion once, recording every opened node in
    /// pre-order with its subtree extent — the build step of
    /// [`FrontierMemo`]. Uses (and then resets) this matcher's recursion
    /// tracker; no query matching happens here.
    fn build_memo_nodes(&mut self) -> FrontierMemo {
        // Resolve the effective threshold before touching the recursion
        // tracker — the counting passes dirty it.
        let threshold = self.effective_card_threshold();
        self.rec_counts.clear();
        self.rec_counts.resize(self.frozen.vertex_count(), 0);
        self.rec_occ.clear();
        self.rec_max = 0;

        struct BuildFrame {
            node: u32,
            vertex: VertexId,
            fsel: f64,
            path_hash: u64,
            next_slot: u32,
            end_slot: u32,
        }

        let mut nodes: Vec<MemoNode> = Vec::new();
        let mut stack: Vec<BuildFrame> = Vec::new();
        if let Some(root) = self.frozen.root() {
            let path_hash = inc_hash(PATH_HASH_SEED, self.frozen.label(root));
            self.rec_push(root);
            nodes.push(MemoNode {
                vertex: root,
                card: 1.0,
                fsel: 1.0,
                bsel: 1.0,
                path_hash,
                subtree_end: 0,
            });
            let slots = self.frozen.out_slots(root);
            stack.push(BuildFrame {
                node: 0,
                vertex: root,
                fsel: 1.0,
                path_hash,
                next_slot: slots.start as u32,
                end_slot: slots.end as u32,
            });

            while let Some(top) = stack.last_mut() {
                if top.next_slot >= top.end_slot {
                    let done = stack.pop().expect("non-empty stack");
                    self.rec_pop(done.vertex);
                    nodes[done.node as usize].subtree_end = nodes.len() as u32;
                    continue;
                }
                let slot = top.next_slot as usize;
                top.next_slot += 1;
                let (pv, pf, ph) = (top.vertex, top.fsel, top.path_hash);

                let child = self.frozen.slot_target(slot);
                let Some(fp) = self.child_footprint(pv, pf, ph, slot, child, threshold) else {
                    continue;
                };
                self.rec_push(child);
                let node = nodes.len() as u32;
                nodes.push(MemoNode {
                    vertex: fp.vertex,
                    card: fp.card,
                    fsel: fp.fsel,
                    bsel: fp.bsel,
                    path_hash: fp.path_hash,
                    subtree_end: 0,
                });
                let slots = self.frozen.out_slots(fp.vertex);
                stack.push(BuildFrame {
                    node,
                    vertex: fp.vertex,
                    fsel: fp.fsel,
                    path_hash: fp.path_hash,
                    next_slot: slots.start as u32,
                    end_slot: slots.end as u32,
                });
            }
        }

        FrontierMemo {
            nodes,
            vertex_count: self.frozen.vertex_count(),
            slot_count: self.frozen.slot_count(),
        }
    }

    // ------------------------------------------------------------------
    // Effective cardinality threshold (max_ept_nodes escalation)
    // ------------------------------------------------------------------

    /// The snapshot's effective cardinality threshold: the configured
    /// `card_threshold`, escalated (see
    /// [`escalate_card_threshold`](crate::config::escalate_card_threshold))
    /// until the full query-independent expansion fits within
    /// `max_ept_nodes` nodes. Cached after the first computation — the
    /// snapshot is immutable for the matcher's lifetime, so the answer
    /// never changes. Leaves the recursion tracker dirty; callers reset it
    /// before traversing.
    pub(crate) fn effective_card_threshold(&mut self) -> f64 {
        if let Some(t) = self.eff_threshold {
            return t;
        }
        let cap = self.config.max_ept_nodes.max(1);
        let mut threshold = self.config.card_threshold;
        while self.count_expansion(threshold, cap) > cap {
            threshold = escalate_card_threshold(threshold);
        }
        self.eff_threshold = Some(threshold);
        threshold
    }

    /// Injects a pre-computed effective threshold, letting snapshot owners
    /// ([`crate::synopsis::SynopsisSnapshot`]) pay the counting passes
    /// once per snapshot instead of once per matcher. The value must be
    /// what [`StreamingMatcher::effective_card_threshold`] would compute
    /// for the same frozen snapshot + config + HET — the same caller's
    /// contract as [`StreamingMatcher::set_frontier_memo`].
    pub(crate) fn set_effective_card_threshold(&mut self, threshold: f64) {
        self.eff_threshold = Some(threshold);
    }

    /// Counts the opens of the expansion under `threshold`, aborting as
    /// soon as the count exceeds `cap` — the escalation loop only needs
    /// fits / doesn't-fit, so each pass costs at most `cap + 1` opens
    /// (which also bounds the pass on expansions that would otherwise not
    /// terminate, e.g. a negative threshold keeping cardinality-0 cycles
    /// open forever). Dirties the recursion tracker.
    fn count_expansion(&mut self, threshold: f64, cap: usize) -> usize {
        let Some(root) = self.frozen.root() else {
            return 0;
        };
        self.rec_counts.clear();
        self.rec_counts.resize(self.frozen.vertex_count(), 0);
        self.rec_occ.clear();
        self.rec_max = 0;

        struct CountFrame {
            vertex: VertexId,
            fsel: f64,
            path_hash: u64,
            next_slot: u32,
            end_slot: u32,
        }

        let mut opens = 1usize;
        self.rec_push(root);
        let slots = self.frozen.out_slots(root);
        let mut stack = vec![CountFrame {
            vertex: root,
            fsel: 1.0,
            path_hash: inc_hash(PATH_HASH_SEED, self.frozen.label(root)),
            next_slot: slots.start as u32,
            end_slot: slots.end as u32,
        }];
        while let Some(top) = stack.last_mut() {
            if top.next_slot >= top.end_slot {
                let done = stack.pop().expect("non-empty stack");
                self.rec_pop(done.vertex);
                continue;
            }
            let slot = top.next_slot as usize;
            top.next_slot += 1;
            let (pv, pf, ph) = (top.vertex, top.fsel, top.path_hash);

            let child = self.frozen.slot_target(slot);
            let Some(fp) = self.child_footprint(pv, pf, ph, slot, child, threshold) else {
                continue;
            };
            opens += 1;
            if opens > cap {
                return opens;
            }
            self.rec_push(child);
            let slots = self.frozen.out_slots(fp.vertex);
            stack.push(CountFrame {
                vertex: fp.vertex,
                fsel: fp.fsel,
                path_hash: fp.path_hash,
                next_slot: slots.start as u32,
                end_slot: slots.end as u32,
            });
        }
        opens
    }

    // ------------------------------------------------------------------
    // Query compilation
    // ------------------------------------------------------------------

    fn resolve_test(&self, test: &NodeTest) -> Test {
        match test {
            NodeTest::Wildcard => Test::Any,
            NodeTest::Name(n) => match self.names.lookup(n) {
                Some(l) => Test::Label(l),
                None => Test::Never,
            },
        }
    }

    fn compile_pred(&self, qt: &QueryTree, id: QtnId, preds: &mut Vec<PredNode>) -> u32 {
        let node = qt.node(id);
        let test = self.resolve_test(&node.test);
        let my_idx = preds.len() as u32;
        preds.push(PredNode {
            test,
            axis: node.axis,
            children: Vec::new(),
            single_label: None,
        });
        let children: Vec<u32> = qt
            .children(id)
            .iter()
            .map(|&c| self.compile_pred(qt, c, preds))
            .collect();
        let single_label = if node.axis == Axis::Child && children.is_empty() {
            match test {
                Test::Label(l) => Some(l),
                _ => None,
            }
        } else {
            None
        };
        let slot = &mut preds[my_idx as usize];
        slot.children = children;
        slot.single_label = single_label;
        my_idx
    }

    fn pred_has_never(&self, preds: &[PredNode], root: u32) -> bool {
        let node = &preds[root as usize];
        node.test == Test::Never || node.children.iter().any(|&c| self.pred_has_never(preds, c))
    }

    fn compile(&self, expr: &PathExpr) -> CompiledQuery {
        let qt = QueryTree::from_expr(expr);
        let spine_ids = qt.spine();
        let mut preds: Vec<PredNode> = Vec::new();
        let mut spine: Vec<SpineStep> = Vec::with_capacity(spine_ids.len());

        for (i, &sid) in spine_ids.iter().enumerate() {
            let node = qt.node(sid);
            let pred_roots: Vec<u32> = qt
                .predicate_children(sid)
                .iter()
                .map(|&p| self.compile_pred(&qt, p, &mut preds))
                .collect();
            let all_simple = pred_roots
                .iter()
                .map(|&p| preds[p as usize].single_label)
                .collect::<Option<Vec<LabelId>>>()
                .filter(|labels| !labels.is_empty());
            let sibling = spine_ids.get(i + 1).and_then(|&next| {
                let n = qt.node(next);
                if n.axis != Axis::Child {
                    return None;
                }
                match &n.test {
                    NodeTest::Name(name) => self.names.lookup(name),
                    NodeTest::Wildcard => None,
                }
            });
            spine.push(SpineStep {
                test: self.resolve_test(&node.test),
                axis: node.axis,
                pred_roots,
                all_simple,
                sibling,
            });
        }

        // Dead suffixes: a state can only complete if every later spine
        // test (and every predicate tree along the way) can match at all.
        let mut dead = vec![false; spine.len()];
        let mut blocked = false;
        for i in (0..spine.len()).rev() {
            let step = &spine[i];
            if step.test == Test::Never
                || step
                    .pred_roots
                    .iter()
                    .any(|&p| self.pred_has_never(&preds, p))
            {
                blocked = true;
            }
            dead[i] = blocked;
        }

        // Required-label masks, as suffix unions of the named spine tests.
        let label_words = self.frozen.label_words();
        let mut req_masks = vec![0u64; spine.len() * label_words];
        let mut suffix = vec![0u64; label_words];
        for i in (0..spine.len()).rev() {
            if let Test::Label(l) = spine[i].test {
                suffix[l.index() / 64] |= 1u64 << (l.index() % 64);
            }
            req_masks[i * label_words..(i + 1) * label_words].copy_from_slice(&suffix);
        }

        CompiledQuery {
            spine,
            preds,
            dead,
            req_masks,
            label_words,
        }
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    fn reset(&mut self) {
        self.frames.clear();
        self.states.clear();
        self.cands.clear();
        self.cell_refs.clear();
        self.tables.clear();
        self.anchors.clear();
        self.cells.clear();
        self.contribs.clear();
        self.contrib_cands.clear();
        self.contrib_cells.clear();
        self.rec_counts.clear();
        self.rec_counts.resize(self.frozen.vertex_count(), 0);
        self.rec_occ.clear();
        self.rec_max = 0;
        self.opens = 0;
    }

    #[inline]
    fn rec_level(&self) -> usize {
        self.rec_max.saturating_sub(1)
    }

    #[inline]
    fn rec_peek_push(&self, v: VertexId) -> usize {
        let occurrence = self.rec_counts[v.index()] as usize + 1;
        occurrence.max(self.rec_max) - 1
    }

    fn rec_push(&mut self, v: VertexId) {
        let count = &mut self.rec_counts[v.index()];
        *count += 1;
        let c = *count as usize;
        if self.rec_occ.len() <= c {
            self.rec_occ.resize(c + 1, 0);
        }
        self.rec_occ[c] += 1;
        if c > self.rec_max {
            self.rec_max = c;
        }
    }

    fn rec_pop(&mut self, v: VertexId) {
        let count = &mut self.rec_counts[v.index()];
        let c = *count as usize;
        *count -= 1;
        self.rec_occ[c] -= 1;
        while self.rec_max > 0 && self.rec_occ[self.rec_max] == 0 {
            self.rec_max -= 1;
        }
    }

    /// The traveler's `EST`: footprint of the child reached through `slot`,
    /// or `None` when traversal stops there (threshold or Observation 1).
    fn child_footprint(
        &self,
        parent_vertex: VertexId,
        parent_fsel: f64,
        parent_path_hash: u64,
        slot: usize,
        child: VertexId,
        threshold: f64,
    ) -> Option<Footprint> {
        let old_level = self.rec_level();
        let new_level = self.rec_peek_push(child);
        let path_hash = inc_hash(parent_path_hash, self.frozen.label(child));

        let (mut card, mut bsel) = if new_level < self.frozen.slot_levels(slot) {
            let card = self.frozen.slot_child_count(slot, new_level) as f64 * parent_fsel;
            let parent_in_sum = self.frozen.in_child_sum(parent_vertex, old_level);
            let bsel = if parent_in_sum == 0 {
                0.0
            } else {
                self.frozen.slot_parent_count(slot, new_level) as f64 / parent_in_sum as f64
            };
            (card, bsel)
        } else {
            (0.0, 0.0)
        };

        if let Some(het) = self.het {
            if let Some((actual_card, actual_bsel)) = het.lookup_simple(path_hash) {
                card = actual_card as f64;
                bsel = actual_bsel;
            }
        }

        if card <= threshold {
            return None;
        }

        let v_in_sum = self.frozen.in_child_sum(child, new_level);
        let fsel = if v_in_sum == 0 {
            0.0
        } else {
            card / v_in_sum as f64
        };

        Some(Footprint {
            vertex: child,
            card,
            fsel,
            bsel,
            path_hash,
        })
    }

    /// Whether any inherited frontier state could still complete inside the
    /// subtree of `child` (reachability prune; see the module docs).
    fn any_state_viable(&self, parent: &Frame, child: VertexId, query: &CompiledQuery) -> bool {
        self.states[parent.states_start as usize..parent.states_end as usize]
            .iter()
            .any(|s| {
                self.frozen
                    .reaches_all(child, query.req_mask(s.idx as usize))
            })
    }

    /// Opens a frame for `fp`, processing the inherited frontier states
    /// exactly as the materialized matcher processes one EPT node.
    /// `children_start..children_end` is the frame's child cursor range —
    /// frozen out-slots in streaming mode, memo indices during replay.
    fn open_frame(
        &mut self,
        fp: Footprint,
        incoming_start: u32,
        incoming_end: u32,
        query: &CompiledQuery,
        children_start: u32,
        children_end: u32,
    ) {
        self.opens += 1;
        let label = self.frozen.label(fp.vertex);
        let states_start = self.states.len() as u32;
        let cands_mark = self.cands.len() as u32;
        let cell_refs_mark = self.cell_refs.len() as u32;
        let anchors_start = self.anchors.len() as u32;
        let spine_len = query.spine.len() as u32;

        self.produced.clear();
        self.produced_cells.clear();
        self.node_cells.clear();
        let mut contrib_here: Option<(u32, u32)> = None; // range in contrib_cands

        for si in incoming_start as usize..incoming_end as usize {
            let state = self.states[si];
            let i = state.idx as usize;
            let step = &query.spine[i];
            if step.test.matches(label) {
                if let Some((known, cells_start, cells_len)) =
                    self.step_factor(step, fp.path_hash, query)
                {
                    if i as u32 + 1 == spine_len {
                        // Result reached: defer `card × max(candidates)`.
                        let start = self.contrib_cands.len() as u32;
                        for ci in state.cand_start..state.cand_start + state.cand_len {
                            let cand = self.cands[ci as usize];
                            let cs = self.contrib_cells.len() as u32;
                            for r in cand.cells_start..cand.cells_start + cand.cells_len {
                                let cell = self.cell_refs[r as usize];
                                self.contrib_cells.push(cell);
                            }
                            for r in cells_start..cells_start + cells_len {
                                let cell = self.produced_cells[r as usize];
                                self.contrib_cells.push(cell);
                            }
                            self.contrib_cands.push(Candidate {
                                value: cand.value * known,
                                cells_start: cs,
                                cells_len: cand.cells_len + cells_len,
                            });
                        }
                        let end = self.contrib_cands.len() as u32;
                        contrib_here = match contrib_here {
                            None => Some((start, end)),
                            Some((s, _)) => Some((s, end)),
                        };
                    } else if !query.dead[i + 1] {
                        for ci in state.cand_start..state.cand_start + state.cand_len {
                            let cand = self.cands[ci as usize];
                            let pc = self.produced_cells.len() as u32;
                            for r in cand.cells_start..cand.cells_start + cand.cells_len {
                                let cell = self.cell_refs[r as usize];
                                self.produced_cells.push(cell);
                            }
                            for r in cells_start..cells_start + cells_len {
                                let cell = self.produced_cells[r as usize];
                                self.produced_cells.push(cell);
                            }
                            self.produced.push((
                                i as u32 + 1,
                                cand.value * known,
                                pc,
                                cand.cells_len + cells_len,
                            ));
                        }
                    }
                }
            }
            if step.axis == Axis::Descendant {
                // Descendant states survive downwards unchanged.
                for ci in state.cand_start..state.cand_start + state.cand_len {
                    let cand = self.cands[ci as usize];
                    let pc = self.produced_cells.len() as u32;
                    for r in cand.cells_start..cand.cells_start + cand.cells_len {
                        let cell = self.cell_refs[r as usize];
                        self.produced_cells.push(cell);
                    }
                    self.produced
                        .push((state.idx, cand.value, pc, cand.cells_len));
                }
            }
        }

        if let Some((start, end)) = contrib_here {
            self.contribs.push(Contrib {
                card: fp.card,
                cand_start: start,
                cand_len: end - start,
            });
        }

        // Group produced entries into the frame's child-state list, merging
        // pure (cell-free) candidates per spine index by max — exactly the
        // materialized matcher's `push_state`.
        let mut p = 0;
        while p < self.produced.len() {
            let idx = self.produced[p].0;
            if self.states[states_start as usize..]
                .iter()
                .any(|s| s.idx == idx)
            {
                p += 1;
                continue;
            }
            let cand_start = self.cands.len() as u32;
            let mut pure: Option<f64> = None;
            for q in p..self.produced.len() {
                let (qidx, value, pc, plen) = self.produced[q];
                if qidx != idx {
                    continue;
                }
                if plen == 0 {
                    pure = Some(pure.map_or(value, |v: f64| v.max(value)));
                } else {
                    let cs = self.cell_refs.len() as u32;
                    for r in pc..pc + plen {
                        let cell = self.produced_cells[r as usize];
                        self.cell_refs.push(cell);
                    }
                    self.cands.push(Candidate {
                        value,
                        cells_start: cs,
                        cells_len: plen,
                    });
                }
            }
            if let Some(v) = pure {
                self.cands.push(Candidate {
                    value: v,
                    cells_start: 0,
                    cells_len: 0,
                });
            }
            self.states.push(State {
                idx,
                cand_start,
                cand_len: self.cands.len() as u32 - cand_start,
            });
            p += 1;
        }

        let own_cells = self.anchors.len() as u32 > anchors_start;
        let parent_active = self.frames.last().is_some_and(|f| f.tables_active);
        let tables_active = parent_active || own_cells;
        let pred_start = if tables_active {
            let start = self.tables.len() as u32;
            self.tables
                .resize(self.tables.len() + 2 * query.preds.len(), 0.0);
            start
        } else {
            NO_TABLES
        };

        self.frames.push(Frame {
            vertex: fp.vertex,
            fsel: fp.fsel,
            bsel: fp.bsel,
            path_hash: fp.path_hash,
            next_slot: children_start,
            end_slot: children_end,
            states_start,
            states_end: self.states.len() as u32,
            cands_mark,
            cell_refs_mark,
            pred_start,
            anchors_start,
            tables_active,
        });
    }

    /// The combined predicate factor of `step` anchored at the node being
    /// opened: `Some((known, produced_cells range))`, or `None` when the
    /// factor is known to be zero (the state must not advance). Mirrors
    /// `Matcher::predicate_factor` with embeddings deferred to cells.
    fn step_factor(
        &mut self,
        step: &SpineStep,
        anchor_hash: u64,
        query: &CompiledQuery,
    ) -> Option<(f64, u32, u32)> {
        if step.pred_roots.is_empty() {
            return Some((1.0, 0, 0));
        }

        // Whole-step correlated HET entry: used verbatim when present.
        if let (Some(het), Some(simple), Some(sibling)) = (self.het, &step.all_simple, step.sibling)
        {
            if let Some(factor) =
                het.lookup_correlated(correlated_key(anchor_hash, simple, sibling))
            {
                if factor > 0.0 {
                    return Some((factor, 0, 0));
                }
                return None;
            }
        }

        let mut known = 1.0f64;
        let cells_start = self.produced_cells.len() as u32;
        let mut cells_len = 0u32;
        for &pr in &step.pred_roots {
            // Per-predicate correlated entry.
            let single = match (
                self.het,
                query.preds[pr as usize].single_label,
                step.sibling,
            ) {
                (Some(het), Some(label), Some(sibling)) => {
                    het.lookup_correlated(correlated_key(anchor_hash, &[label], sibling))
                }
                _ => None,
            };
            match single {
                Some(bsel) => {
                    if bsel <= 0.0 {
                        self.produced_cells.truncate(cells_start as usize);
                        return None;
                    }
                    known *= bsel.min(1.0);
                }
                None => {
                    let cell = self.cell_for(pr);
                    self.produced_cells.push(cell);
                    cells_len += 1;
                }
            }
        }
        Some((known, cells_start, cells_len))
    }

    /// Returns the cell for `pred` anchored at the node currently being
    /// opened, creating (and registering) it on first use.
    fn cell_for(&mut self, pred: u32) -> u32 {
        if let Some(&(_, cell)) = self.node_cells.iter().find(|&&(p, _)| p == pred) {
            return cell;
        }
        let cell = self.cells.len() as u32;
        self.cells.push(f64::NAN);
        self.anchors.push(Anchor { pred, cell });
        self.node_cells.push((pred, cell));
        cell
    }

    /// Closes the top frame: resolves its anchored cells, folds its
    /// embedding tables into its parent, and truncates the scratch stacks.
    fn close_top(&mut self, query: &CompiledQuery) {
        let frame = self.frames.pop().expect("close requires an open frame");
        // Replay never touches the recursion tracker (levels are baked into
        // the memo), so there is nothing to pop in memoized mode.
        if self.memo.is_none() {
            self.rec_pop(frame.vertex);
        }

        if frame.tables_active {
            let p_count = query.preds.len();
            let base = frame.pred_start as usize;
            let label = self.frozen.label(frame.vertex);

            // Resolve cells anchored here: the best embedding of the
            // predicate root under this frame (child axis -> gc,
            // descendant axis -> gd).
            for a in frame.anchors_start as usize..self.anchors.len() {
                let Anchor { pred, cell } = self.anchors[a];
                let value = match query.preds[pred as usize].axis {
                    Axis::Child => self.tables[base + pred as usize],
                    Axis::Descendant => self.tables[base + p_count + pred as usize],
                };
                self.cells[cell as usize] = value;
            }

            // Fold into the parent: parent.gc/gd absorb f(q, this) and the
            // bsel-weighted descendant table.
            if let Some(parent) = self.frames.last() {
                if parent.tables_active {
                    let p_base = parent.pred_start as usize;
                    for q in 0..p_count {
                        let f_q = self.exact_factor(query, q, base, p_count, frame.bsel);
                        if query.preds[q].test.matches(label) {
                            let gc = &mut self.tables[p_base + q];
                            if f_q > *gc {
                                *gc = f_q;
                            }
                            let gd = &mut self.tables[p_base + p_count + q];
                            if f_q > *gd {
                                *gd = f_q;
                            }
                        }
                        let through = frame.bsel * self.tables[base + p_count + q];
                        let gd = &mut self.tables[p_base + p_count + q];
                        if through > *gd {
                            *gd = through;
                        }
                    }
                }
            }
            self.tables.truncate(base);
        }

        self.anchors.truncate(frame.anchors_start as usize);
        self.states.truncate(frame.states_start as usize);
        self.cands.truncate(frame.cands_mark as usize);
        self.cell_refs.truncate(frame.cell_refs_mark as usize);
    }

    /// `f(q, node)` of the bottom-up embedding recurrence: the node's bsel
    /// times the clamped best embeddings of `q`'s children below it
    /// (mirrors `Matcher::factor_at`).
    fn exact_factor(
        &self,
        query: &CompiledQuery,
        q: usize,
        base: usize,
        p_count: usize,
        bsel: f64,
    ) -> f64 {
        let mut factor = bsel;
        for &child in &query.preds[q].children {
            let sub = match query.preds[child as usize].axis {
                Axis::Child => self.tables[base + child as usize],
                Axis::Descendant => self.tables[base + p_count + child as usize],
            };
            if sub <= 0.0 {
                return 0.0;
            }
            factor *= sub.min(1.0);
        }
        factor
    }

    /// Evaluates the deferred contributions once all cells are resolved.
    fn sum_contributions(&self) -> f64 {
        let mut total = 0.0;
        for contrib in &self.contribs {
            let mut best = 0.0f64;
            for ci in contrib.cand_start..contrib.cand_start + contrib.cand_len {
                let cand = self.contrib_cands[ci as usize];
                let mut value = cand.value;
                for r in cand.cells_start..cand.cells_start + cand.cells_len {
                    let cell = self.contrib_cells[r as usize] as usize;
                    let resolved = self.cells[cell];
                    debug_assert!(!resolved.is_nan(), "cell read before resolution");
                    if resolved <= 0.0 {
                        value = 0.0;
                        break;
                    }
                    value *= resolved.min(1.0);
                }
                best = best.max(value);
            }
            total += contrib.card * best;
        }
        total
    }

    // ------------------------------------------------------------------
    // Bound mode
    // ------------------------------------------------------------------

    /// Computes a guaranteed upper bound on the number of document nodes
    /// matching `query`, by worst-case frontier propagation over the
    /// synopsis graph.
    ///
    /// The frontier maps each synopsis vertex `v` (one per label) to
    /// `B(v)`, an upper bound on the number of document nodes at `v`
    /// matched by the spine prefix processed so far. Soundness rests on
    /// per-step arguments:
    ///
    /// * **Exact label totals.** `total[v]` is the exact number of
    ///   document nodes with `v`'s label: every non-root node is counted
    ///   once as a child on exactly one `(edge, recursion level)` pair,
    ///   plus one for the root node itself. No `B(v)` may exceed it.
    /// * **Child steps.** A parent node on edge `u -> v` at recursion
    ///   level `r` has at most `c_r - p_r + 1` children at `v` (all
    ///   same-label children of one parent share one level, and each of
    ///   the `p_r` recorded parents has at least one child), so `maxdeg`
    ///   — the maximum of that expression over levels — bounds any single
    ///   parent's fan-out. `B(u) * maxdeg` then bounds the matched
    ///   children through the edge, as does the edge's total child count;
    ///   the minimum of the two is taken. Summing over frontier vertices
    ///   is sound because distinct vertices carry distinct labels, hence
    ///   disjoint parent-node sets, and every child has one parent.
    /// * **Descendant steps.** Matched nodes are strict descendants of
    ///   some step `i-1` node, so their labels lie in the union of the
    ///   reachable-label rows of the frontier's *children* (a self-loop
    ///   covers same-label recursion); every vertex whose label is in
    ///   that union gets the always-sound `B(v) = total[v]`.
    /// * **Predicates only filter**, so ignoring them preserves the
    ///   bound, and the point path's cardinality-threshold pruning
    ///   (`card_threshold` and its `max_ept_nodes` escalation) is never
    ///   applied (pruning drops mass).
    /// * **HET clamps, never inflates.** A frontier entry tagged
    ///   [`PathTag::Known`] over-counts only nodes sharing one rooted
    ///   label path; the HET's simple-path cardinality for that path is an
    ///   exact count, so `min`-ing with it cannot cut below the truth.
    ///
    /// Arithmetic saturates at `u64::MAX`; an empty kernel bounds 0.
    fn compute_bound(&self, query: &CompiledQuery) -> u64 {
        let frozen = self.frozen;
        let Some(root) = frozen.root() else {
            return 0;
        };
        let Some(step0) = query.spine.first() else {
            return 0;
        };
        let n = frozen.vertex_count();

        // Exact per-label document node totals.
        let mut total = vec![0u64; n];
        total[root.index()] = 1;
        for ui in 0..n {
            for slot in frozen.out_slots(VertexId(ui as u32)) {
                let vi = frozen.slot_target(slot).index();
                for level in 0..frozen.slot_levels(slot) {
                    total[vi] = total[vi].saturating_add(frozen.slot_child_count(slot, level));
                }
            }
        }

        // Per-slot aggregates: total children across levels, and the
        // worst-case single-parent fan-out.
        let slot_count = frozen.slot_count();
        let mut cnt_total = vec![0u64; slot_count];
        let mut maxdeg = vec![0u64; slot_count];
        for slot in 0..slot_count {
            for level in 0..frozen.slot_levels(slot) {
                let c = frozen.slot_child_count(slot, level);
                if c == 0 {
                    continue;
                }
                cnt_total[slot] = cnt_total[slot].saturating_add(c);
                let p = frozen.slot_parent_count(slot, level);
                let deg = c.saturating_sub(p).saturating_add(1);
                maxdeg[slot] = maxdeg[slot].max(deg);
            }
        }

        let het_clamp = |entry: (u64, PathTag)| -> (u64, PathTag) {
            let (b, tag) = entry;
            if let (Some(het), PathTag::Known(h)) = (self.het, tag) {
                if let Some((card, _)) = het.lookup_simple(h) {
                    return (b.min(card), tag);
                }
            }
            (b, tag)
        };

        // Seed the step-0 frontier. A leading child axis matches only the
        // root node; a leading descendant axis is at-or-below the root,
        // i.e. every node in the document.
        let mut frontier: Vec<Option<(u64, PathTag)>> = vec![None; n];
        match step0.axis {
            Axis::Child => {
                if step0.test.matches(frozen.label(root)) {
                    let h = inc_hash(PATH_HASH_SEED, frozen.label(root));
                    frontier[root.index()] = Some(het_clamp((1, PathTag::Known(h))));
                }
            }
            Axis::Descendant => {
                for (vi, slot) in frontier.iter_mut().enumerate() {
                    let v = VertexId(vi as u32);
                    if step0.test.matches(frozen.label(v)) && total[vi] > 0 {
                        *slot = Some((total[vi], PathTag::Ambiguous));
                    }
                }
            }
        }

        for step in &query.spine[1..] {
            let mut next: Vec<Option<(u64, PathTag)>> = vec![None; n];
            match step.axis {
                Axis::Child => {
                    for (ui, entry) in frontier.iter().enumerate() {
                        let Some((b_u, tag_u)) = *entry else {
                            continue;
                        };
                        if b_u == 0 {
                            continue;
                        }
                        for slot in frozen.out_slots(VertexId(ui as u32)) {
                            let v = frozen.slot_target(slot);
                            let label = frozen.label(v);
                            if !step.test.matches(label) {
                                continue;
                            }
                            let contribution =
                                cnt_total[slot].min(b_u.saturating_mul(maxdeg[slot]));
                            if contribution == 0 {
                                continue;
                            }
                            let tag_v = match tag_u {
                                PathTag::Known(h) => PathTag::Known(inc_hash(h, label)),
                                PathTag::Ambiguous => PathTag::Ambiguous,
                            };
                            let vi = v.index();
                            next[vi] = Some(match next[vi] {
                                None => (contribution, tag_v),
                                Some((b, t)) => (
                                    b.saturating_add(contribution),
                                    if t == tag_v { t } else { PathTag::Ambiguous },
                                ),
                            });
                        }
                    }
                    for (vi, entry) in next.iter_mut().enumerate() {
                        if let Some((b, t)) = *entry {
                            *entry = Some(het_clamp((b.min(total[vi]), t)));
                        }
                    }
                }
                Axis::Descendant => {
                    let words = frozen.label_words();
                    let mut mask = vec![0u64; words];
                    for (ui, entry) in frontier.iter().enumerate() {
                        let Some((b_u, _)) = *entry else {
                            continue;
                        };
                        if b_u == 0 {
                            continue;
                        }
                        for slot in frozen.out_slots(VertexId(ui as u32)) {
                            let child = frozen.slot_target(slot);
                            for (m, r) in mask.iter_mut().zip(frozen.reach_row(child)) {
                                *m |= r;
                            }
                        }
                    }
                    for (vi, entry) in next.iter_mut().enumerate() {
                        let v = VertexId(vi as u32);
                        let label = frozen.label(v);
                        if !step.test.matches(label) || total[vi] == 0 {
                            continue;
                        }
                        let word = label.index() / 64;
                        if word < words && mask[word] & (1u64 << (label.index() % 64)) != 0 {
                            *entry = Some((total[vi], PathTag::Ambiguous));
                        }
                    }
                }
            }
            frontier = next;
        }

        frontier
            .iter()
            .flatten()
            .fold(0u64, |acc, &(b, _)| acc.saturating_add(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::ept::ExpandedPathTree;
    use crate::estimate::matcher::Matcher;
    use crate::het::hash::path_hash;
    use crate::kernel::{Kernel, KernelBuilder};
    use xmlkit::samples::{figure2_document, figure4_document};
    use xpathkit::parse;

    fn assert_matches_materialized(
        kernel: &Kernel,
        het: Option<&HyperEdgeTable>,
        queries: &[&str],
    ) {
        assert_matches_materialized_with_config(kernel, het, &XseedConfig::default(), queries);
    }

    fn assert_matches_materialized_with_config(
        kernel: &Kernel,
        het: Option<&HyperEdgeTable>,
        config: &XseedConfig,
        queries: &[&str],
    ) {
        let ept = ExpandedPathTree::generate(kernel, config, het);
        let matcher = Matcher::new(kernel, &ept, het);
        let frozen = FrozenKernel::freeze(kernel);
        let mut streaming = StreamingMatcher::new(&frozen, kernel.names(), config, het);
        for q in queries {
            let expr = parse(q).unwrap();
            let expected = matcher.estimate(&expr);
            let got = streaming.estimate(&expr);
            assert!(
                (expected - got).abs() < 1e-9,
                "{q}: streaming {got} != materialized {expected}"
            );
        }
    }

    const FIGURE2_QUERIES: &[&str] = &[
        "/a",
        "/a/c",
        "/a/c/s",
        "/a/c/s/s",
        "/a/c/s/s/t",
        "/a/c/s/p",
        "/a/t",
        "/a/u",
        "/c",
        "/zzz",
        "/a/zzz",
        "//c",
        "//s",
        "//p",
        "//*",
        "/a/*",
        "//s//s//p",
        "//s//s//s//s",
        "/a/c/s[t]",
        "/a/c/s[t]/p",
        "/a/c/s[t][s]/p",
        "/a/c[s[s]]",
        "/a/c[//t]",
        "/a/c[zzz]",
        "//s[p]/t",
        "//*[s]/p",
        "/a//s[t//p]/p",
        "//c[s/s]//t",
    ];

    #[test]
    fn streaming_matches_materialized_on_figure2() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        assert_matches_materialized(&kernel, None, FIGURE2_QUERIES);
    }

    #[test]
    fn streaming_matches_materialized_on_figure4() {
        let kernel = KernelBuilder::from_document(&figure4_document());
        assert_matches_materialized(
            &kernel,
            None,
            &[
                "/a/b/d/e",
                "/a/c/d/f",
                "/a/b/d[f]/e",
                "/a/c/d[f]/e",
                "//d[e][f]",
                "//d//*",
                "/a/*/d[e]/f",
            ],
        );
    }

    #[test]
    fn streaming_matches_materialized_with_het() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let names = kernel.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let mut het = HyperEdgeTable::new();
        // Simple-path override (a fake actual for /a/c) plus a correlated
        // entry for s[t]/p.
        het.insert_simple(path_hash(&[l("a"), l("c")]), 7, 0.9, 100.0);
        let anchor = path_hash(&[l("a"), l("c"), l("s")]);
        het.insert_correlated(correlated_key(anchor, &[l("t")], l("p")), 9, 1.0, 50.0);
        het.rebuild_residency();
        assert_matches_materialized(&kernel, Some(&het), FIGURE2_QUERIES);
    }

    #[test]
    fn known_figure2_estimates() {
        // Spot-check absolute values from the paper against the streaming
        // path (not just agreement with the oracle).
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        for (q, expected) in [
            ("/a/c/s", 5.0),
            ("/a/c/s/s/t", 1.0),
            ("//p", 17.0),
            ("//*", 36.0),
            ("/a/c/s[t]/p", 3.6),
            ("/a/c/s[t][s]/p", 1.44),
            ("/a/c[s[s]]", 0.8),
        ] {
            let est = m.estimate(&parse(q).unwrap());
            assert!((est - expected).abs() < 1e-9, "{q}: {est} != {expected}");
        }
    }

    #[test]
    fn pruning_reduces_visited_nodes_without_changing_estimates() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        // /a/c/s/p: the t and u subtrees cannot contain the result labels.
        let (est, visited) = m.estimate_with_stats(&parse("/a/c/s/p").unwrap());
        assert!((est - 9.0).abs() < 1e-9);
        assert!(visited < 14, "visited {visited} of 14 EPT nodes");
        assert!(visited > 0);
        // A wildcard query visits everything the materialized EPT holds.
        let (_, all) = m.estimate_with_stats(&parse("//*").unwrap());
        assert_eq!(all, 14);
    }

    #[test]
    fn empty_kernel_estimates_zero() {
        let kernel = Kernel::new();
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        assert_eq!(m.estimate(&parse("/a").unwrap()), 0.0);
    }

    #[test]
    fn matcher_is_reusable_across_queries() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        // Interleave predicate-heavy and simple queries to shake the
        // scratch reuse.
        for _ in 0..3 {
            assert!((m.estimate(&parse("/a/c/s[t][s]/p").unwrap()) - 1.44).abs() < 1e-9);
            assert!((m.estimate(&parse("//p").unwrap()) - 17.0).abs() < 1e-9);
            assert!((m.estimate(&parse("/a/c").unwrap()) - 2.0).abs() < 1e-9);
        }
    }

    fn assert_memo_matches_streaming(
        kernel: &Kernel,
        het: Option<&HyperEdgeTable>,
        config: &XseedConfig,
        queries: &[&str],
    ) {
        let frozen = FrozenKernel::freeze(kernel);
        let mut cold = StreamingMatcher::new(&frozen, kernel.names(), config, het);
        let mut memoized = StreamingMatcher::new(&frozen, kernel.names(), config, het);
        memoized.enable_batch_memo();
        for q in queries {
            let expr = parse(q).unwrap();
            let expected = cold.estimate(&expr);
            let got = memoized.estimate(&expr);
            assert!(
                (expected - got).abs() < 1e-9,
                "{q}: memoized {got} != streaming {expected}"
            );
        }
    }

    #[test]
    fn memo_replay_matches_streaming_on_figure2() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        assert_memo_matches_streaming(&kernel, None, &XseedConfig::default(), FIGURE2_QUERIES);
    }

    #[test]
    fn memo_replay_matches_streaming_on_figure4() {
        let kernel = KernelBuilder::from_document(&figure4_document());
        assert_memo_matches_streaming(
            &kernel,
            None,
            &XseedConfig::default(),
            &[
                "/a/b/d/e",
                "/a/c/d/f",
                "/a/b/d[f]/e",
                "/a/c/d[f]/e",
                "//d[e][f]",
                "//d//*",
                "/a/*/d[e]/f",
            ],
        );
    }

    #[test]
    fn memo_replay_matches_streaming_with_het() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let names = kernel.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let mut het = HyperEdgeTable::new();
        het.insert_simple(path_hash(&[l("a"), l("c")]), 7, 0.9, 100.0);
        let anchor = path_hash(&[l("a"), l("c"), l("s")]);
        het.insert_correlated(correlated_key(anchor, &[l("t")], l("p")), 9, 1.0, 50.0);
        het.rebuild_residency();
        assert_memo_matches_streaming(
            &kernel,
            Some(&het),
            &XseedConfig::default(),
            FIGURE2_QUERIES,
        );
    }

    #[test]
    fn memo_replay_matches_streaming_with_card_threshold() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        assert_memo_matches_streaming(
            &kernel,
            None,
            &XseedConfig::default().with_card_threshold(2.0),
            FIGURE2_QUERIES,
        );
    }

    #[test]
    fn memo_size_equals_materialized_ept() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let memo = FrontierMemo::build(&frozen, &config, None);
        let ept = ExpandedPathTree::generate(&kernel, &config, None);
        assert_eq!(memo.len(), ept.len());
        assert!(!memo.is_empty());
    }

    #[test]
    fn memo_respects_max_ept_nodes() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig {
            max_ept_nodes: 3,
            ..XseedConfig::default()
        };
        let memo = FrontierMemo::build(&frozen, &config, None);
        assert!(memo.len() <= 3);
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        m.set_frontier_memo(std::sync::Arc::new(memo));
        let (_, visited) = m.estimate_with_stats(&parse("//*").unwrap());
        assert!(visited <= 3);
    }

    /// Asserts the three estimation paths expand one shared frontier under
    /// a tiny `max_ept_nodes`: the materialized EPT fits the cap, the memo
    /// records exactly that EPT, streaming agrees with the oracle on every
    /// query, and memo replay agrees with the cold pass bit-for-bit.
    fn assert_one_frontier_under_cap(
        kernel: &Kernel,
        het: Option<&HyperEdgeTable>,
        cap: usize,
        queries: &[&str],
    ) {
        let config = XseedConfig {
            max_ept_nodes: cap,
            ..XseedConfig::default()
        };
        let ept = ExpandedPathTree::generate(kernel, &config, het);
        assert!(ept.len() <= cap, "cap {cap}: expansion must fit");
        let frozen = FrozenKernel::freeze(kernel);
        let memo = FrontierMemo::build(&frozen, &config, het);
        assert_eq!(
            memo.len(),
            ept.len(),
            "cap {cap}: memo and oracle frontiers differ"
        );
        assert_matches_materialized_with_config(kernel, het, &config, queries);
        let mut cold = StreamingMatcher::new(&frozen, kernel.names(), &config, het);
        let mut memoized = StreamingMatcher::new(&frozen, kernel.names(), &config, het);
        memoized.set_frontier_memo(Arc::new(memo));
        for q in queries {
            let expr = parse(q).unwrap();
            assert_eq!(
                memoized.estimate(&expr).to_bits(),
                cold.estimate(&expr).to_bits(),
                "cap {cap} {q}: memo replay diverged from cold streaming"
            );
        }
    }

    #[test]
    fn tiny_caps_share_one_frontier_across_all_paths() {
        // The old hard cap stopped each consumer after `max_ept_nodes`
        // opens of *its own* walk, so reachability pruning let the cold
        // streaming pass truncate at a different frontier from the
        // materialized oracle and the memo — the PR 1 divergence caveat.
        // Threshold escalation removes the mid-walk stop entirely; these
        // are the old failing configs.
        let kernel2 = KernelBuilder::from_document(&figure2_document());
        let kernel4 = KernelBuilder::from_document(&figure4_document());
        let names = kernel2.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let mut het = HyperEdgeTable::new();
        het.insert_simple(path_hash(&[l("a"), l("c")]), 7, 0.9, 100.0);
        het.rebuild_residency();
        let figure4_queries = &[
            "/a/b/d/e",
            "/a/c/d/f",
            "/a/b/d[f]/e",
            "//d[e][f]",
            "//d//*",
            "/a/*/d[e]/f",
        ];
        for cap in [1usize, 2, 3, 5, 8] {
            assert_one_frontier_under_cap(&kernel2, None, cap, FIGURE2_QUERIES);
            assert_one_frontier_under_cap(&kernel2, Some(&het), cap, FIGURE2_QUERIES);
            assert_one_frontier_under_cap(&kernel4, None, cap, figure4_queries);
        }
    }

    #[test]
    fn simple_path_estimates_match_per_query_streaming() {
        for (doc, config) in [
            (figure2_document(), XseedConfig::default()),
            (
                figure2_document(),
                XseedConfig::default().with_card_threshold(2.0),
            ),
            (figure4_document(), XseedConfig::default()),
        ] {
            let kernel = KernelBuilder::from_document(&doc);
            let frozen = FrozenKernel::freeze(&kernel);
            let memo = FrontierMemo::build(&frozen, &config, None);
            let totals = memo.simple_path_estimates();
            let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
            let path_tree = nokstore::PathTree::from_document(&doc);
            for id in path_tree.ids() {
                let labels = path_tree.label_path(id);
                let names: Vec<String> = labels
                    .iter()
                    .map(|&l| kernel.names().name_or_panic(l).to_string())
                    .collect();
                let expr = xpathkit::ast::PathExpr::simple(names);
                let expected = m.estimate(&expr);
                let got = totals.get(&path_hash(&labels)).copied().unwrap_or(0.0);
                assert_eq!(
                    got.to_bits(),
                    expected.to_bits(),
                    "{expr}: aggregated {got} != streamed {expected}"
                );
            }
        }
    }

    #[test]
    fn memo_on_empty_kernel() {
        let kernel = Kernel::new();
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let memo = FrontierMemo::build(&frozen, &config, None);
        assert!(memo.is_empty());
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        m.enable_batch_memo();
        assert_eq!(m.estimate(&parse("/a").unwrap()), 0.0);
    }

    #[test]
    fn estimate_plan_matches_estimate_with_and_without_cache() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let cache = Arc::new(CompiledPlanCache::new(2, 64));
        let mut cached = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        cached.set_compiled_cache(cache.clone());
        let mut uncached = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        for q in FIGURE2_QUERIES {
            let plan = QueryPlan::parse(q).unwrap();
            let expected = uncached.estimate(plan.expr());
            // Two cached runs: the second must hit the compiled cache and
            // both must be bit-identical to the plain expression path.
            assert_eq!(cached.estimate_plan(&plan).to_bits(), expected.to_bits());
            assert_eq!(cached.estimate_plan(&plan).to_bits(), expected.to_bits());
            assert_eq!(
                uncached.estimate_plan(&plan).to_bits(),
                expected.to_bits(),
                "{q}: cache-less estimate_plan must equal estimate"
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.misses as usize, FIGURE2_QUERIES.len());
        assert_eq!(stats.hits as usize, FIGURE2_QUERIES.len());
        assert_eq!(stats.entries, FIGURE2_QUERIES.len().min(64));
    }

    #[test]
    fn compiled_cache_keys_on_plan_identity_not_text() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let cache = Arc::new(CompiledPlanCache::new(1, 8));
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        m.set_compiled_cache(cache.clone());
        let a = QueryPlan::parse("/a/c/s").unwrap();
        let b = QueryPlan::parse("/a/c/s").unwrap();
        assert_eq!(m.estimate_plan(&a), m.estimate_plan(&b));
        // Distinct parses are distinct identities: two compilations.
        assert_eq!(cache.stats().misses, 2);
        // A clone shares the identity: pure hit.
        let _ = m.estimate_plan(&a.clone());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn compiled_cache_evicts_least_recently_used() {
        let cache = CompiledPlanCache::new(1, 2);
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        let m = &m;
        let compile = |text: &str| {
            let expr = parse(text).unwrap();
            move || m.compile(&expr)
        };
        cache.get_or_compile(1, compile("/a"));
        cache.get_or_compile(2, compile("/a/c"));
        cache.get_or_compile(1, compile("/a")); // refresh 1
        cache.get_or_compile(3, compile("/a/c/s")); // evicts 2
        assert_eq!(cache.stats().entries, 2);
        let before = cache.stats().misses;
        cache.get_or_compile(2, compile("/a/c")); // recompiles, evicts 1
        assert_eq!(cache.stats().misses, before + 1);
        let hits = cache.stats().hits;
        cache.get_or_compile(3, compile("/a/c/s")); // still resident
        assert_eq!(cache.stats().hits, hits + 1);
    }

    #[test]
    fn compiled_cache_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledPlanCache>();
    }

    /// Differential soundness check: for every query, the bound must
    /// dominate both the NoK oracle's true cardinality and the point
    /// estimate.
    fn assert_bound_sound(
        doc: &xmlkit::Document,
        het: Option<&HyperEdgeTable>,
        config: &XseedConfig,
        queries: &[&str],
    ) {
        let kernel = KernelBuilder::from_document(doc);
        let frozen = FrozenKernel::freeze(&kernel);
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), config, het);
        let storage = nokstore::NokStorage::from_document(doc);
        let eval = nokstore::Evaluator::new(&storage);
        for q in queries {
            let expr = parse(q).unwrap();
            let be = m.estimate_bound(&expr);
            let actual = eval.count(&expr) as f64;
            assert!(
                be.bound + 1e-9 >= actual,
                "{q}: bound {} < true cardinality {actual}",
                be.bound
            );
            assert!(
                be.bound + 1e-9 >= be.estimate,
                "{q}: bound {} < point estimate {}",
                be.bound,
                be.estimate
            );
        }
    }

    const FIGURE4_QUERIES: &[&str] = &[
        "/a/b/d/e",
        "/a/c/d/f",
        "/a/b/d[f]/e",
        "/a/c/d[f]/e",
        "//d[e][f]",
        "//d//*",
        "/a/*/d[e]/f",
    ];

    #[test]
    fn bound_is_sound_on_figure2() {
        assert_bound_sound(
            &figure2_document(),
            None,
            &XseedConfig::default(),
            FIGURE2_QUERIES,
        );
    }

    #[test]
    fn bound_is_sound_on_figure4() {
        assert_bound_sound(
            &figure4_document(),
            None,
            &XseedConfig::default(),
            FIGURE4_QUERIES,
        );
    }

    #[test]
    fn bound_is_sound_under_truncation() {
        // The point path prunes (card_threshold drops low-mass edges, and
        // a tiny max_ept_nodes escalates that threshold further); the
        // bound must ignore both.
        for config in [
            XseedConfig::default().with_card_threshold(2.0),
            XseedConfig {
                max_ept_nodes: 3,
                ..XseedConfig::default()
            },
        ] {
            assert_bound_sound(&figure2_document(), None, &config, FIGURE2_QUERIES);
            assert_bound_sound(&figure4_document(), None, &config, FIGURE4_QUERIES);
        }
    }

    #[test]
    fn bound_is_sound_with_true_het_entries() {
        // HET entries clamp with *true* cardinalities (as the feedback
        // loop inserts them); the clamp must never cut below the truth.
        let doc = figure2_document();
        let kernel = KernelBuilder::from_document(&doc);
        let names = kernel.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let storage = nokstore::NokStorage::from_document(&doc);
        let eval = nokstore::Evaluator::new(&storage);
        let mut het = HyperEdgeTable::new();
        for (path, query) in [
            (vec![l("a"), l("c")], "/a/c"),
            (vec![l("a"), l("c"), l("s")], "/a/c/s"),
            (vec![l("a"), l("c"), l("s"), l("s")], "/a/c/s/s"),
        ] {
            let actual = eval.count(&parse(query).unwrap());
            het.insert_simple(path_hash(&path), actual, 0.9, 100.0);
        }
        het.rebuild_residency();
        assert_bound_sound(&doc, Some(&het), &XseedConfig::default(), FIGURE2_QUERIES);
    }

    #[test]
    fn het_entries_tighten_the_bound() {
        let doc = figure2_document();
        let kernel = KernelBuilder::from_document(&doc);
        let names = kernel.names();
        let l = |n: &str| names.lookup(n).unwrap();
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let storage = nokstore::NokStorage::from_document(&doc);
        let eval = nokstore::Evaluator::new(&storage);
        let expr = parse("/a/c/s").unwrap();
        let actual = eval.count(&expr);
        let loose = StreamingMatcher::new(&frozen, kernel.names(), &config, None)
            .estimate_bound(&expr)
            .bound;
        let mut het = HyperEdgeTable::new();
        het.insert_simple(path_hash(&[l("a"), l("c"), l("s")]), actual, 0.9, 100.0);
        het.rebuild_residency();
        let tight = StreamingMatcher::new(&frozen, kernel.names(), &config, Some(&het))
            .estimate_bound(&expr)
            .bound;
        assert!(
            tight <= loose,
            "HET clamp inflated the bound: {tight} > {loose}"
        );
        assert!(tight >= actual as f64);
    }

    #[test]
    fn bound_on_empty_kernel_and_absent_labels() {
        let kernel = Kernel::new();
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        let be = m.estimate_bound(&parse("/a").unwrap());
        assert_eq!(be.bound, 0.0);
        assert_eq!(be.estimate, 0.0);

        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        for q in ["/zzz", "/a/zzz", "//zzz", "/a//zzz/t"] {
            let be = m.estimate_bound(&parse(q).unwrap());
            assert_eq!(be.bound, 0.0, "{q}: absent label must bound 0");
        }
    }

    #[test]
    fn known_figure2_bounds() {
        // Pin exact bound values on Figure 2(a) so bound regressions are
        // visible, not just soundness violations. Truths: /a/c/s has 5
        // nodes, //p has 17, //* has 36.
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        for (q, truth) in [("/a/c/s", 5.0), ("//p", 17.0), ("//*", 36.0), ("/a", 1.0)] {
            let be = m.estimate_bound(&parse(q).unwrap());
            assert!(be.bound >= truth, "{q}: bound {} < truth {truth}", be.bound);
        }
        // //* covers every node; the per-label totals are exact, so the
        // bound is exactly the document size.
        assert_eq!(m.estimate_bound(&parse("//*").unwrap()).bound, 36.0);
        // A leading child step matches only the root.
        assert_eq!(m.estimate_bound(&parse("/a").unwrap()).bound, 1.0);
    }

    #[test]
    fn estimate_plan_bound_matches_estimate_bound() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig::default();
        let cache = Arc::new(CompiledPlanCache::new(2, 64));
        let mut cached = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        cached.set_compiled_cache(cache.clone());
        let mut plain = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        for q in FIGURE2_QUERIES {
            let plan = QueryPlan::parse(q).unwrap();
            let expected = plain.estimate_bound(plan.expr());
            for _ in 0..2 {
                let got = cached.estimate_plan_bound(&plan);
                assert_eq!(got.bound.to_bits(), expected.bound.to_bits(), "{q}");
                assert_eq!(got.estimate.to_bits(), expected.estimate.to_bits(), "{q}");
            }
        }
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn max_ept_nodes_caps_traversal() {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let frozen = FrozenKernel::freeze(&kernel);
        let config = XseedConfig {
            max_ept_nodes: 3,
            ..XseedConfig::default()
        };
        let mut m = StreamingMatcher::new(&frozen, kernel.names(), &config, None);
        let (_, visited) = m.estimate_with_stats(&parse("//*").unwrap());
        assert!(visited <= 3);
    }
}
