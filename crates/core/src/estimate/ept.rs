//! A materialized expanded path tree (EPT).
//!
//! The traveler generates the EPT lazily as an event stream; for matching
//! it is convenient (and cheap — the EPT is bounded by the cardinality
//! threshold and is typically a tiny fraction of the document, Section
//! 6.4) to materialize it into an arena of nodes. The matcher then runs
//! classic tree-pattern matching over this arena.

use crate::config::XseedConfig;
use crate::estimate::event::{DeweyId, EstimateEvent};
use crate::estimate::traveler::Traveler;
use crate::het::table::HyperEdgeTable;
use crate::kernel::{Kernel, VertexId};
use xmlkit::names::LabelId;

/// One node of the materialized EPT.
#[derive(Debug, Clone)]
pub struct EptNode {
    /// The kernel vertex this node came from.
    pub vertex: VertexId,
    /// Element label.
    pub label: LabelId,
    /// Estimated (or HET-provided) cardinality of the rooted path.
    pub card: f64,
    /// Forward selectivity of the rooted path.
    pub fsel: f64,
    /// Backward selectivity of the rooted path.
    pub bsel: f64,
    /// Recursion level of the rooted path.
    pub level: usize,
    /// Incremental hash of the rooted label path.
    pub path_hash: u64,
    /// 1-based ordinal among the parent's expanded children (the last
    /// Dewey component; see [`ExpandedPathTree::dewey`]).
    pub dewey_ordinal: u32,
    /// Parent node index, `None` for the root.
    pub parent: Option<usize>,
    /// Child node indices in generation order.
    pub children: Vec<usize>,
}

/// A materialized expanded path tree.
#[derive(Debug, Clone, Default)]
pub struct ExpandedPathTree {
    nodes: Vec<EptNode>,
}

impl ExpandedPathTree {
    /// Generates the EPT for `kernel` under `config`, optionally consulting
    /// a hyper-edge table for simple-path overrides.
    pub fn generate(kernel: &Kernel, config: &XseedConfig, het: Option<&HyperEdgeTable>) -> Self {
        let mut traveler = Traveler::new(kernel, config, het);
        let mut nodes: Vec<EptNode> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        loop {
            match traveler.next_event() {
                EstimateEvent::Open {
                    vertex,
                    label,
                    card,
                    fsel,
                    bsel,
                    level,
                    path_hash,
                    dewey_ordinal,
                } => {
                    let parent = stack.last().copied();
                    let idx = nodes.len();
                    nodes.push(EptNode {
                        vertex,
                        label,
                        card,
                        fsel,
                        bsel,
                        level,
                        path_hash,
                        dewey_ordinal,
                        parent,
                        children: Vec::new(),
                    });
                    if let Some(p) = parent {
                        nodes[p].children.push(idx);
                    }
                    stack.push(idx);
                }
                EstimateEvent::Close { .. } => {
                    stack.pop();
                }
                EstimateEvent::Eos => break,
            }
        }
        ExpandedPathTree { nodes }
    }

    /// Number of EPT nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the EPT has no nodes (empty kernel).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node index (0), if any.
    pub fn root(&self) -> Option<usize> {
        (!self.nodes.is_empty()).then_some(0)
    }

    /// Access a node by index.
    pub fn node(&self, idx: usize) -> &EptNode {
        &self.nodes[idx]
    }

    /// All node indices in generation (preorder) order.
    pub fn ids(&self) -> impl Iterator<Item = usize> {
        0..self.nodes.len()
    }

    /// Children of a node.
    pub fn children(&self, idx: usize) -> &[usize] {
        &self.nodes[idx].children
    }

    /// The full Dewey identifier of a node, reconstructed on demand from
    /// the parent chain (events only carry the last component, so the
    /// stream itself never allocates).
    pub fn dewey(&self, idx: usize) -> DeweyId {
        let mut rev = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            rev.push(self.nodes[i].dewey_ordinal);
            cur = self.nodes[i].parent;
        }
        rev.reverse();
        rev
    }

    /// Descendant indices of `idx` (excluding `idx`), preorder.
    pub fn descendants(&self, idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack: Vec<usize> = self.nodes[idx].children.clone();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend_from_slice(&self.nodes[n].children);
        }
        out
    }

    /// Sum of the estimated cardinalities of all nodes — an estimate of the
    /// total element count reachable through the synopsis.
    pub fn total_cardinality(&self) -> f64 {
        self.nodes.iter().map(|n| n.card).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use xmlkit::samples::figure2_document;

    fn figure2_ept() -> (Kernel, ExpandedPathTree) {
        let kernel = KernelBuilder::from_document(&figure2_document());
        let ept = ExpandedPathTree::generate(&kernel, &XseedConfig::default(), None);
        (kernel, ept)
    }

    #[test]
    fn figure2_shape() {
        let (kernel, ept) = figure2_ept();
        assert_eq!(ept.len(), 14);
        let root = ept.root().unwrap();
        assert_eq!(kernel.names().name_or_panic(ept.node(root).label), "a");
        // Root has three children: t, u, c.
        assert_eq!(ept.children(root).len(), 3);
        // Parent pointers are consistent with child lists.
        for idx in ept.ids() {
            for &c in ept.children(idx) {
                assert_eq!(ept.node(c).parent, Some(idx));
            }
        }
    }

    #[test]
    fn dewey_paths_reconstruct() {
        let (_, ept) = figure2_ept();
        let root = ept.root().unwrap();
        assert_eq!(ept.dewey(root), vec![1]);
        // Children of the root are 1.1, 1.2, 1.3 in generation order.
        for (i, &c) in ept.children(root).iter().enumerate() {
            assert_eq!(ept.dewey(c), vec![1, i as u32 + 1]);
        }
        // Depth of the Dewey path equals the node's depth in the tree.
        for idx in ept.ids() {
            let mut depth = 1;
            let mut cur = ept.node(idx).parent;
            while let Some(p) = cur {
                depth += 1;
                cur = ept.node(p).parent;
            }
            assert_eq!(ept.dewey(idx).len(), depth);
        }
    }

    #[test]
    fn descendants_counts() {
        let (_, ept) = figure2_ept();
        let root = ept.root().unwrap();
        assert_eq!(ept.descendants(root).len(), ept.len() - 1);
    }

    #[test]
    fn total_cardinality_close_to_element_count() {
        // The EPT's summed cardinalities should approximate the document
        // size (36 elements); for Figure 2 the estimate is exact except for
        // rounding in recursive branches.
        let (kernel, ept) = figure2_ept();
        let total = ept.total_cardinality();
        assert!(total > 0.5 * kernel.element_count() as f64);
        assert!(total < 1.5 * kernel.element_count() as f64);
    }

    #[test]
    fn empty_kernel_gives_empty_ept() {
        let kernel = Kernel::new();
        let ept = ExpandedPathTree::generate(&kernel, &XseedConfig::default(), None);
        assert!(ept.is_empty());
        assert_eq!(ept.root(), None);
        assert_eq!(ept.total_cardinality(), 0.0);
    }
}
