//! # xseed-core — the XSEED synopsis for XPath cardinality estimation
//!
//! This crate implements the primary contribution of *"XSEED: Accurate and
//! Fast Cardinality Estimation for XPath Queries"* (Zhang, Özsu,
//! Aboulnaga, Ilyas — ICDE 2006):
//!
//! * the **kernel** ([`kernel`]) — a recursion-aware, edge-labeled
//!   label-split graph built in one pass over the document (Algorithm 1),
//!   with incremental updates and a compact serialized form;
//! * the **counter stacks** ([`counter_stacks`]) — the O(1) recursion-level
//!   tracker of Figure 3;
//! * the **estimator** ([`estimate`]) — the traveler (Algorithm 2) that
//!   lazily expands the kernel into the expanded path tree, and the
//!   matcher (Algorithm 3) that matches query trees against it;
//! * the **hyper-edge table** ([`het`]) — the budget-adaptive layer of
//!   actual cardinalities and correlated backward selectivities that
//!   repairs the kernel's independence assumptions (Section 5);
//! * the **synopsis facade** ([`synopsis::XseedSynopsis`]) tying it all
//!   together behind the API a cost-based optimizer would use.
//!
//! ## Quick example
//!
//! ```
//! use xmlkit::Document;
//! use xseed_core::{XseedConfig, XseedSynopsis};
//!
//! let doc = Document::parse_str(
//!     "<library><book><title/><author/></book><book><title/></book></library>",
//! ).unwrap();
//! let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
//! let query = xpathkit::parse("/library/book[author]/title").unwrap();
//! let estimate = synopsis.estimate(&query);
//! assert!(estimate > 0.0 && estimate <= 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod counter_stacks;
pub mod estimate;
pub mod het;
pub mod kernel;
pub mod partition;
pub mod persist;
pub mod synopsis;

pub use config::XseedConfig;
pub use counter_stacks::CounterStacks;
pub use estimate::{
    BoundedEstimate, CompiledCacheStats, CompiledPlanCache, CompiledQuery, EstimateEvent,
    ExpandedPathTree, FrontierMemo, Matcher, StreamingMatcher, Traveler,
};
pub use het::{
    BselThresholdStrategy, CandidateContext, CandidateStrategy, FeedbackOutcome, HetBuildStats,
    HetBuilder, HyperEdgeTable, PerLevelBudgetStrategy, TopKErrorStrategy,
};
pub use kernel::{EdgeLabel, FrozenKernel, Kernel, KernelBuilder, PartialKernel};
pub use partition::{build_kernel_partitioned, merge_partials, PartitionPlan};
pub use persist::{decode_snapshot, encode_snapshot, PersistError, SnapshotParts};
pub use synopsis::{
    EstimateReport, FeedbackReport, SynopsisEstimator, SynopsisSnapshot, XseedSynopsis,
};
