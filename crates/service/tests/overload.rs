//! Backpressure guarantees of the estimation service, driven past its
//! queue budget:
//!
//! * sheds are **deterministic**: with the worker fenced, exactly the
//!   requests beyond the budget shed, every shed is the structured
//!   [`ServiceError::Overloaded`], and nothing is partially enqueued;
//! * the process stays **under the configured bounds**: the queued-depth
//!   high-water mark never exceeds `workers × queue_capacity`;
//! * in-flight estimates are **never corrupted**: everything admitted
//!   during an overload storm answers bit-identically to a
//!   single-threaded run over the same snapshot.

use std::sync::Arc;
use std::thread;
use xseed_core::{XseedConfig, XseedSynopsis};
use xseed_service::{Catalog, PendingEstimate, Service, ServiceConfig, ServiceError};

use datagen::{Dataset, WorkloadGenerator, WorkloadSpec};

fn xmark_catalog() -> (Arc<Catalog>, Vec<String>) {
    let doc = Dataset::XMark10.generate_scaled(0.05);
    let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
    let workload = WorkloadGenerator::new(&doc, 0xBAD10AD).generate(&WorkloadSpec::small());
    let texts: Vec<String> = workload.all().map(|q| q.to_string()).collect();
    let catalog = Arc::new(Catalog::new());
    catalog.insert("xmark", synopsis);
    (catalog, texts)
}

/// With the single worker fenced, floods of `submit` shed exactly the
/// overflow — and everything admitted still answers bit-identically to a
/// single-threaded run once the fence lifts.
#[test]
fn fenced_flood_sheds_exactly_the_overflow_and_preserves_estimates() {
    const CAPACITY: usize = 16;
    const FLOOD: usize = 100;
    let (catalog, texts) = xmark_catalog();
    let reference: Vec<u64> = {
        let snapshot = catalog.snapshot("xmark").unwrap();
        let mut matcher = snapshot.matcher();
        texts
            .iter()
            .map(|t| matcher.estimate(&xpathkit::parse(t).unwrap()).to_bits())
            .collect()
    };
    let service = Service::new(
        catalog,
        ServiceConfig::with_workers(1).with_queue_capacity(CAPACITY),
    );
    let pause = service.pause_worker(0);
    pause.wait_until_paused();

    let mut admitted: Vec<(usize, PendingEstimate)> = Vec::new();
    let mut sheds = 0usize;
    for i in 0..FLOOD {
        match service.submit("xmark", &texts[i % texts.len()]) {
            Ok(pending) => admitted.push((i % texts.len(), pending)),
            Err(ServiceError::Overloaded { queued, capacity }) => {
                assert_eq!(queued, CAPACITY, "sheds only happen at a full budget");
                assert_eq!(capacity, CAPACITY);
                sheds += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    // Deterministic: the first CAPACITY submissions were admitted, every
    // later one shed.
    assert_eq!(admitted.len(), CAPACITY);
    assert_eq!(sheds, FLOOD - CAPACITY);
    let stats = service.stats();
    assert_eq!(stats.accepted, CAPACITY as u64);
    assert_eq!(stats.shed, (FLOOD - CAPACITY) as u64);
    assert_eq!(stats.queued, CAPACITY);
    assert_eq!(stats.peak_queued, CAPACITY, "budget never exceeded");

    // Lift the fence: every admitted estimate completes, bit-identical to
    // the single-threaded reference.
    pause.resume();
    for (qi, pending) in admitted {
        assert_eq!(
            pending.wait().unwrap().to_bits(),
            reference[qi],
            "query {qi} diverged"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.total_executed(), CAPACITY as u64);
}

/// Concurrent flooders against a live (unfenced) service: sheds and
/// admissions always partition the offered load, the bound holds, and
/// admitted work is bit-exact — overload never corrupts in-flight
/// estimates.
#[test]
fn concurrent_flood_stays_bounded_and_bit_exact() {
    const CAPACITY: usize = 8;
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 200;
    let (catalog, texts) = xmark_catalog();
    let reference: Vec<u64> = {
        let snapshot = catalog.snapshot("xmark").unwrap();
        let mut matcher = snapshot.matcher();
        texts
            .iter()
            .map(|t| matcher.estimate(&xpathkit::parse(t).unwrap()).to_bits())
            .collect()
    };
    let service = Service::new(
        catalog,
        ServiceConfig::with_workers(2).with_queue_capacity(CAPACITY),
    );

    let admitted_total: usize = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = &service;
                let texts = &texts;
                let reference = &reference;
                scope.spawn(move || {
                    let mut admitted = 0usize;
                    for i in 0..PER_CLIENT {
                        let qi = (c * PER_CLIENT + i) % texts.len();
                        match service.submit("xmark", &texts[qi]) {
                            Ok(pending) => {
                                admitted += 1;
                                assert_eq!(
                                    pending.wait().unwrap().to_bits(),
                                    reference[qi],
                                    "{}",
                                    texts[qi]
                                );
                            }
                            Err(ServiceError::Overloaded { queued, capacity }) => {
                                assert_eq!(capacity, 2 * CAPACITY);
                                assert!(queued <= 2 * CAPACITY);
                            }
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                    admitted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let stats = service.stats();
    assert_eq!(stats.accepted as usize, admitted_total);
    assert_eq!(
        stats.accepted + stats.shed,
        (CLIENTS * PER_CLIENT) as u64,
        "admissions and sheds must partition the offered load"
    );
    assert!(
        stats.peak_queued <= 2 * CAPACITY,
        "peak {} exceeded the {} budget",
        stats.peak_queued,
        2 * CAPACITY
    );
    assert_eq!(stats.total_executed() as usize, admitted_total);
    assert_eq!(stats.queued, 0);
}

/// Shed batches are all-or-nothing: a fenced queue sheds an unfittable
/// batch without enqueueing any chunk, and releases every reservation it
/// took, so later (fitting) work is unaffected.
#[test]
fn shed_batches_leave_no_partial_work() {
    let (catalog, texts) = xmark_catalog();
    let service = Service::new(
        catalog,
        ServiceConfig::with_workers(2).with_queue_capacity(16),
    );
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
    let big: Vec<&str> = refs.iter().cycle().take(64).copied().collect();

    let pause0 = service.pause_worker(0);
    let pause1 = service.pause_worker(1);
    pause0.wait_until_paused();
    pause1.wait_until_paused();

    // 64 queries over 2 workers -> two 32-query chunks; neither fits a
    // 16-query queue, so the whole batch sheds.
    let err = service.estimate_batch("xmark", &big).unwrap_err();
    assert!(matches!(err, ServiceError::Overloaded { .. }), "{err}");
    let stats = service.stats();
    assert_eq!(stats.shed, 64);
    assert_eq!(
        stats.queued, 0,
        "failed admission must release its reservations"
    );

    // A fitting batch admitted behind the fences runs once they lift.
    pause0.resume();
    pause1.resume();
    let small: Vec<&str> = refs.iter().take(8).copied().collect();
    assert_eq!(service.estimate_batch("xmark", &small).unwrap().len(), 8);
    assert_eq!(service.stats().accepted, 8);
}
