//! The bounded TCP front end, exercised over real sockets: connection
//! limiting with the structured `OVERLOADED` refusal, idle-session
//! timeouts, and the remote-session security policy.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use xseed_service::{Catalog, ServerConfig, Service, ServiceConfig, TcpServer};

/// Starts a server on an ephemeral port and leaks its accept thread (it
/// blocks in `accept` for the life of the test process).
fn spawn_server(config: ServerConfig) -> std::net::SocketAddr {
    let catalog = Arc::new(Catalog::new());
    catalog
        .load_xml(
            "fig2",
            xmlkit::samples::FIGURE2_XML,
            xseed_core::XseedConfig::default(),
        )
        .unwrap();
    let service = Arc::new(Service::new(catalog, ServiceConfig::with_workers(2)));
    let server = TcpServer::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = server.run(service);
    });
    addr
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        line.trim_end().to_string()
    }

    /// Reads a line, returning `None` on clean EOF.
    fn recv_eof(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

#[test]
fn sessions_roundtrip_and_fs_load_stays_denied() {
    let addr = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr);
    client.send("EST fig2 /a/c/s");
    assert_eq!(client.recv(), "OK 5");
    client.send("BATCH fig2 /a/c/s ; //p");
    assert_eq!(client.recv(), "OK n=2 5 17");
    // Network sessions cannot read server files unless --allow-fs-load.
    client.send("LOAD x /etc/hostname");
    assert!(client.recv().starts_with("ERR filesystem LOAD"));
    // The gate covers snapshot writes and reads too: SAVE would let a
    // client write server-side files, LOAD file: read them.
    client.send("SAVE fig2 /tmp/fig2.xsnap");
    assert!(client.recv().starts_with("ERR filesystem SAVE"));
    client.send("LOAD x file:/tmp/fig2.xsnap");
    assert!(client.recv().starts_with("ERR filesystem LOAD"));
    client.send("QUIT");
    assert_eq!(client.recv(), "OK bye");
    assert_eq!(client.recv_eof(), None);
}

#[test]
fn connections_past_the_limit_are_refused_and_slots_are_released() {
    let addr = spawn_server(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    // First client occupies the only slot (a completed round trip proves
    // the session is fully admitted, not racing the accept loop).
    let mut first = Client::connect(addr);
    first.send("EST fig2 //p");
    assert_eq!(first.recv(), "OK 17");

    // The second connection gets one structured refusal line, then EOF.
    let mut second = Client::connect(addr);
    assert_eq!(second.recv(), "OVERLOADED connections=1 max=1");
    assert_eq!(second.recv_eof(), None);

    // Closing the first session frees its slot; a new client is admitted
    // (the slot releases when the session thread notices EOF, so poll).
    first.send("QUIT");
    assert_eq!(first.recv(), "OK bye");
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut third = Client::connect(addr);
        third.send("EST fig2 /a/c/s");
        match third.recv_eof() {
            Some(reply) if reply == "OK 5" => break,
            Some(reply) => assert!(reply.starts_with("OVERLOADED"), "{reply}"),
            None => {}
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot was never released"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn oversized_request_lines_are_rejected_and_the_session_closed() {
    let addr = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr);
    client.send("EST fig2 /a/c/s");
    assert_eq!(client.recv(), "OK 5");
    // Fill the whole 64 KiB line cap without a newline: the server must
    // cut the session off with a structured error instead of buffering
    // without bound. (Sending exactly the cap keeps the server's close
    // clean — a client streaming *past* the cap gets the same refusal
    // but may see a connection reset instead of the reply, since the
    // server won't read the excess.)
    let chunk = vec![b'x'; 16 * 1024];
    for _ in 0..4 {
        client.writer.write_all(&chunk).unwrap();
    }
    let reply = client.recv();
    assert!(
        reply.starts_with("ERR request line exceeds"),
        "got: {reply}"
    );
    assert_eq!(client.recv_eof(), None);
}

#[test]
fn idle_sessions_time_out_with_a_goodbye() {
    let addr = spawn_server(ServerConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr);
    client.send("EST fig2 /a/c/s");
    assert_eq!(client.recv(), "OK 5");
    // Say nothing past the idle timeout: the server announces the close
    // and hangs up.
    assert_eq!(client.recv(), "ERR idle timeout, closing");
    assert_eq!(client.recv_eof(), None);
}
