//! The nonblocking TCP event loop, exercised over real sockets:
//! pipelining, half-closed sessions, slow-consumer backpressure,
//! connection limiting with the structured `OVERLOADED` refusal,
//! per-client rate-limiter fairness, idle-session timeouts, a
//! high-connection idle soak, and the remote-session security policy.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use xseed_service::{Catalog, ServerConfig, Service, ServiceConfig, TcpServer};

/// Starts a server on an ephemeral port and leaks its accept thread (it
/// blocks in `accept` for the life of the test process).
fn spawn_server(config: ServerConfig) -> std::net::SocketAddr {
    let catalog = Arc::new(Catalog::new());
    catalog
        .load_xml(
            "fig2",
            xmlkit::samples::FIGURE2_XML,
            xseed_core::XseedConfig::default(),
        )
        .unwrap();
    let service = Arc::new(Service::new(catalog, ServiceConfig::with_workers(2)));
    let server = TcpServer::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || {
        let _ = server.run(service);
    });
    addr
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        line.trim_end().to_string()
    }

    /// Reads a line, returning `None` on clean EOF.
    fn recv_eof(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(e) => panic!("read failed: {e}"),
        }
    }

    /// Reads one full reply, following the `OK metrics lines=<n>` /
    /// `OK trace n=<k>` multi-line headers.
    fn recv_reply(&mut self) -> String {
        let header = self.recv();
        let extra: usize = if let Some(rest) = header.strip_prefix("OK metrics lines=") {
            rest.trim().parse().expect("metrics line count")
        } else if let Some(rest) = header.strip_prefix("OK trace n=") {
            rest.split_whitespace()
                .next()
                .unwrap_or("0")
                .parse()
                .expect("trace event count")
        } else {
            0
        };
        let mut reply = header;
        for _ in 0..extra {
            reply.push('\n');
            reply.push_str(&self.recv());
        }
        reply
    }
}

#[test]
fn sessions_roundtrip_and_fs_load_stays_denied() {
    let addr = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr);
    client.send("EST fig2 /a/c/s");
    assert_eq!(client.recv(), "OK 5");
    client.send("BATCH fig2 /a/c/s ; //p");
    assert_eq!(client.recv(), "OK n=2 5 17");
    // Network sessions cannot read server files unless --allow-fs-load.
    client.send("LOAD x /etc/hostname");
    assert!(client.recv().starts_with("ERR filesystem LOAD"));
    // The gate covers snapshot writes and reads too: SAVE would let a
    // client write server-side files, LOAD file: read them.
    client.send("SAVE fig2 /tmp/fig2.xsnap");
    assert!(client.recv().starts_with("ERR filesystem SAVE"));
    client.send("LOAD x file:/tmp/fig2.xsnap");
    assert!(client.recv().starts_with("ERR filesystem LOAD"));
    client.send("QUIT");
    assert_eq!(client.recv(), "OK bye");
    assert_eq!(client.recv_eof(), None);
}

#[test]
fn connections_past_the_limit_are_refused_and_slots_are_released() {
    let addr = spawn_server(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    // First client occupies the only slot (a completed round trip proves
    // the session is fully admitted, not racing the accept loop).
    let mut first = Client::connect(addr);
    first.send("EST fig2 //p");
    assert_eq!(first.recv(), "OK 17");

    // The second connection gets one structured refusal line, then EOF.
    let mut second = Client::connect(addr);
    assert_eq!(second.recv(), "OVERLOADED connections=1 max=1");
    assert_eq!(second.recv_eof(), None);

    // Closing the first session frees its slot; a new client is admitted
    // (the slot releases when the session thread notices EOF, so poll).
    first.send("QUIT");
    assert_eq!(first.recv(), "OK bye");
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut third = Client::connect(addr);
        third.send("EST fig2 /a/c/s");
        match third.recv_eof() {
            Some(reply) if reply == "OK 5" => break,
            Some(reply) => assert!(reply.starts_with("OVERLOADED"), "{reply}"),
            None => {}
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot was never released"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn oversized_request_lines_are_rejected_and_the_session_closed() {
    let addr = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr);
    client.send("EST fig2 /a/c/s");
    assert_eq!(client.recv(), "OK 5");
    // Fill the whole 64 KiB line cap without a newline: the server must
    // cut the session off with a structured error instead of buffering
    // without bound. (Sending exactly the cap keeps the server's close
    // clean — a client streaming *past* the cap gets the same refusal
    // but may see a connection reset instead of the reply, since the
    // server won't read the excess.)
    let chunk = vec![b'x'; 16 * 1024];
    for _ in 0..4 {
        client.writer.write_all(&chunk).unwrap();
    }
    let reply = client.recv();
    assert!(
        reply.starts_with("ERR request line exceeds"),
        "got: {reply}"
    );
    assert_eq!(client.recv_eof(), None);
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let addr = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr);
    // One write carrying a whole session: the loop must serve every line
    // in arrival order, not just the first per readiness event.
    client
        .writer
        .write_all(b"EST fig2 /a/c/s\nEST fig2 //p\nBATCH fig2 /a/c/s ; //p\nSTATS\nQUIT\n")
        .unwrap();
    assert_eq!(client.recv(), "OK 5");
    assert_eq!(client.recv(), "OK 17");
    assert_eq!(client.recv(), "OK n=2 5 17");
    assert!(client.recv().starts_with("OK workers="));
    assert_eq!(client.recv(), "OK bye");
    assert_eq!(client.recv_eof(), None);
}

#[test]
fn half_closed_sessions_still_get_their_replies() {
    let addr = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr);
    client
        .writer
        .write_all(b"EST fig2 /a/c/s\nEST fig2 //p\n")
        .unwrap();
    // Shut down our sending half before reading anything: the server
    // sees EOF but must serve the pipelined requests and drain the
    // replies before hanging up, instead of dropping the session.
    client.writer.shutdown(std::net::Shutdown::Write).unwrap();
    assert_eq!(client.recv(), "OK 5");
    assert_eq!(client.recv(), "OK 17");
    assert_eq!(client.recv_eof(), None);
}

#[test]
fn a_slow_consumer_is_paused_not_dropped() {
    let addr = spawn_server(ServerConfig::default());
    let mut client = Client::connect(addr);
    // Size one METRICS reply, then pipeline enough of them to overflow
    // the server's 256 KiB write high-water mark many times over while
    // we deliberately read nothing.
    client.send("METRICS");
    let sample = client.recv_reply();
    let requests = 2 * 1024 * 1024 / sample.len().max(1) + 16;
    let mut burst = String::new();
    for _ in 0..requests {
        burst.push_str("METRICS\n");
    }
    client.writer.write_all(burst.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // Backpressure must pause the session, not kill it: every reply
    // arrives, whole and in order, once we start draining.
    // recv_reply reads exactly the announced number of exposition lines,
    // so a torn or reordered reply would desynchronize the stream and
    // fail the next header assertion.
    for _ in 0..requests {
        let reply = client.recv_reply();
        assert!(reply.starts_with("OK metrics lines="), "got: {reply}");
    }
    client.send("QUIT");
    assert_eq!(client.recv(), "OK bye");
    assert_eq!(client.recv_eof(), None);
}

#[test]
fn a_flooding_client_is_shed_while_neighbors_keep_their_budget() {
    let addr = spawn_server(ServerConfig {
        // A rate this low cannot mint a visible fraction of a token
        // within the test's runtime, so admissions are exactly the burst
        // and everything after is a deterministic shed.
        client_rate: Some(0.001),
        client_burst: Some(5.0),
        ..ServerConfig::default()
    });
    let mut flood = Client::connect(addr);
    for i in 0..25 {
        flood.send("EST fig2 //p");
        let reply = flood.recv();
        if i < 5 {
            assert_eq!(reply, "OK 17", "request {i}");
        } else {
            assert_eq!(reply, "OVERLOADED rate=0.001 burst=5", "request {i}");
        }
    }
    // The flood spent only its own bucket: a well-behaved neighbor's
    // budget is untouched and its shed count stays zero.
    let mut good = Client::connect(addr);
    for _ in 0..3 {
        good.send("EST fig2 /a/c/s");
        assert_eq!(good.recv(), "OK 5");
    }
    good.send("STATS");
    let stats = good.recv();
    assert!(stats.starts_with("OK workers="), "got: {stats}");
    assert!(stats.contains(" rate_limited=20 "), "got: {stats}");
    good.send("TRACE 50");
    let trace = good.recv_reply();
    // One shed episode costs one ring slot, attributed to the flooding
    // connection's token — and only that connection's.
    assert!(
        trace.contains("event=rate_limit_on doc=conn-1"),
        "got: {trace}"
    );
    assert!(!trace.contains("doc=conn-2"), "got: {trace}");
    // The neighbor used 5 of its 5 tokens (3 ESTs, STATS, TRACE): still
    // never shed. The flooding session stays connected too — shed, not
    // dropped.
    flood.send("QUIT");
    assert_eq!(flood.recv(), "OK bye");
}

/// Resident-set size of this process in bytes, from `/proc/self/statm`.
fn resident_bytes() -> u64 {
    let statm = std::fs::read_to_string("/proc/self/statm").expect("read statm");
    let pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .expect("statm resident field")
        .parse()
        .expect("statm resident pages");
    pages * 4096
}

#[test]
fn five_thousand_idle_connections_soak_in_one_process() {
    const CONNS: usize = 5_000;
    // Client and server halves live in this one test process, so the fd
    // budget is ~2x the connection count plus slack. GitHub runners
    // default to a 1024 soft limit; raise it toward the hard limit and
    // skip (loudly) if that still is not enough.
    let limit = netpoll::raise_nofile_limit(4 * CONNS as u64).unwrap_or(0);
    if limit < 2 * CONNS as u64 + 512 {
        eprintln!("skipping idle soak: fd limit {limit} is too low for {CONNS} connections");
        return;
    }
    let addr = spawn_server(ServerConfig {
        max_connections: CONNS + 16,
        ..ServerConfig::default()
    });
    let before = resident_bytes();
    let mut conns: Vec<TcpStream> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        let stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}"));
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        conns.push(stream);
    }
    // Sampled sessions prove the fully-loaded loop still serves: every
    // 500th connection does a real estimate round trip.
    for stream in conns.iter_mut().step_by(500) {
        stream.write_all(b"EST fig2 /a/c/s\n").unwrap();
        let mut reply = [0u8; 16];
        let mut got = 0;
        while !reply[..got].contains(&b'\n') {
            let n = stream.read(&mut reply[got..]).expect("read reply");
            assert!(n > 0, "server hung up mid-soak");
            got += n;
        }
        assert_eq!(&reply[..got], b"OK 5\n");
    }
    // An idle connection is a map entry plus empty buffers — a few
    // hundred bytes — so 5k of them must cost single-digit MiBs. The
    // bound is generous (other tests in this process allocate too) but
    // still catches any per-connection preallocation regression.
    let grown = resident_bytes().saturating_sub(before);
    assert!(
        grown < 64 * 1024 * 1024,
        "5k idle connections grew RSS by {} MiB",
        grown / (1024 * 1024)
    );
    drop(conns);
}

#[test]
fn idle_sessions_time_out_with_a_goodbye() {
    let addr = spawn_server(ServerConfig {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr);
    client.send("EST fig2 /a/c/s");
    assert_eq!(client.recv(), "OK 5");
    // Say nothing past the idle timeout: the server announces the close
    // and hangs up.
    assert_eq!(client.recv(), "ERR idle timeout, closing");
    assert_eq!(client.recv_eof(), None);
}
