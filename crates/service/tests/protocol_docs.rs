//! Protocol ⇄ documentation consistency: every verb the dispatcher
//! accepts, every reply status token, and every `key=` counter the
//! implementation can emit must appear in `docs/PROTOCOL.md`. A new verb
//! (like `FEEDBACK`) or a new STATS counter therefore cannot land
//! undocumented — this test extracts both sides from the sources, so the
//! check maintains itself.

use std::collections::BTreeSet;

fn read(path: &str) -> String {
    let full = format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&full).unwrap_or_else(|e| panic!("read {full}: {e}"))
}

/// Every double-quoted string literal in `source` consisting solely of
/// 2+ uppercase ASCII letters — the protocol verbs of the dispatcher's
/// `match` (plus nothing else: multi-word literals and lowercase keys
/// never qualify).
fn extract_verbs(source: &str) -> BTreeSet<String> {
    let mut verbs = BTreeSet::new();
    let mut rest = source;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(len) = tail.find('"') else { break };
        let literal = &tail[..len];
        if literal.len() >= 2 && literal.bytes().all(|b| b.is_ascii_uppercase()) {
            verbs.insert(literal.to_string());
        }
        rest = &tail[len + 1..];
    }
    verbs
}

/// Every `key` the implementation interpolates as `key={}` **or**
/// `key={named_capture}` — the flat STATS counters, the per-document
/// segment fields, and the structured reply fields (`outcome=`,
/// `estimated=`, `epoch={epoch}`, …). Both interpolation styles must be
/// covered or a reply key written with an inline capture would escape
/// the guard.
fn extract_wire_keys(source: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for (idx, _) in source.match_indices("={") {
        // Accept `{}` and `{ident}`; reject formatting specs (`{:.2}`)
        // and anything that is not a plain interpolation.
        let inner = &source[idx + 2..];
        let Some(close) = inner.find('}') else {
            continue;
        };
        let capture = &inner[..close];
        if !capture.bytes().all(|b| b.is_ascii_lowercase() || b == b'_') {
            continue;
        }
        let prefix = &source[..idx];
        let key: String = prefix
            .chars()
            .rev()
            .take_while(|c| c.is_ascii_lowercase() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if !key.is_empty() {
            keys.insert(key);
        }
    }
    keys
}

#[test]
fn every_protocol_verb_is_documented() {
    let source = read("crates/service/src/protocol.rs");
    let docs = read("docs/PROTOCOL.md");
    let verbs = extract_verbs(&source);
    for expected in [
        "LOAD", "EST", "BATCH", "FEEDBACK", "MAINTAIN", "STATS", "HELP", "QUIT",
    ] {
        assert!(
            verbs.contains(expected),
            "verb extraction lost {expected}: {verbs:?}"
        );
    }
    for verb in &verbs {
        assert!(
            docs.contains(verb.as_str()),
            "protocol verb {verb} is not documented in docs/PROTOCOL.md"
        );
    }
}

#[test]
fn every_reply_status_token_is_documented() {
    let docs = read("docs/PROTOCOL.md");
    for token in ["`OK`", "`ERR`", "`OVERLOADED`"] {
        assert!(
            docs.contains(token),
            "reply status {token} is not documented in docs/PROTOCOL.md"
        );
    }
    // The structured maintenance reply fields.
    for fragment in ["rebuild=done", "rebuild=none", "OVERLOADED queued="] {
        assert!(
            docs.contains(fragment),
            "reply fragment {fragment} is not documented in docs/PROTOCOL.md"
        );
    }
}

#[test]
fn every_wire_key_is_documented() {
    let source = read("crates/service/src/protocol.rs");
    let docs = read("docs/PROTOCOL.md");
    let keys = extract_wire_keys(&source);
    // Guard the extraction itself: the counters a FEEDBACK deployment
    // lives by must be among the extracted keys.
    for expected in [
        "feedback_applied",
        "feedback_ignored",
        "rebuilds_triggered",
        "error_mass",
        "estimated",
        "outcome",
        // Named-capture interpolations must be extracted too.
        "epoch",
        "queued",
        "capacity",
    ] {
        assert!(
            keys.contains(expected),
            "wire-key extraction lost {expected}: {keys:?}"
        );
    }
    for key in &keys {
        assert!(
            docs.contains(&format!("{key}=")),
            "wire key `{key}=` is not documented in docs/PROTOCOL.md"
        );
    }
}
