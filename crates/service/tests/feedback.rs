//! Feedback-driven self-maintenance, end to end: a deterministic drive of
//! the error-mass policy into an automatic epoch-bumping HET rebuild, and
//! an 8-thread estimate-vs-feedback race proving readers only ever see
//! whole synopsis states (consistent epochs, no torn HET reads).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xpathkit::parse;
use xseed_core::{FeedbackOutcome, XseedConfig, XseedSynopsis};
use xseed_service::{Catalog, MaintenancePolicy, RetentionPolicy, Service, ServiceConfig};

fn fig4_service(bound: f64, workers: usize) -> (Arc<Catalog>, Service) {
    let catalog = Arc::new(Catalog::new());
    let doc = xmlkit::samples::figure4_document();
    catalog.load_document_with(
        "fig4",
        &doc,
        XseedConfig::default(),
        RetentionPolicy::Retain,
        MaintenancePolicy::ErrorMassBound(bound),
    );
    let service = Service::new(catalog.clone(), ServiceConfig::with_workers(workers));
    (catalog, service)
}

/// The ISSUE acceptance scenario: feedback accumulates under the bound,
/// crosses it, and the automatic rebuild republishes a synopsis whose
/// estimate for the fed-back query is exact — all observable through the
/// service API (the CI-diffed `feedback_session` transcript shows the
/// same through the wire).
#[test]
fn feedback_past_error_mass_bound_rebuilds_exactly() {
    // Per-feedback errors on Figure 4 are ~12.9 and ~14.8, so a bound of
    // 20 stays silent after the first feedback and crosses on the second.
    let (catalog, service) = fig4_service(20.0, 2);
    let epoch0 = catalog.snapshot("fig4").unwrap().epoch();

    let first = service.feedback("fig4", "/a/b/d/e", 20, None).unwrap();
    assert_eq!(first.report.outcome, FeedbackOutcome::SimplePath);
    assert!(first.report.error > 4.0);
    assert!(first.rebuild.is_none(), "below the bound: no trigger");
    assert!(first.epoch > epoch0, "applied feedback bumps the epoch");

    let second = service.feedback("fig4", "/a/c/d/f", 45, None).unwrap();
    assert!(
        first.report.error + second.report.error >= 20.0,
        "scenario must actually cross the bound"
    );
    let ticket = second.rebuild.expect("bound crossed: rebuild triggered");
    let (stats, rebuilt_epoch) = ticket.wait().expect("maintenance thread rebuilds");
    assert!(stats.simple_entries > 0);
    assert!(
        rebuilt_epoch > second.epoch,
        "rebuild bumps the epoch again"
    );
    assert_eq!(catalog.snapshot("fig4").unwrap().epoch(), rebuilt_epoch);

    // Post-rebuild, the fed-back queries are exact — and so is a path
    // feedback never touched (the rebuild recomputed every simple path).
    for (query, actual) in [("/a/b/d/e", 20.0), ("/a/c/d/f", 45.0), ("/a/b/d", 5.0)] {
        let est = service.estimate("fig4", query).unwrap();
        assert!((est - actual).abs() < 1e-9, "{query}: {est} vs {actual}");
    }
    let stats = service.stats();
    assert_eq!(stats.feedback_applied, 2);
    assert_eq!(stats.rebuilds_triggered, 1);
    assert_eq!(catalog.info()[0].error_mass, 0.0, "rebuild resets drift");
}

/// 8 threads estimate continuously while feedback triggers an automatic
/// rebuild. Every observed `(epoch, estimate)` pair must match one of the
/// three legitimate whole states (kernel-only, post-feedback,
/// post-rebuild) bit for bit, and epochs must never run backwards within
/// a thread — a torn HET read or a half-published snapshot would violate
/// one of the two.
#[test]
fn concurrent_estimates_race_feedback_rebuild_consistently() {
    let (catalog, service) = fig4_service(1.0, 4);
    let service = Arc::new(service);
    let queries = ["/a/b/d/e", "/a/c/d/f", "/a/b/d[f]/e"];

    // Reference states, built exactly like the catalog builds them:
    // epoch 0 = kernel-only, epoch 1 = after the one feedback, epoch 2 =
    // after the default-strategy rebuild. All estimation is
    // deterministic, so equality is exact (to_bits).
    let doc = xmlkit::samples::figure4_document();
    let mut reference = XseedSynopsis::build(&doc, XseedConfig::default());
    let mut expected: HashMap<(u64, &str), u64> = HashMap::new();
    for q in queries {
        expected.insert((0, q), reference.estimate(&parse(q).unwrap()).to_bits());
    }
    let report = reference.record_feedback_report(&parse("/a/b/d/e").unwrap(), 20, None);
    assert_eq!(report.outcome, FeedbackOutcome::SimplePath);
    for q in queries {
        expected.insert((1, q), reference.estimate(&parse(q).unwrap()).to_bits());
    }
    reference.rebuild_het(&doc);
    for q in queries {
        expected.insert((2, q), reference.estimate(&parse(q).unwrap()).to_bits());
    }
    let expected = Arc::new(expected);

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..8)
        .map(|reader| {
            let catalog = catalog.clone();
            let service = service.clone();
            let stop = stop.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut observed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for q in queries {
                        // Snapshot path: the epoch tells us exactly which
                        // whole state the estimate must equal.
                        let snap = catalog.snapshot("fig4").unwrap();
                        let epoch = snap.epoch();
                        assert!(
                            epoch >= last_epoch,
                            "reader {reader}: epoch ran backwards ({last_epoch} -> {epoch})"
                        );
                        last_epoch = epoch;
                        let est = snap.estimate(&parse(q).unwrap());
                        let want = expected
                            .get(&(epoch, q))
                            .unwrap_or_else(|| panic!("reader {reader}: epoch {epoch}?"));
                        assert_eq!(
                            est.to_bits(),
                            *want,
                            "reader {reader}: torn state at epoch {epoch} for {q}"
                        );
                        // Worker-pool path: no epoch attached, so the
                        // value must match one of the whole states.
                        let pooled = service.estimate("fig4", q).unwrap().to_bits();
                        assert!(
                            (0..=2).any(|e| expected.get(&(e, q)) == Some(&pooled)),
                            "reader {reader}: pooled estimate matches no whole state"
                        );
                        observed += 1;
                    }
                }
                observed
            })
        })
        .collect();

    // Let readers observe the kernel-only state, then trigger: the one
    // feedback crosses the 1.0 bound immediately.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let fb = service.feedback("fig4", "/a/b/d/e", 20, None).unwrap();
    let ticket = fb.rebuild.expect("bound crossed");
    let (_, rebuilt_epoch) = ticket.wait().expect("rebuild completes");
    assert_eq!(rebuilt_epoch, 2);
    // Keep racing a moment after the rebuild lands, then stop.
    std::thread::sleep(std::time::Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let mut total = 0u64;
    for reader in readers {
        total += reader.join().expect("reader panicked");
    }
    assert!(total > 0, "readers must have observed estimates");
    assert!((service.estimate("fig4", "/a/b/d/e").unwrap() - 20.0).abs() < 1e-9);
}
