//! The example session transcripts, asserted instead of hand-maintained:
//! `examples/serve_session.txt`, `examples/overload_session.txt`,
//! `examples/feedback_session.txt`, `examples/metrics_session.txt`,
//! `examples/bound_session.txt`, and the two-phase
//! `examples/persist_session.txt` / `examples/persist_restart_session.txt`
//! pair are run through the protocol layer with the same configuration
//! the CI smoke run passes to the binary, and every reply must match the
//! committed `.expected` transcript byte for byte — after masking the
//! timing-dependent digits (uptime, latency histogram values, trace
//! timestamps) to `N`, exactly as the CI sed does before its diffs.
//! When a protocol change breaks these, regenerate the transcripts (the
//! session files say how) instead of editing them by hand.

use std::sync::Arc;
use xseed_service::{run_script, Catalog, Service, ServiceConfig};

fn example(name: &str) -> String {
    let path = format!("{}/../../examples/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Replaces the digit run immediately following every `marker` with `N`.
fn mask_digits_after(line: &str, marker: &str) -> String {
    let mut out = String::new();
    let mut rest = line;
    while let Some(idx) = rest.find(marker) {
        let boundary = idx + marker.len();
        out.push_str(&rest[..boundary]);
        let after = &rest[boundary..];
        let digits = after.bytes().take_while(u8::is_ascii_digit).count();
        if digits > 0 {
            out.push('N');
        }
        rest = &after[digits..];
    }
    out.push_str(rest);
    out
}

/// The Rust twin of the CI normalization sed (see
/// `examples/metrics_session.txt`): timing values vary run to run, so
/// both sides mask them to `N` before comparing. Counters, q-error
/// percentiles, and trace sequence numbers stay literal — they are
/// deterministic at `--workers 1`.
fn normalize(line: &str) -> String {
    let mut line = mask_digits_after(line, "uptime_secs=");
    line = mask_digits_after(&line, "\"uptime_secs\":");
    line = mask_digits_after(&line, "t=+");
    // Latency quantile/max values and the uptime gauge; the `_count`
    // rows are deterministic and deliberately not masked.
    if line.starts_with("xseed_uptime_seconds ")
        || line.starts_with("xseed_stage_latency_ns{")
        || line.starts_with("xseed_stage_latency_ns_max{")
    {
        if let Some(idx) = line.rfind(' ') {
            if line[idx + 1..].bytes().all(|b| b.is_ascii_digit()) && idx + 1 < line.len() {
                line.truncate(idx + 1);
                line.push('N');
            }
        }
    }
    line
}

/// Flattens and normalizes raw `run_script` replies: a METRICS/TRACE
/// reply is one multi-line response, but the wire (and the committed
/// transcript) sees its lines individually.
fn normalized(replies: &[String]) -> Vec<String> {
    replies
        .iter()
        .flat_map(|reply| reply.lines())
        .map(normalize)
        .collect()
}

fn assert_transcript(session_file: &str, expected_file: &str, config: ServiceConfig) {
    let service = Service::new(Arc::new(Catalog::new()), config);
    let replies = normalized(&run_script(&service, &example(session_file)));
    let expected_text = example(expected_file);
    let expected: Vec<String> = expected_text.lines().map(normalize).collect();
    assert_eq!(
        replies, expected,
        "{session_file} drifted from {expected_file}; regenerate the expected transcript"
    );
}

#[test]
fn serve_session_matches_expected_transcript() {
    // Must mirror the smoke run: `xseed-serve --workers 1`.
    assert_transcript(
        "serve_session.txt",
        "serve_session.expected",
        ServiceConfig::with_workers(1),
    );
}

#[test]
fn overload_session_matches_expected_transcript() {
    // Must mirror: `xseed-serve --workers 1 --queue-capacity 8`.
    assert_transcript(
        "overload_session.txt",
        "overload_session.expected",
        ServiceConfig::with_workers(1).with_queue_capacity(8),
    );
}

#[test]
fn feedback_session_matches_expected_transcript() {
    // Must mirror the smoke run: `xseed-serve --workers 1`.
    assert_transcript(
        "feedback_session.txt",
        "feedback_session.expected",
        ServiceConfig::with_workers(1),
    );
}

#[test]
fn metrics_session_matches_expected_transcript() {
    // Must mirror the smoke run: `xseed-serve --workers 1`.
    assert_transcript(
        "metrics_session.txt",
        "metrics_session.expected",
        ServiceConfig::with_workers(1),
    );
}

#[test]
fn bound_session_matches_expected_transcript() {
    // Must mirror the smoke run: `xseed-serve --workers 1`.
    assert_transcript(
        "bound_session.txt",
        "bound_session.expected",
        ServiceConfig::with_workers(1),
    );
}

#[test]
fn bound_session_demonstrates_bound_mode() {
    // The committed transcript must actually show bound mode doing its
    // job: a dual est/bound reply for every mode=bound request, the
    // bound dominating the point estimate on each, an exact zero for an
    // absent label, and the unknown-mode ERR row.
    let expected = example("bound_session.expected");
    let lines: Vec<&str> = expected.lines().collect();
    let dual: Vec<&&str> = lines.iter().filter(|l| l.starts_with("OK est=")).collect();
    assert!(dual.len() >= 5, "transcript carries the dual replies");
    for line in &dual {
        let rest = line.strip_prefix("OK est=").unwrap();
        let (est, bound) = rest.split_once(" bound=").expect("dual reply shape");
        let est: f64 = est.parse().unwrap();
        let bound: f64 = bound.parse().unwrap();
        assert!(bound >= est, "bound must dominate the estimate: {line}");
    }
    assert!(
        lines.contains(&"OK est=0 bound=0"),
        "absent label bounds to exactly zero"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("ERR unknown EST mode")),
        "transcript carries the unknown-mode ERR row"
    );
}

#[test]
fn metrics_session_demonstrates_the_observability_surface() {
    // The committed transcript must actually show the obs layer doing
    // its job: accuracy percentiles in STATS, per-stage latency and
    // q-error summaries in METRICS, and the load + feedback-driven
    // rebuild replayed by TRACE.
    let expected = example("metrics_session.expected");
    let lines: Vec<&str> = expected.lines().collect();
    let stats = lines
        .iter()
        .find(|l| l.starts_with("OK workers="))
        .expect("transcript carries STATS");
    assert!(stats.contains("qerr_count=2"), "{stats}");
    for line in [
        "xseed_stage_latency_ns_count{stage=\"estimate\"} 5",
        "xseed_q_error{scope=\"global\",quantile=\"0.5\"} 1.023",
        "xseed_q_error_count{doc=\"fig4\"} 2",
        "trace seq=0 t=+Nms event=load doc=fig4",
        "trace seq=1 t=+Nms event=rebuild doc=fig4",
    ] {
        assert!(lines.contains(&line), "missing {line:?} in transcript");
    }
    assert!(
        lines.iter().any(|l| l.starts_with("OK metrics lines=")),
        "transcript carries the METRICS header"
    );
    assert!(
        lines.contains(&"OK trace n=2 capacity=256"),
        "transcript carries the TRACE header"
    );
}

#[test]
fn feedback_session_demonstrates_the_maintenance_loop() {
    // The committed transcript must actually show the loop closing: a
    // triggered rebuild in the FEEDBACK reply, the post-rebuild estimate
    // exact, and the counters recording exactly one rebuild with the
    // error mass reset.
    let expected = example("feedback_session.expected");
    let lines: Vec<&str> = expected.lines().collect();
    let feedback = lines
        .iter()
        .find(|l| l.starts_with("OK feedback outcome=simple"))
        .expect("transcript carries an applied FEEDBACK reply");
    assert!(feedback.contains("rebuild=done"), "{feedback}");
    assert!(
        lines.contains(&"OK 20"),
        "post-rebuild estimate must be exact"
    );
    let stats = lines
        .iter()
        .find(|l| l.starts_with("OK workers="))
        .expect("transcript carries STATS");
    for needle in [
        "feedback_applied=1",
        "feedback_ignored=1",
        "rebuilds_triggered=1",
        "error_mass=0 ",
        ",rebuilds=1]",
    ] {
        assert!(stats.contains(needle), "missing {needle} in {stats}");
    }
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("OK {") && l.contains("\"rebuilds_triggered\":1")),
        "STATS json mirrors the maintenance counters"
    );
}

#[test]
fn persist_sessions_roundtrip_across_a_restart() {
    // Must mirror the CI smoke run: phase 1 is `xseed-serve --workers 1
    // --snapshot-dir /tmp/xseed-persist-demo` over persist_session.txt,
    // then a corrupt snapshot is planted, then phase 2 boots a fresh
    // service over the same directory (the path is hardcoded in the
    // committed session files, so the test uses it verbatim).
    let dir = std::path::Path::new("/tmp/xseed-persist-demo");
    let _ = std::fs::remove_dir_all(dir);

    // Phase 1: warm start over the (empty, auto-created) directory,
    // then SAVE + explicit `LOAD … file:` restore.
    let service = Service::new(Arc::new(Catalog::new()), ServiceConfig::with_workers(1));
    let warm = xseed_service::warm_start(service.catalog(), dir).unwrap();
    assert!(warm.loaded.is_empty() && warm.quarantined.is_empty());
    service.note_warm_start(&warm);
    let phase1 = normalized(&run_script(&service, &example("persist_session.txt")));
    let expected1_text = example("persist_session.expected");
    let expected1: Vec<String> = expected1_text.lines().map(normalize).collect();
    assert_eq!(
        phase1, expected1,
        "persist_session.txt drifted from persist_session.expected; \
         regenerate the expected transcript"
    );

    // Restart: plant a corrupt snapshot next to the saved one, boot a
    // fresh service over the directory.
    std::fs::write(dir.join("bogus.xsnap"), b"XSEEDSNP garbage").unwrap();
    let service = Service::new(Arc::new(Catalog::new()), ServiceConfig::with_workers(1));
    let warm = xseed_service::warm_start(service.catalog(), dir).unwrap();
    assert_eq!(warm.loaded, vec!["fig4".to_string()]);
    assert_eq!(warm.quarantined, vec!["bogus.xsnap".to_string()]);
    assert!(dir.join("bogus.xsnap.corrupt").exists());
    service.note_warm_start(&warm);
    let phase2 = normalized(&run_script(
        &service,
        &example("persist_restart_session.txt"),
    ));
    let expected2_text = example("persist_restart_session.expected");
    let expected2: Vec<String> = expected2_text.lines().map(normalize).collect();
    assert_eq!(
        phase2, expected2,
        "persist_restart_session.txt drifted from persist_restart_session.expected; \
         regenerate the expected transcript"
    );

    // The acceptance criterion in one line: the estimate served from
    // the warm-started snapshot is bit-identical to the pre-restart one.
    assert_eq!(
        phase1[1], phase2[0],
        "estimate drifted across the snapshot restart"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn serve_session_exercises_stats_json() {
    // The committed transcript must cover the structured STATS variant,
    // and its reply must be one well-formed JSON object per the protocol
    // docs: `OK {...}` with a docs array naming every loaded document.
    let session = example("serve_session.txt");
    assert!(
        session.lines().any(|l| l.trim() == "STATS json"),
        "serve_session.txt must include a STATS json request"
    );
    let expected = example("serve_session.expected");
    let json_line = expected
        .lines()
        .find(|l| l.starts_with("OK {"))
        .expect("expected transcript carries the STATS json reply");
    let body = json_line.strip_prefix("OK ").unwrap();
    assert!(body.ends_with('}'), "{json_line}");
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(
            body.matches(open).count(),
            body.matches(close).count(),
            "unbalanced {open}{close} in {json_line}"
        );
    }
    for key in ["\"workers\":", "\"docs\":[", "\"name\":\"auctions\""] {
        assert!(body.contains(key), "missing {key} in {json_line}");
    }
}

#[test]
fn overload_session_actually_demonstrates_a_shed() {
    let expected = example("overload_session.expected");
    assert!(
        expected.lines().any(|l| l.starts_with("OVERLOADED ")),
        "the overload session must exercise the OVERLOADED reply"
    );
}
