//! Documentation ⇄ tree consistency: every file under `docs/` must be
//! reachable from `README.md`, and every CLI flag `xseed-serve` parses
//! must be covered by `docs/OPERATIONS.md`. Like `protocol_docs`, both
//! sides are extracted from the sources so a new guide or a new flag
//! cannot land unlinked or undocumented.

use std::collections::BTreeSet;

fn root(path: &str) -> String {
    format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"))
}

fn read(path: &str) -> String {
    let full = root(path);
    std::fs::read_to_string(&full).unwrap_or_else(|e| panic!("read {full}: {e}"))
}

/// Every double-quoted string literal in `source` that is exactly one
/// long-form CLI flag (`--lowercase-words`). Usage strings and error
/// messages never qualify: they contain spaces or interpolations.
fn extract_flags(source: &str) -> BTreeSet<String> {
    let mut flags = BTreeSet::new();
    let mut rest = source;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(len) = tail.find('"') else { break };
        let literal = &tail[..len];
        if let Some(body) = literal.strip_prefix("--") {
            if !body.is_empty() && body.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
                flags.insert(literal.to_string());
            }
        }
        rest = &tail[len + 1..];
    }
    flags
}

#[test]
fn every_docs_file_is_linked_from_the_readme() {
    let readme = read("README.md");
    let docs_dir = root("docs");
    let mut seen = 0;
    for entry in std::fs::read_dir(&docs_dir).unwrap_or_else(|e| panic!("read {docs_dir}: {e}")) {
        let name = entry.unwrap().file_name();
        let name = name.to_string_lossy();
        seen += 1;
        assert!(
            readme.contains(&format!("docs/{name}")),
            "docs/{name} is not linked from README.md"
        );
    }
    // Guard the walk itself: the three core guides must exist.
    assert!(
        seen >= 3,
        "expected ARCHITECTURE/PROTOCOL/OPERATIONS under docs/, found {seen}"
    );
    for guide in ["ARCHITECTURE.md", "PROTOCOL.md", "OPERATIONS.md"] {
        assert!(
            std::path::Path::new(&root("docs")).join(guide).exists(),
            "docs/{guide} is missing"
        );
    }
}

#[test]
fn every_serve_flag_is_documented_in_operations() {
    let source = read("crates/service/src/bin/serve.rs");
    let ops = read("docs/OPERATIONS.md");
    let flags = extract_flags(&source);
    // Guard the extraction: the flags an operator reaches for first must
    // be among those found.
    for expected in [
        "--workers",
        "--tcp",
        "--client-rate",
        "--client-burst",
        "--snapshot-dir",
        "--no-observability",
    ] {
        assert!(
            flags.contains(expected),
            "flag extraction lost {expected}: {flags:?}"
        );
    }
    for flag in &flags {
        assert!(
            ops.contains(flag.as_str()),
            "xseed-serve flag {flag} is not documented in docs/OPERATIONS.md"
        );
    }
}
