//! Concurrency guarantees of the estimation service:
//!
//! * many threads estimating from one shared frozen snapshot produce
//!   **bit-identical** results to a single-threaded run (the snapshot is
//!   immutable — there is nothing to race on);
//! * snapshots taken before an update keep estimating their own epoch;
//! * plan-cache hits are indistinguishable from fresh parses.

use std::sync::Arc;
use std::thread;
use xpathkit::PathExpr;
use xseed_core::{SynopsisSnapshot, XseedConfig, XseedSynopsis};
use xseed_service::{Catalog, PlanCache, Service, ServiceConfig};

use datagen::{Dataset, WorkloadGenerator, WorkloadSpec};

const THREADS: usize = 8;

fn scenario(dataset: Dataset, scale: f64) -> (XseedSynopsis, Vec<PathExpr>) {
    let doc = dataset.generate_scaled(scale);
    let config = if dataset.is_highly_recursive() {
        XseedConfig::recursive_for_size(doc.element_count())
    } else {
        XseedConfig::default()
    };
    let synopsis = XseedSynopsis::build(&doc, config);
    let workload = WorkloadGenerator::new(&doc, 0xC0FFEE).generate(&WorkloadSpec::small());
    let queries: Vec<PathExpr> = workload.all().cloned().collect();
    assert!(!queries.is_empty());
    (synopsis, queries)
}

/// Runs the workload single-threaded, then from `THREADS` threads sharing
/// the same snapshot, and compares every estimate bit for bit.
fn assert_threads_bit_identical(dataset: Dataset, scale: f64) {
    let (synopsis, queries) = scenario(dataset, scale);
    let snapshot: SynopsisSnapshot = synopsis.snapshot();

    // Single-threaded reference over the same snapshot (cold matcher).
    let reference: Vec<u64> = {
        let mut matcher = snapshot.matcher();
        queries
            .iter()
            .map(|q| matcher.estimate(q).to_bits())
            .collect()
    };

    let queries = Arc::new(queries);
    let results: Vec<Vec<u64>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let snapshot = snapshot.clone();
                let queries = queries.clone();
                scope.spawn(move || {
                    // Half the threads use the shared-memo batch path, half
                    // the cold streaming path — both must agree bit-exactly.
                    let mut matcher = if i % 2 == 0 {
                        snapshot.batch_matcher()
                    } else {
                        snapshot.matcher()
                    };
                    queries
                        .iter()
                        .map(|q| matcher.estimate(q).to_bits())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, thread_results) in results.iter().enumerate() {
        assert_eq!(
            thread_results, &reference,
            "{dataset:?}: thread {t} diverged from the single-threaded run"
        );
    }
}

#[test]
fn xmark_eight_threads_bit_identical() {
    assert_threads_bit_identical(Dataset::XMark10, 0.05);
}

#[test]
fn dblp_eight_threads_bit_identical() {
    assert_threads_bit_identical(Dataset::Dblp, 0.02);
}

#[test]
fn treebank_eight_threads_bit_identical() {
    assert_threads_bit_identical(Dataset::TreebankSmall, 0.05);
}

#[test]
fn service_concurrent_clients_match_direct_estimates() {
    let (synopsis, queries) = scenario(Dataset::XMark10, 0.05);
    let direct: Vec<u64> = queries
        .iter()
        .map(|q| synopsis.estimate(q).to_bits())
        .collect();
    let texts: Vec<String> = queries.iter().map(|q| q.to_string()).collect();

    let catalog = Arc::new(Catalog::new());
    catalog.insert("xmark", synopsis);
    let service = Service::new(catalog, ServiceConfig::with_workers(4));

    thread::scope(|scope| {
        for _ in 0..4 {
            let service = &service;
            let texts = &texts;
            let direct = &direct;
            scope.spawn(move || {
                let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
                let batch = service.estimate_batch("xmark", &refs).unwrap();
                for ((text, est), expected) in refs.iter().zip(&batch).zip(direct) {
                    assert_eq!(est.to_bits(), *expected, "{text}");
                }
            });
        }
    });
    assert!(service.stats().total_executed() >= 4 * queries.len() as u64);
}

#[test]
fn updates_do_not_disturb_inflight_snapshots() {
    let (synopsis, queries) = scenario(Dataset::Dblp, 0.02);
    let catalog = Arc::new(Catalog::new());
    let published = catalog.insert("dblp", synopsis);
    let reference: Vec<u64> = queries
        .iter()
        .map(|q| published.estimate(q).to_bits())
        .collect();

    thread::scope(|scope| {
        // Readers hammer the pre-update snapshot...
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let snapshot = published.clone();
                let queries = &queries;
                let reference = &reference;
                scope.spawn(move || {
                    for _ in 0..3 {
                        let mut matcher = snapshot.matcher();
                        for (q, expected) in queries.iter().zip(reference) {
                            assert_eq!(matcher.estimate(q).to_bits(), *expected);
                        }
                    }
                })
            })
            .collect();
        // ...while the writer repeatedly grafts subtrees and republishes.
        let catalog = &catalog;
        scope.spawn(move || {
            for i in 0..5 {
                let (res, fresh) = catalog
                    .update("dblp", |syn| {
                        let root = syn.kernel().name(syn.kernel().root().unwrap()).to_string();
                        let subtree = xmlkit::Document::parse_str(&format!("<extra{i}/>")).unwrap();
                        syn.kernel_mut().add_subtree(&[root.as_str()], &subtree)
                    })
                    .unwrap();
                res.unwrap();
                assert_eq!(fresh.epoch(), i + 1);
            }
        });
        for r in readers {
            r.join().unwrap();
        }
    });

    // The published snapshot advanced; the old one is still epoch 0.
    assert_eq!(catalog.snapshot("dblp").unwrap().epoch(), 5);
    assert_eq!(published.epoch(), 0);
}

/// Eviction under concurrent insert/lookup churn: many threads hammer a
/// deliberately tiny cache with far more distinct queries than it can
/// hold. The LRU bound must hold at every observation point, counters
/// must stay consistent, and every handed-out plan must equal a fresh
/// parse (no torn entries).
#[test]
fn plan_cache_eviction_survives_concurrent_churn() {
    const SHARDS: usize = 4;
    const CAPACITY: usize = 16; // 4 per shard; the workload has ~100 texts
    let texts: Vec<String> = (0..100)
        .map(|i| format!("/site/a{}/b{}[c{}]", i % 10, i, i % 7))
        .collect();
    let cache = PlanCache::new(SHARDS, CAPACITY);

    let lookups: u64 = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = &cache;
                let texts = &texts;
                scope.spawn(move || {
                    let mut done = 0u64;
                    for round in 0..200 {
                        // Each thread walks the texts at its own stride, so
                        // shards see interleaved hot and cold keys.
                        let text = &texts[(t * 37 + round * (t + 1)) % texts.len()];
                        let plan = cache.get_or_parse(text).unwrap();
                        assert_eq!(plan.text(), text.as_str());
                        assert_eq!(plan.expr(), &xpathkit::parse(text).unwrap());
                        done += 1;
                        // The occupancy bound holds mid-churn, not just at
                        // the end.
                        assert!(cache.stats().entries <= CAPACITY);
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, lookups);
    assert!(stats.entries <= CAPACITY);
    assert!(stats.misses >= CAPACITY as u64, "churn must evict");
    // Deterministic tail: after the churn, per-shard LRU ordering still
    // works — a just-touched entry survives an insert that evicts.
    let keep = cache.get_or_parse(&texts[0]).unwrap();
    for text in &texts[1..] {
        let _ = cache.get_or_parse(text).unwrap();
    }
    let hits_before = cache.stats().hits;
    let again = cache.get_or_parse(&texts[0]).unwrap();
    // texts[0] may or may not have survived the sweep (it depends on the
    // shard layout), but the cache must never hand back a different plan
    // than it parsed.
    if cache.stats().hits > hits_before {
        assert!(Arc::ptr_eq(&keep, &again));
    } else {
        assert_eq!(keep.as_ref(), again.as_ref());
    }
}

/// The per-snapshot compiled-query cache under concurrent churn: all
/// threads share one snapshot's cache via its matchers, and every answer
/// must be bit-identical to an uncached single-threaded run.
#[test]
fn compiled_cache_concurrent_churn_is_bit_exact() {
    let (synopsis, queries) = scenario(Dataset::XMark10, 0.05);
    // Tiny cache so the churn constantly evicts and recompiles.
    let mut synopsis = synopsis;
    synopsis.config_mut().compiled_cache_capacity = 8;
    let snapshot = synopsis.snapshot();
    let plans: Vec<Arc<xpathkit::QueryPlan>> = queries
        .iter()
        .map(|q| Arc::new(xpathkit::QueryPlan::parse(&q.to_string()).unwrap()))
        .collect();

    let reference: Vec<u64> = {
        let mut matcher = snapshot.matcher();
        queries
            .iter()
            .map(|q| matcher.estimate(q).to_bits())
            .collect()
    };

    thread::scope(|scope| {
        for t in 0..THREADS {
            let snapshot = snapshot.clone();
            let plans = &plans;
            let reference = &reference;
            scope.spawn(move || {
                let mut matcher = snapshot.matcher();
                for round in 0..3 {
                    for i in 0..plans.len() {
                        let i = (i + t * 11 + round) % plans.len();
                        assert_eq!(
                            matcher.estimate_plan(&plans[i]).to_bits(),
                            reference[i],
                            "{}",
                            plans[i].text()
                        );
                    }
                }
            });
        }
    });
    let stats = snapshot.compiled_cache().stats();
    assert!(stats.entries <= 8);
    assert!(stats.misses > 0);
}

mod compiled_cache_properties {
    use super::*;
    use proptest::prelude::*;

    /// Epoch-bump invalidation, property-tested against fresh
    /// compilation: interleave service estimates (which go through the
    /// plan cache *and* the snapshot's compiled-query cache) with catalog
    /// updates that graft fresh subtrees. After every step, the served
    /// estimate must be bit-identical to a freshly-built matcher
    /// compiling the query from scratch on the current snapshot — a stale
    /// compiled plan surviving an epoch bump would diverge as soon as the
    /// graft changes the label space or the frontier.
    fn check(steps: Vec<(usize, bool)>) -> Result<(), TestCaseError> {
        let queries = [
            "/site/regions",
            "//item[payment]/quantity",
            "//zzz0", // hits the labels the grafts introduce
            "//zzz1//item",
            "/site/*",
        ];
        let doc = Dataset::XMark10.generate_scaled(0.02);
        let catalog = Arc::new(Catalog::new());
        catalog.insert("doc", XseedSynopsis::build(&doc, XseedConfig::default()));
        let service = Service::new(catalog.clone(), ServiceConfig::with_workers(2));

        let mut grafts = 0usize;
        for (pick, update) in steps {
            if update {
                // Graft <zzz{n}><item/></zzz{n}> under the root: bumps the
                // epoch, publishes a fresh snapshot (and so a fresh
                // compiled cache), and changes future estimates.
                let xml = format!("<zzz{}><item/></zzz{}>", grafts % 2, grafts % 2);
                let (res, _) = catalog
                    .update("doc", |syn| {
                        let root = syn.kernel().name(syn.kernel().root().unwrap()).to_string();
                        let subtree = xmlkit::Document::parse_str(&xml).unwrap();
                        syn.kernel_mut().add_subtree(&[root.as_str()], &subtree)
                    })
                    .unwrap();
                res.unwrap();
                grafts += 1;
            }
            let text = queries[pick % queries.len()];
            let served = service.estimate("doc", text).unwrap();
            // Fresh compilation on the *current* snapshot, no caches.
            let snapshot = catalog.snapshot("doc").unwrap();
            let expr = xpathkit::parse(text).unwrap();
            let fresh = xseed_core::StreamingMatcher::new(
                snapshot.frozen(),
                snapshot.names(),
                snapshot.config(),
                snapshot.het(),
            )
            .estimate(&expr);
            prop_assert_eq!(
                served.to_bits(),
                fresh.to_bits(),
                "{} diverged after {} grafts",
                text,
                grafts
            );
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn epoch_bumps_invalidate_compiled_plans(
            steps in prop::collection::vec((0usize..5, prop::bool::ANY), 1..12)
        ) {
            check(steps)?;
        }
    }
}

mod plan_cache_properties {
    use super::*;
    use proptest::prelude::*;

    /// Query texts drawn from a real generated workload (plus noise in the
    /// form of extra whitespace-free variants), so the property covers the
    /// SP/BP/CP shapes the service actually sees.
    fn workload_texts() -> Vec<String> {
        let doc = Dataset::XMark10.generate_scaled(0.02);
        let workload = WorkloadGenerator::new(&doc, 0x5EED).generate(&WorkloadSpec::small());
        workload.all().map(|q| q.to_string()).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn cache_hits_equal_fresh_parses(picks in prop::collection::vec(0usize..1000, 1..20)) {
            let texts = workload_texts();
            let cache = PlanCache::new(4, 256);
            for pick in picks {
                let text = &texts[pick % texts.len()];
                let cached = cache.get_or_parse(text).unwrap();
                let fresh = xpathkit::parse(text).unwrap();
                prop_assert_eq!(cached.expr(), &fresh);
                prop_assert_eq!(cached.class(), fresh.classify());
                prop_assert_eq!(cached.text(), text.as_str());
                // A second lookup is a hit handing out the same plan.
                let again = cache.get_or_parse(text).unwrap();
                prop_assert!(Arc::ptr_eq(&cached, &again));
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.misses as usize, stats.entries);
        }
    }
}
