//! Snapshot persistence, end to end:
//!
//! * the round-trip differential — a synopsis saved to disk and reloaded
//!   answers the full deterministic workload **bit-identically** on
//!   XMark, DBLP, and Treebank (kernel, HET residency, config, and epoch
//!   all survive the bytes);
//! * warm start over a directory containing one corrupt snapshot serves
//!   every healthy one and quarantines the corrupt one, reporting it
//!   through `STATS`.

use datagen::{Dataset, WorkloadGenerator, WorkloadSpec};
use std::sync::Arc;
use xseed_core::{XseedConfig, XseedSynopsis};
use xseed_service::protocol::{handle_line, ProtocolOptions};
use xseed_service::{warm_start, Catalog, Service, ServiceConfig};

const SEED: u64 = 0xBEEF;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xseed-persist-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Scenario {
    name: &'static str,
    dataset: Dataset,
    scale: f64,
    recursive: bool,
}

const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "xmark",
        dataset: Dataset::XMark10,
        scale: 0.02,
        recursive: false,
    },
    Scenario {
        name: "dblp",
        dataset: Dataset::Dblp,
        scale: 0.01,
        recursive: false,
    },
    Scenario {
        name: "treebank",
        dataset: Dataset::TreebankSmall,
        scale: 0.02,
        recursive: true,
    },
];

/// Saving and reloading must not move a single bit of any estimate.
#[test]
fn reloaded_snapshots_estimate_bit_identically() {
    let dir = temp_dir("roundtrip");
    for scenario in &SCENARIOS {
        let doc = scenario.dataset.generate_scaled(scenario.scale);
        let config = if scenario.recursive {
            XseedConfig::recursive_for_size(doc.element_count())
        } else {
            XseedConfig::default()
        };
        let workload = WorkloadGenerator::new(&doc, SEED).generate(&WorkloadSpec::small());
        assert!(!workload.is_empty());
        let (synopsis, stats) = XseedSynopsis::build_with_het(&doc, config);
        assert!(stats.simple_entries > 0, "{}: HET is empty", scenario.name);

        let catalog = Catalog::new();
        let original = catalog.insert(scenario.name, synopsis);
        let path = dir.join(format!("{}.xsnap", scenario.name));
        let bytes = catalog.save_snapshot(scenario.name, &path).unwrap();
        assert!(bytes > 0);

        let restored_catalog = Catalog::new();
        let (restored, retained) = restored_catalog
            .load_snapshot(scenario.name, &path, None)
            .unwrap();
        assert!(!retained, "{}: no document was spilled", scenario.name);
        assert_eq!(
            restored.epoch(),
            original.epoch(),
            "{}: epoch drifted through the snapshot",
            scenario.name
        );
        for query in workload.all() {
            assert_eq!(
                original.estimate(query).to_bits(),
                restored.estimate(query).to_bits(),
                "{}: estimate for {query} drifted through the snapshot",
                scenario.name
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A spilled retained document comes back into retention, structurally
/// identical — reload estimates still bit-identical.
#[test]
fn retained_document_spills_and_restores() {
    let dir = temp_dir("spill");
    let doc = xmlkit::samples::figure4_document();
    let catalog = Catalog::new();
    let synopsis = XseedSynopsis::build(&doc, XseedConfig::default());
    catalog.insert_retained(
        "fig4",
        synopsis,
        Arc::new(doc.clone()),
        xseed_service::MaintenancePolicy::Manual,
    );
    let path = dir.join("fig4.xsnap");
    catalog.save_snapshot("fig4", &path).unwrap();

    let restored_catalog = Catalog::new();
    let (_, retained) = restored_catalog.load_snapshot("fig4", &path, None).unwrap();
    assert!(retained, "spilled document must restore into retention");
    let restored_doc = restored_catalog.retained_document("fig4").unwrap();
    assert_eq!(restored_doc.element_count(), doc.element_count());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-loading a snapshot over an already-published name must advance the
/// epoch past the name's history, never regress to the saved epoch.
#[test]
fn reload_over_existing_name_never_regresses_epochs() {
    let dir = temp_dir("epochs");
    let doc = xmlkit::samples::figure2_document();
    let catalog = Catalog::new();
    catalog.insert("fig2", XseedSynopsis::build(&doc, XseedConfig::default()));
    let path = dir.join("fig2.xsnap");
    catalog.save_snapshot("fig2", &path).unwrap();
    // Publish a few more epochs under the name.
    for _ in 0..3 {
        catalog.insert("fig2", XseedSynopsis::build(&doc, XseedConfig::default()));
    }
    let before = catalog.snapshot("fig2").unwrap().epoch();
    let (reloaded, _) = catalog.load_snapshot("fig2", &path, None).unwrap();
    assert!(
        reloaded.epoch() > before,
        "reload regressed the epoch: {} -> {}",
        before,
        reloaded.epoch()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario: a snapshot directory with healthy files and
/// one corrupt file boots into a catalog serving the healthy ones, with
/// the quarantine visible in `STATS`.
#[test]
fn warm_start_quarantines_corrupt_and_serves_the_rest() {
    let dir = temp_dir("quarantine");
    let source = Catalog::new();
    for (name, doc) in [
        ("fig2", xmlkit::samples::figure2_document()),
        ("fig4", xmlkit::samples::figure4_document()),
    ] {
        source.insert(name, XseedSynopsis::build(&doc, XseedConfig::default()));
        source
            .save_snapshot(name, &dir.join(format!("{name}.xsnap")))
            .unwrap();
    }
    // One corrupt file: right magic, garbage after it.
    std::fs::write(dir.join("broken.xsnap"), b"XSEEDSNP garbage").unwrap();

    let catalog = Arc::new(Catalog::new());
    let warm = warm_start(&catalog, &dir).unwrap();
    assert_eq!(warm.loaded, vec!["fig2".to_string(), "fig4".to_string()]);
    assert_eq!(warm.quarantined, vec!["broken.xsnap".to_string()]);
    assert!(dir.join("broken.xsnap.corrupt").exists());

    let service = Service::new(catalog, ServiceConfig::with_workers(1));
    service.note_warm_start(&warm);
    let options = ProtocolOptions::local();
    let est = handle_line(&service, "EST fig2 /a/c/s", &options);
    assert_eq!(est.text().unwrap(), "OK 5");
    let stats = handle_line(&service, "STATS", &options)
        .text()
        .unwrap()
        .to_string();
    assert!(stats.contains("persist_loads=2"), "{stats}");
    assert!(stats.contains("persist_load_failures=1"), "{stats}");
    assert!(stats.contains("quarantined=1"), "{stats}");
    let json = handle_line(&service, "STATS json", &options)
        .text()
        .unwrap()
        .to_string();
    assert!(json.contains("\"quarantined\":1"), "{json}");
    let _ = std::fs::remove_dir_all(&dir);
}
